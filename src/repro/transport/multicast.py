"""Hardware multicast channel (the paper's §6 discussion).

InfiniBand hardware multicast lets a back-end publish its status to a
group of front-end dispatchers with a single transmission — scalable,
but it uses *channel semantics*: every subscriber's kernel takes an
interrupt and runs softirq protocol processing per message, so the
one-sided benefits are lost on the receive side. The ablation benchmark
compares this against RDMA-read polling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Tuple

from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext


class MulticastGroup:
    """A multicast address with subscribing nodes."""

    def __init__(self, name: str = "mcast") -> None:
        self.name = name
        self._subs: List[Tuple["Node", Store]] = []
        self._stores: Dict[str, Store] = {}
        self.messages = 0

    def subscribe(self, node: "Node") -> Store:
        """Join the group; returns the node's receive store."""
        if node.name in self._stores:
            return self._stores[node.name]
        store = Store(node.env, name=f"mcrx:{self.name}:{node.name}")
        self._subs.append((node, store))
        self._stores[node.name] = store
        return store

    def publish(self, k: "TaskContext", payload: Any, nbytes: int) -> Generator:
        """Send one datagram to every subscriber (one TX serialisation)."""
        src = k.node
        self.messages += 1
        # Sender-side kernel TX path (UDP-ish, cheaper than TCP).
        yield k.syscall(0)
        yield k.compute(k.copy_cost(nbytes), mode="sys")
        yield k.compute(src.cfg.net.tcp_tx_cost // 2, mode="sys")

        fabric = src.nic.fabric
        assert fabric is not None
        dst_nics = [node.nic for node, _ in self._subs if node is not src]
        by_nic = {node.nic.name: (node, store) for node, store in self._subs}

        def on_arrival(dst_nic) -> None:
            node, store = by_nic[dst_nic.name]
            # Arrival consumes receiver CPU: NIC IRQ + softirq delivery.
            dst_nic._kernel_rx((store, payload), nbytes)

        if dst_nics:
            fabric.multicast(src.nic, dst_nics, nbytes + src.cfg.net.tcp_overhead_bytes,
                             on_arrival, bw_factor=src.cfg.net.ipoib_bw_factor)
        # Local delivery (loopback) is free of wire costs.
        if src.name in self._stores:
            self._stores[src.name].put((payload, nbytes))
        return None

    def recv(self, k: "TaskContext") -> Generator:
        """Block until the next datagram for the calling node."""
        store = self._stores.get(k.node.name)
        if store is None:
            raise RuntimeError(f"{k.node.name} is not subscribed to {self.name}")
        payload = yield from k.node.netstack.recv(k, store)
        return payload

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)
