"""Blocking, message-oriented sockets over the simulated kernel stack.

The traditional (two-sided) transport the paper's Socket-Async and
Socket-Sync schemes use. Every operation is a composite syscall driven
with ``yield from`` inside a task body; all CPU costs land on the
calling task (sender) or in interrupt/softirq context plus the woken
reader (receiver).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Tuple

from repro.sim.resources import Store
from repro.tracing.span import STATUS_ERROR, tracer_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext


class SocketEndpoint:
    """One end of an established connection."""

    def __init__(self, node: "Node", label: str) -> None:
        self.node = node
        self.label = label
        self.rx: Store = Store(node.env, name=f"sockrx:{label}")
        self.peer: "SocketEndpoint | None" = None
        self.tx_messages = 0
        self.rx_messages = 0

    def send(self, k: "TaskContext", payload: Any, nbytes: int, ctx=None) -> Generator:
        """Send one message to the peer (full TX path on this task)."""
        if self.peer is None:
            raise RuntimeError(f"socket {self.label} is not connected")
        if k.node is not self.node:
            raise RuntimeError(
                f"socket {self.label} belongs to {self.node.name}, "
                f"but the calling task runs on {k.node.name}"
            )
        self.tx_messages += 1
        tracer = tracer_for(self.node, ctx)
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "sock.send", ctx, node=self.node.name, component="socket",
                attrs={"nbytes": nbytes, "peer": self.peer.node.name})
        yield from self.node.netstack.send(k, self.peer.node, self.peer.rx, payload, nbytes)
        if tracer is not None:
            tracer.end(span)
        return None

    def recv(self, k: "TaskContext", ctx=None, timeout=None) -> Generator:
        """Block until a message arrives; returns the payload.

        A traced recv span covers the *blocking wait* too — on the
        socket-based monitoring paths that wait (reply delayed by remote
        load) is exactly the effect the paper measures. With ``timeout``
        (ns) the wait is bounded and a miss returns ``None``.
        """
        if k.node is not self.node:
            raise RuntimeError(
                f"socket {self.label} belongs to {self.node.name}, "
                f"but the calling task runs on {k.node.name}"
            )
        tracer = tracer_for(self.node, ctx)
        span = None
        if tracer is not None:
            span = tracer.start_span("sock.recv", ctx, node=self.node.name,
                                     component="socket")
        payload = yield from self.node.netstack.recv(k, self.rx, timeout=timeout)
        if payload is None:
            if tracer is not None:
                tracer.end(span, status=STATUS_ERROR,
                           attrs={"timeout_ns": timeout})
            return None
        self.rx_messages += 1
        if tracer is not None:
            tracer.end(span)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SocketEndpoint {self.label} on {self.node.name}>"


def socket_pair(a: "Node", b: "Node", label: str = "") -> Tuple[SocketEndpoint, SocketEndpoint]:
    """An established connection between two nodes (no handshake cost)."""
    tag = label or f"{a.name}<->{b.name}"
    ea = SocketEndpoint(a, f"{tag}:a")
    eb = SocketEndpoint(b, f"{tag}:b")
    ea.peer, eb.peer = eb, ea
    return ea, eb


class Listener:
    """Passive endpoint: accepts connections initiated by other nodes."""

    def __init__(self, node: "Node", name: str = "listener") -> None:
        self.node = node
        self.name = name
        self._accept_queue: Store = Store(node.env, capacity=node.cfg.server.accept_backlog,
                                          name=f"accq:{name}")

    def connect_from(self, client_node: "Node") -> SocketEndpoint:
        """Create a connection from ``client_node``; server side is queued.

        Returns the client-side endpoint immediately (connection setup
        cost is out of scope for the experiments, which use persistent
        connections).
        """
        client_end, server_end = socket_pair(client_node, self.node,
                                             label=f"{client_node.name}->{self.name}")
        self._accept_queue.put(server_end)
        return client_end

    def accept(self, k: "TaskContext") -> Generator:
        """Block until a connection arrives; returns the server endpoint."""
        server_end = yield k.wait(self._accept_queue.get())
        yield k.syscall(0)
        return server_end
