"""Communication planes: native verbs (RDMA), kernel sockets, multicast."""

from repro.transport.verbs import (
    AccessFlags,
    CompletionQueue,
    MemoryRegionHandle,
    ProtectionDomain,
    QueuePair,
    VerbsError,
    WorkCompletion,
    connect_qp,
)
from repro.transport.sockets import SocketEndpoint, socket_pair, Listener
from repro.transport.multicast import MulticastGroup

__all__ = [
    "AccessFlags",
    "CompletionQueue",
    "Listener",
    "MemoryRegionHandle",
    "MulticastGroup",
    "ProtectionDomain",
    "QueuePair",
    "SocketEndpoint",
    "VerbsError",
    "WorkCompletion",
    "connect_qp",
    "socket_pair",
]
