"""Verbs-style one-sided communication (the paper's §2).

Implements the memory-semantics subset the paper relies on:

* **memory registration** — pin a host region, obtain an ``rkey``;
  access flags are enforced at the *target NIC*, so a region registered
  read-only rejects remote writes (the paper's §6 security argument).
  Kernel live regions (``kern.load``, ``kern.irq_stat``) can be
  registered exactly like user buffers.
* **RDMA read** — initiator rings a doorbell (tiny CPU cost), after
  which everything happens on the adapters: WQE service on the
  initiator NIC, a request packet, DMA on the *target* NIC against
  pinned memory with **zero target-CPU involvement**, a response
  packet, a CQE and a completion interrupt back home.
* **RDMA write** — symmetric, with the value snapshotted at the
  initiator and applied at target DMA time.
* **send/recv (channel semantics)** — two-sided; consumes a posted
  receive and raises an interrupt on the target. Used by the hardware-
  multicast ablation to show why channel semantics lose the one-sided
  benefits (§6).

All initiator entry points are composite generators to be driven with
``yield from`` inside a task body.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.hw.memory import MemRegion
from repro.sim.events import Event, EventPriority
from repro.sim.resources import Store
from repro.tracing.span import STATUS_ERROR, STATUS_OK, tracer_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext


class VerbsError(Exception):
    """Structural misuse of the verbs API (not a remote NAK)."""


class TenancyError(VerbsError):
    """Tenancy-plane admission rejected the operation (QP table full,
    tenant quota exceeded, or the owning tenant is quarantined)."""


class AccessFlags(enum.IntFlag):
    """Memory-registration access rights."""

    LOCAL_READ = 1
    LOCAL_WRITE = 2
    REMOTE_READ = 4
    REMOTE_WRITE = 8
    REMOTE_ATOMIC = 16


class WcStatus(enum.Enum):
    """Work-completion status codes."""

    SUCCESS = "success"
    REMOTE_ACCESS_ERROR = "remote-access-error"
    INVALID_RKEY = "invalid-rkey"
    LENGTH_ERROR = "length-error"
    #: receiver-not-ready NAK: transient, the initiator should back off
    #: and retry (injected by the fault plane's verb faults)
    RNR_RETRY = "rnr-retry"
    #: the tenancy plane refused the post (owning tenant quarantined)
    TENANT_DENIED = "tenant-denied"


@dataclass(slots=True)
class WorkCompletion:
    """Result of one work request."""

    opcode: str
    status: WcStatus
    wr_id: int
    value: Any = None
    nbytes: int = 0
    completed_at: int = 0

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS


@dataclass(slots=True)
class MemoryRegionHandle:
    """A registered memory region."""

    pd: "ProtectionDomain"
    region: MemRegion
    rkey: int
    access: AccessFlags

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    @property
    def node(self) -> "Node":
        return self.pd.node

    def deregister(self) -> None:
        self.pd.deregister(self)


class ProtectionDomain:
    """Per-node registration namespace and rkey table."""

    _ATTR = "_verbs_pd"

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.mrs: Dict[int, MemoryRegionHandle] = {}
        # Per-PD counter: rkeys are only ever looked up through this PD,
        # and a process-global counter would make same-seed runs allocate
        # different rkeys (breaking byte-identical trace exports).
        self._next_rkey = 0x1000

    @classmethod
    def for_node(cls, node: "Node") -> "ProtectionDomain":
        """The node's protection domain (created on first use)."""
        pd = getattr(node, cls._ATTR, None)
        if pd is None:
            pd = cls(node)
            setattr(node, cls._ATTR, pd)
        return pd

    def register(self, region: MemRegion, access: AccessFlags) -> MemoryRegionHandle:
        """Pin ``region`` and grant the given remote-access rights."""
        if not access & (AccessFlags.LOCAL_READ | AccessFlags.LOCAL_WRITE |
                         AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE |
                         AccessFlags.REMOTE_ATOMIC):
            raise VerbsError("registration needs at least one access flag")
        region.pin()
        rkey = self._next_rkey
        self._next_rkey += 1
        handle = MemoryRegionHandle(self, region, rkey, access)
        self.mrs[rkey] = handle
        return handle

    def deregister(self, handle: MemoryRegionHandle) -> None:
        self.mrs.pop(handle.rkey, None)
        handle.region.unpin()

    def lookup(self, rkey: int) -> Optional[MemoryRegionHandle]:
        return self.mrs.get(rkey)


class CompletionQueue:
    """A queue of work completions, drainable from a task body."""

    def __init__(self, node: "Node", name: str = "cq") -> None:
        self.node = node
        self.store: Store = Store(node.env, name=name)

    def push(self, wc: WorkCompletion) -> None:
        wc.completed_at = self.node.env.now
        self.store.put(wc)

    def wait(self, k: "TaskContext") -> Generator:
        """Block until the next completion (CQ event + wakeup)."""
        wc = yield k.wait(self.store.get())
        return wc


class QueuePair:
    """A reliable-connection queue pair between two nodes."""

    _next_wr = [1]

    def __init__(self, local: "Node", remote: "Node", cq: Optional[CompletionQueue] = None) -> None:
        self.local = local
        self.remote = remote
        self.cq = cq if cq is not None else CompletionQueue(local, name=f"cq:{local.name}")
        #: posted receive buffers for channel semantics (payload store)
        self.recv_queue: Store = Store(local.env, name=f"rq:{local.name}")
        self.peer: Optional["QueuePair"] = None
        #: remote protection domain, resolved once (stable per node)
        self._remote_pd = ProtectionDomain.for_node(remote)
        #: per-node QP number (stable per same-seed run; the NIC's ICM
        #: cache keys QP context by it)
        qpn = getattr(local, "_next_qpn", 1)
        local._next_qpn = qpn + 1
        self.qpn = qpn
        #: PFC service level for this QP's packets: 0 = bulk, 1 =
        #: monitoring/control class that bypasses priority-0 pauses
        self.service_level = 0
        #: owning tenant (set by the tenancy plane; None when it's off)
        self.tenant = None
        self._destroyed = False
        #: statistics
        self.reads = 0
        self.writes = 0
        self.sends = 0
        # Tenancy admission: a full QP table, an exceeded quota or a
        # quarantined owner rejects the QP outright (TenancyError).
        tn = local.nic.tenancy
        if tn is not None:
            tn.on_qp_create(self)

    def destroy(self) -> None:
        """Tear the QP down, freeing its QP-table slot (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        tn = self.local.nic.tenancy
        if tn is not None:
            tn.on_qp_destroy(self)
        if self.peer is not None and self.peer.peer is self:
            self.peer.peer = None
        self.peer = None

    # ------------------------------------------------------------------
    # memory semantics
    # ------------------------------------------------------------------
    def rdma_read(self, k: "TaskContext", rkey: int, nbytes: int, ctx=None) -> Generator:
        """One-sided read of the remote region ``rkey``.

        Returns the :class:`WorkCompletion`; the remote CPU is never
        involved, so the latency is independent of remote load.
        ``ctx`` optionally parents verb-level spans under a sampled trace.
        """
        wc_event = self._post_read(rkey, nbytes, ctx=ctx)
        yield k.compute(self.local.cfg.net.doorbell_cost, mode="user")
        wc = yield k.wait(wc_event)
        return wc

    def rdma_write(self, k: "TaskContext", rkey: int, value: Any, nbytes: int, ctx=None) -> Generator:
        """One-sided write to the remote region ``rkey``."""
        wc_event = self._post_write(rkey, value, nbytes, ctx=ctx)
        yield k.compute(self.local.cfg.net.doorbell_cost, mode="user")
        wc = yield k.wait(wc_event)
        return wc

    def _segments(self, opcode: str, ctx, attrs):
        """Verb-span plumbing shared by read/write posts.

        Returns ``(verb_span, mark, finish)`` — or ``(None, None, None)``
        when tracing is off or the trace unsampled. ``mark(name, node,
        component)`` records one segment child from the previous mark to
        now; ``finish(wc)`` closes the last segment and the verb span.
        All bookkeeping happens inside NIC/fabric callbacks at times the
        simulation produces anyway: zero simulated cost.
        """
        tracer = tracer_for(self.local, ctx)
        if tracer is None:
            return None, None, None
        env = self.local.env
        verb = tracer.start_span(f"rdma.{opcode}", ctx, node=self.local.name,
                                 component="nic", attrs=attrs)
        cursor = [env.now]

        def mark(name: str, node: str, component: str) -> None:
            now = env.now
            tracer.record(f"rdma.{opcode}.{name}", verb, cursor[0], now,
                          node=node, component=component)
            cursor[0] = now

        def finish(wc: WorkCompletion) -> None:
            status = STATUS_OK if wc.ok else STATUS_ERROR
            now = env.now
            tracer.record(f"rdma.{opcode}.completion", verb, cursor[0], now,
                          node=self.local.name, component="nic", status=status)
            cursor[0] = now
            tracer.end(verb, status=status, attrs={"wc": wc.status.value})

        return verb, mark, finish

    def _post_read(self, rkey: int, nbytes: int, ctx=None):
        """Hardware-side read flow; returns an event firing with the WC."""
        env = self.local.env
        cfg = self.local.cfg.net
        wr_id = QueuePair._next_wr[0]
        QueuePair._next_wr[0] += 1
        self.reads += 1
        done = Event(env)
        local_nic, remote_nic = self.local.nic, self.remote.nic
        fabric = local_nic.fabric
        assert fabric is not None
        tn = local_nic.tenancy
        sl = self.service_level
        if ctx is None:  # untraced steady-state: skip span plumbing
            seg_mark = seg_finish = None
        else:
            _, seg_mark, seg_finish = self._segments(
                "read", ctx,
                {"rkey": rkey, "nbytes": nbytes, "target": self.remote.name})

        def complete(wc: WorkCompletion) -> None:
            wc.completed_at = env.now
            if seg_finish is not None:
                seg_finish(wc)
            # Completion raises a CQ interrupt on the initiator before the
            # waiting task can be woken.
            local_nic.raise_cq_interrupt(lambda: done.succeed(wc))

        def at_target() -> None:
            if seg_mark is not None:
                seg_mark("at_target", self.remote.name, "fabric")
            faults = getattr(fabric, "faults", None)
            if faults is not None:
                nak = faults.on_verb(self.local, self.remote, "read")
                if nak is not None:
                    fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                    lambda: complete(WorkCompletion("read", nak, wr_id)),
                                    prio=sl)
                    return
            pd = self._remote_pd
            handle = pd.lookup(rkey)
            if handle is None:
                fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                lambda: complete(WorkCompletion("read", WcStatus.INVALID_RKEY, wr_id)),
                                prio=sl)
                return
            if not handle.access & AccessFlags.REMOTE_READ:
                fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                lambda: complete(WorkCompletion("read", WcStatus.REMOTE_ACCESS_ERROR, wr_id)),
                                prio=sl)
                return
            if nbytes > handle.nbytes:
                fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                lambda: complete(WorkCompletion("read", WcStatus.LENGTH_ERROR, wr_id)),
                                prio=sl)
                return
            dma_cost = cfg.nic_dma_service + (nbytes * cfg.nic_dma_per_kb) // 1024
            tn_r = remote_nic.tenancy
            if tn_r is not None:
                # Target-side context: the responder fetches the QP's
                # connection state and the MR's translation entry; a
                # cold entry stalls the DMA on the PCIe refill.
                owner = self.tenant if self.tenant is not None else tn_r.registry.system
                dma_cost += tn_r.icm_touch(
                    remote_nic, ("qp", self.local.name, self.qpn), owner)
                dma_cost += tn_r.icm_touch(remote_nic, ("mr", rkey), owner)

            def dma_done() -> None:
                if seg_mark is not None:
                    seg_mark("dma", self.remote.name, "nic")
                # Value is captured at the DMA instant — the essence of
                # reading "always current" kernel memory.
                value = handle.region.read()
                wc = WorkCompletion("read", WcStatus.SUCCESS, wr_id, value=value, nbytes=nbytes)
                fabric.transmit(remote_nic, local_nic, nbytes + cfg.rdma_overhead_bytes,
                                lambda: local_nic.dma_service(cfg.cqe_cost, lambda: complete(wc)),
                                prio=sl)

            remote_nic.dma_service(dma_cost, dma_done)

        def wqe_done() -> None:
            if seg_mark is not None:
                seg_mark("post", self.local.name, "nic")
            fabric.transmit(local_nic, remote_nic, cfg.rdma_overhead_bytes, at_target,
                            prio=sl)

        def launch() -> None:
            # Initiator NIC: fetch the QP context (ICM) and the WQE,
            # emit the request packet.
            pen = tn.icm_touch(local_nic, ("qp", self.local.name, self.qpn),
                               self.tenant) if tn is not None else 0
            local_nic.dma_service(cfg.nic_wqe_service + pen, wqe_done)

        if tn is None:
            local_nic.dma_service(cfg.nic_wqe_service, wqe_done)
        else:
            verdict = tn.police(self, nbytes)
            if verdict < 0:
                env.call_later(1, lambda: complete(
                    WorkCompletion("read", WcStatus.TENANT_DENIED, wr_id)))
            elif verdict == 0:
                launch()
            else:
                env.call_later(verdict, launch, priority=EventPriority.HIGH)
        return done

    def _post_write(self, rkey: int, value: Any, nbytes: int, ctx=None):
        env = self.local.env
        cfg = self.local.cfg.net
        wr_id = QueuePair._next_wr[0]
        QueuePair._next_wr[0] += 1
        self.writes += 1
        done = Event(env)
        local_nic, remote_nic = self.local.nic, self.remote.nic
        fabric = local_nic.fabric
        assert fabric is not None
        tn = local_nic.tenancy
        sl = self.service_level
        if ctx is None:  # untraced steady-state: skip span plumbing
            seg_mark = seg_finish = None
        else:
            _, seg_mark, seg_finish = self._segments(
                "write", ctx,
                {"rkey": rkey, "nbytes": nbytes, "target": self.remote.name})

        def complete(wc: WorkCompletion) -> None:
            wc.completed_at = env.now
            if seg_finish is not None:
                seg_finish(wc)
            local_nic.raise_cq_interrupt(lambda: done.succeed(wc))

        def at_target() -> None:
            if seg_mark is not None:
                seg_mark("at_target", self.remote.name, "fabric")
            faults = getattr(fabric, "faults", None)
            if faults is not None:
                nak = faults.on_verb(self.local, self.remote, "write")
                if nak is not None:
                    fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                    lambda: complete(WorkCompletion("write", nak, wr_id)),
                                    prio=sl)
                    return
            pd = self._remote_pd
            handle = pd.lookup(rkey)
            status = WcStatus.SUCCESS
            if handle is None:
                status = WcStatus.INVALID_RKEY
            elif not handle.access & AccessFlags.REMOTE_WRITE:
                # Read-only registration: the NAK that implements §6's
                # "mark these memory regions read-only".
                status = WcStatus.REMOTE_ACCESS_ERROR
            elif nbytes > handle.nbytes:
                status = WcStatus.LENGTH_ERROR
            if status is not WcStatus.SUCCESS:
                fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                lambda: complete(WorkCompletion("write", status, wr_id)),
                                prio=sl)
                return
            dma_cost = cfg.nic_dma_service + (nbytes * cfg.nic_dma_per_kb) // 1024
            tn_r = remote_nic.tenancy
            if tn_r is not None:
                owner = self.tenant if self.tenant is not None else tn_r.registry.system
                dma_cost += tn_r.icm_touch(
                    remote_nic, ("qp", self.local.name, self.qpn), owner)
                dma_cost += tn_r.icm_touch(remote_nic, ("mr", rkey), owner)

            def dma_done() -> None:
                if seg_mark is not None:
                    seg_mark("dma", self.remote.name, "nic")
                assert handle is not None
                handle.region.write(value)
                wc = WorkCompletion("write", WcStatus.SUCCESS, wr_id, nbytes=nbytes)
                fabric.transmit(remote_nic, local_nic, cfg.rdma_overhead_bytes,
                                lambda: local_nic.dma_service(cfg.cqe_cost, lambda: complete(wc)),
                                prio=sl)

            remote_nic.dma_service(dma_cost, dma_done)

        def wqe_done() -> None:
            if seg_mark is not None:
                seg_mark("post", self.local.name, "nic")
            fabric.transmit(local_nic, remote_nic, nbytes + cfg.rdma_overhead_bytes, at_target,
                            prio=sl)

        def launch() -> None:
            pen = tn.icm_touch(local_nic, ("qp", self.local.name, self.qpn),
                               self.tenant) if tn is not None else 0
            local_nic.dma_service(cfg.nic_wqe_service + pen, wqe_done)

        if tn is None:
            local_nic.dma_service(cfg.nic_wqe_service, wqe_done)
        else:
            verdict = tn.police(self, nbytes)
            if verdict < 0:
                env.call_later(1, lambda: complete(
                    WorkCompletion("write", WcStatus.TENANT_DENIED, wr_id)))
            elif verdict == 0:
                launch()
            else:
                env.call_later(verdict, launch, priority=EventPriority.HIGH)
        return done

    # ------------------------------------------------------------------
    # atomics (IBA fetch-and-add / compare-and-swap)
    # ------------------------------------------------------------------
    def fetch_add(self, k: "TaskContext", rkey: int, delta: int) -> Generator:
        """One-sided atomic fetch-and-add on a 64-bit remote counter.

        Returns the WC whose ``value`` is the *previous* counter value.
        The target NIC performs a locked read-modify-write against
        pinned memory — still zero target-CPU involvement. Useful for
        remote sequence numbers and heartbeat counters.
        """
        wc_event = self._post_atomic(rkey, "fetch-add", delta, None)
        yield k.compute(self.local.cfg.net.doorbell_cost, mode="user")
        wc = yield k.wait(wc_event)
        return wc

    def compare_swap(self, k: "TaskContext", rkey: int, expected: int, desired: int) -> Generator:
        """One-sided atomic compare-and-swap; WC value = previous value."""
        wc_event = self._post_atomic(rkey, "cmp-swap", desired, expected)
        yield k.compute(self.local.cfg.net.doorbell_cost, mode="user")
        wc = yield k.wait(wc_event)
        return wc

    def _post_atomic(self, rkey: int, op: str, operand: int, expected: Optional[int]):
        env = self.local.env
        cfg = self.local.cfg.net
        wr_id = QueuePair._next_wr[0]
        QueuePair._next_wr[0] += 1
        done = env.event()
        local_nic, remote_nic = self.local.nic, self.remote.nic
        fabric = local_nic.fabric
        assert fabric is not None
        tn = local_nic.tenancy
        sl = self.service_level

        def complete(wc: WorkCompletion) -> None:
            wc.completed_at = env.now
            local_nic.raise_cq_interrupt(lambda: done.succeed(wc))

        def respond(wc: WorkCompletion) -> None:
            fabric.transmit(remote_nic, local_nic, 8 + cfg.rdma_overhead_bytes,
                            lambda: local_nic.dma_service(cfg.cqe_cost,
                                                          lambda: complete(wc)),
                            prio=sl)

        def at_target() -> None:
            faults = getattr(fabric, "faults", None)
            if faults is not None:
                nak = faults.on_verb(self.local, self.remote, "atomic")
                if nak is not None:
                    respond(WorkCompletion(op, nak, wr_id))
                    return
            pd = self._remote_pd
            handle = pd.lookup(rkey)
            if handle is None:
                respond(WorkCompletion(op, WcStatus.INVALID_RKEY, wr_id))
                return
            if not handle.access & AccessFlags.REMOTE_ATOMIC:
                respond(WorkCompletion(op, WcStatus.REMOTE_ACCESS_ERROR, wr_id))
                return
            atomic_cost = cfg.nic_dma_service
            tn_r = remote_nic.tenancy
            if tn_r is not None:
                owner = self.tenant if self.tenant is not None else tn_r.registry.system
                atomic_cost += tn_r.icm_touch(
                    remote_nic, ("qp", self.local.name, self.qpn), owner)
                atomic_cost += tn_r.icm_touch(remote_nic, ("mr", rkey), owner)

            def dma_done() -> None:
                assert handle is not None
                previous = handle.region.read()
                if not isinstance(previous, int):
                    respond(WorkCompletion(op, WcStatus.LENGTH_ERROR, wr_id))
                    return
                # Locked read-modify-write at the DMA instant.
                if op == "fetch-add":
                    handle.region.write(previous + operand)
                elif expected is not None and previous == expected:
                    handle.region.write(operand)
                respond(WorkCompletion(op, WcStatus.SUCCESS, wr_id,
                                       value=previous, nbytes=8))

            remote_nic.dma_service(atomic_cost, dma_done)

        def wqe_done() -> None:
            fabric.transmit(local_nic, remote_nic,
                            16 + cfg.rdma_overhead_bytes, at_target, prio=sl)

        def launch() -> None:
            pen = tn.icm_touch(local_nic, ("qp", self.local.name, self.qpn),
                               self.tenant) if tn is not None else 0
            local_nic.dma_service(cfg.nic_wqe_service + pen, wqe_done)

        if tn is None:
            local_nic.dma_service(cfg.nic_wqe_service, wqe_done)
        else:
            verdict = tn.police(self, 8)
            if verdict < 0:
                env.call_later(1, lambda: complete(
                    WorkCompletion(op, WcStatus.TENANT_DENIED, wr_id)))
            elif verdict == 0:
                launch()
            else:
                env.call_later(verdict, launch, priority=EventPriority.HIGH)
        return done

    # ------------------------------------------------------------------
    # channel semantics (two-sided)
    # ------------------------------------------------------------------
    def send(self, k: "TaskContext", payload: Any, nbytes: int) -> Generator:
        """Channel-semantics send: needs a posted receive at the peer.

        The *peer's CPU* takes a completion interrupt — this is why the
        §6 multicast alternative is "not completely one-sided".

        Channel semantics are deliberately outside tenancy rate
        policing: the noisy-neighbor attack surface the tenancy plane
        models is the *one-sided* fast path (no target CPU to push
        back); two-sided traffic is already throttled by the target
        host's own scheduling.
        """
        if self.peer is None:
            raise VerbsError("QP is not connected")
        cfg = self.local.cfg.net
        peer = self.peer
        self.sends += 1
        yield k.compute(cfg.doorbell_cost, mode="user")
        local_nic, remote_nic = self.local.nic, self.remote.nic
        fabric = local_nic.fabric
        assert fabric is not None

        def at_target() -> None:
            def consumed() -> None:
                peer.recv_queue.put((payload, nbytes))

            # Receive completion interrupts the target host.
            remote_nic.dma_service(
                cfg.nic_dma_service,
                lambda: remote_nic.raise_cq_interrupt(consumed),
            )

        local_nic.dma_service(
            cfg.nic_wqe_service,
            lambda: fabric.transmit(local_nic, remote_nic, nbytes + cfg.rdma_overhead_bytes, at_target),
        )
        return None

    def recv(self, k: "TaskContext") -> Generator:
        """Block until a channel-semantics message arrives."""
        cfg = self.local.cfg.net
        payload, nbytes = yield k.wait(self.recv_queue.get())
        yield k.compute(cfg.channel_recv_cost, mode="sys")
        return payload


class WqeBatch:
    """Doorbell batching: post many WQEs, ring the doorbell once.

    The HCA fetches posted WQEs without further CPU help, so a fan-out
    of N one-sided operations costs a single MMIO doorbell write instead
    of N — the pattern every shard/fan-out path in the repo uses (leaf
    shard rounds, the federation root's snapshot drain, probe posts).
    This class is that pattern, promoted from three hand-rolled copies:

        batch = WqeBatch()
        events = [batch.post_read(qp, mr.rkey, mr.nbytes) for qp, mr in work]
        yield from batch.ring(k)          # ONE doorbell for the batch
        for ev in events:
            wc = yield k.wait(ev)

    Work requests hit the hardware at *post* time (the NIC starts WQE
    service immediately, exactly as the hand-rolled code did), so
    batching changes only the CPU cost, never the wire schedule — the
    golden-fingerprint property the refactor preserves.
    """

    def __init__(self, net=None) -> None:
        #: NetworkConfig supplying the doorbell cost; captured from the
        #: first posted QP when not given up front
        self._net = net
        self._events: list = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list:
        """Completion events, in post order."""
        return self._events

    def post_read(self, qp: QueuePair, rkey: int, nbytes: int, ctx=None):
        """Post an RDMA read on ``qp``; returns its completion event."""
        if self._net is None:
            self._net = qp.local.cfg.net
        ev = qp._post_read(rkey, nbytes, ctx=ctx)
        self._events.append(ev)
        return ev

    def post_write(self, qp: QueuePair, rkey: int, value: Any, nbytes: int, ctx=None):
        """Post an RDMA write on ``qp``; returns its completion event."""
        if self._net is None:
            self._net = qp.local.cfg.net
        ev = qp._post_write(rkey, value, nbytes, ctx=ctx)
        self._events.append(ev)
        return ev

    def post(self, post_fn):
        """Post via a prebuilt closure (see ``make_read_post``).

        Requires ``net`` to have been supplied at construction, since a
        bare closure exposes no config.
        """
        if self._net is None:
            raise VerbsError("WqeBatch.post() needs net= at construction")
        ev = post_fn()
        self._events.append(ev)
        return ev

    def ring(self, k: "TaskContext", mode: str = "user") -> Generator:
        """Ring the doorbell for everything posted: ONE CPU charge.

        No-op for an empty batch. Drive with ``yield from`` in a task.
        """
        if not self._events:
            return None
        yield k.compute(self._net.doorbell_cost, mode=mode)
        return None

    def drain(self, k: "TaskContext") -> Generator:
        """Ring, then wait every completion; returns WCs in post order."""
        yield from self.ring(k)
        wcs = []
        for ev in self._events:
            wc = yield k.wait(ev)
            wcs.append(wc)
        return wcs


def connect_qp(a: "Node", b: "Node") -> tuple:
    """Create a connected RC queue-pair between two nodes."""
    qa = QueuePair(a, b)
    qb = QueuePair(b, a)
    qa.peer, qb.peer = qb, qa
    return qa, qb


def connect_monitor_qp(a: "Node", b: "Node") -> tuple:
    """Connect a QP carrying monitoring/control traffic.

    Identical to :func:`connect_qp` unless
    ``cfg.congestion.monitor_priority`` is set, in which case both ends
    ride PFC service level 1: probe requests and responses keep
    draining while a port's bulk (priority-0) traffic is paused, so
    tenant floods and tenancy throttling can never stall monitoring.
    """
    qa, qb = connect_qp(a, b)
    if a.cfg.congestion.monitor_priority:
        qa.service_level = 1
        qb.service_level = 1
    return qa, qb
