"""Chunked (numpy-batched) random sampling for hot simulation loops.

numpy's ``Generator`` draws consume the underlying bit stream exactly
as the equivalent sequence of scalar draws would, so batching ``n``
draws into one vectorised call changes nothing about the sampled
sequence — it only replaces ``n`` Python→numpy round-trips with one
call per chunk.

The one safety condition: the RNG stream must be **dedicated** to the
sampler. If any other consumer interleaves draws on the same
``Generator``, prefetching ahead of need shifts that consumer's stream
and breaks same-seed reproducibility. Callers that interleave draw
types on one stream (e.g. the RUBiS mix generator) must keep issuing
scalar draws.
"""

from __future__ import annotations

__all__ = ["ExpSampler"]


class ExpSampler:
    """Chunked exponential sampler over a dedicated RNG stream.

    Drop-in for ``rng.exponential(scale)`` called in a loop: ``next()``
    returns the same sequence of floats the scalar calls would, while
    amortising the numpy dispatch overhead over ``CHUNK`` draws.

    The constructor prefetches the first chunk, so construct it only
    *after* any earlier scalar draws the caller makes on the stream.
    """

    __slots__ = ("_rng", "_scale", "_buf", "_i")

    CHUNK = 256

    def __init__(self, rng, scale: float) -> None:
        self._rng = rng
        self._scale = scale
        self._buf = rng.exponential(scale, size=self.CHUNK)
        self._i = 0

    def next(self) -> float:
        i = self._i
        if i >= self.CHUNK:
            self._buf = self._rng.exponential(self._scale, size=self.CHUNK)
            i = 0
        self._i = i + 1
        return self._buf[i]
