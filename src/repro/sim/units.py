"""Time units for the simulation clock.

The simulation clock is an integer number of nanoseconds. Integer time
makes event ordering exact: two events scheduled for "the same time" really
do compare equal, and determinism then rests only on the explicit
(priority, sequence) tie-breakers in the event queue rather than on
floating-point rounding.
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000

US = MICROSECOND
MS = MILLISECOND
S = SECOND


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SECOND)


def to_us(t: int) -> float:
    """Convert integer nanoseconds to microseconds."""
    return t / MICROSECOND


def to_ms(t: int) -> float:
    """Convert integer nanoseconds to milliseconds."""
    return t / MILLISECOND


def to_seconds(t: int) -> float:
    """Convert integer nanoseconds to seconds."""
    return t / SECOND


def fmt_time(t: int) -> str:
    """Render a nanosecond timestamp with a readable unit.

    >>> fmt_time(1_500)
    '1.500us'
    >>> fmt_time(2_000_000_000)
    '2.000s'
    """
    if t < MICROSECOND:
        return f"{t}ns"
    if t < MILLISECOND:
        return f"{t / MICROSECOND:.3f}us"
    if t < SECOND:
        return f"{t / MILLISECOND:.3f}ms"
    return f"{t / SECOND:.3f}s"
