"""Named, seeded random-number streams.

Every stochastic component of the simulator draws from its own named
stream derived from a single master seed via ``numpy``'s SeedSequence
spawning. Adding a new consumer therefore never perturbs the draws seen
by existing ones, which keeps experiments comparable across code changes
and makes A/B scheme comparisons paired (same arrival sequences).
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0xC1057E12) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it deterministically.

        The stream depends only on ``(master_seed, name)``, not on the
        order in which streams are first requested.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive per-name entropy from the name bytes so that creation
            # order is irrelevant.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            entropy = [self.master_seed, int(digest.sum()), len(name)]
            entropy.extend(int(b) for b in digest[:16])
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry(self.master_seed ^ (salt * 0x9E3779B9) & 0xFFFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.master_seed:#x} streams={len(self._streams)}>"
