"""Scheduler cores: the bucketed timing wheel and the reference heap.

The event population of this simulator is dominated by *near-future*
timeouts: NIC service times, IRQ costs and CPU bursts land within tens
of microseconds, and the periodic probe/heartbeat machinery lands
within tens of milliseconds. A single binary heap pays O(log n) per
insert against that whole population; the calendar-queue / timing-wheel
core below pays O(1) for everything inside its horizon and falls back
to a small overflow heap beyond it.

Both cores speak the engine's entry convention — mutable lists
``[time, priority, seq, event]`` with ``entry[3] = None`` as the O(1)
cancellation tombstone (see :mod:`repro.sim.engine`) — and expose the
same four operations:

``push(entry)``
    Insert a scheduled entry.
``pop_live_until(horizon)``
    Remove and return the next *live* entry with ``time <= horizon``,
    or ``None`` (leaving state intact) if none qualifies. Dead entries
    encountered on the way are discarded, each exactly once.
``pop_live()``
    ``pop_live_until`` with an unbounded horizon.
``peek_time()``
    Time of the next live entry, or ``2**63 - 1`` if empty.

Ordering contract
-----------------
Dispatch order is **byte-identical** to a single global heap. The wheel
partitions the time axis into buckets of ``2**bucket_bits`` ns; a ring
of ``2**ring_bits`` plain lists holds the next ``ring_size`` buckets
(O(1) append), an overflow heap holds everything beyond the horizon,
and the bucket currently draining is a real heap ordered by the full
``(time, priority, seq)`` key. Three invariants make the partition
invisible:

* Buckets partition time, so cross-bucket order is trivially the time
  order; in-bucket order is exact because the drain bucket is a heap
  over the full entry key.
* An entry scheduled *during* a drain for the bucket being drained is
  heap-pushed into the drain heap. Its sequence number is larger than
  that of every entry already popped, so it can never sort before
  anything already dispatched — no reordering is possible.
* Overflow entries migrate into the ring the moment the wheel advances
  far enough for their bucket to fall inside the horizon — checked
  against the overflow top on every bucket advance — so they are always
  back in calendar position before their bucket drains.

Sequence numbers are globally unique, so entry comparison never reaches
the event slot (also true of the historical heap), and pop order is a
pure function of ``(time, priority, seq)`` for every core. The
differential suite in ``tests/sim/test_core_differential.py`` replays
randomized workloads through the legacy, heap and wheel cores to hold
all of this to account.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import List, Optional

#: sentinel returned by ``peek_time`` on an empty core (matches the
#: engine's historical ``peek`` sentinel)
NEVER = 2**63 - 1


class BinaryHeapQueue:
    """The reference core: one global binary heap (PR 6 behaviour).

    Kept selectable (``EngineConfig.core = "heap"``) as the known-good
    baseline the differential tests compare the wheel against, and as a
    fallback for workloads whose event population defeats the wheel's
    bucketing assumptions.
    """

    kind = "heap"

    __slots__ = ("_heap",)

    def __init__(self, initial_time: int = 0) -> None:
        self._heap: List[list] = []

    def push(self, entry: list) -> None:
        heappush(self._heap, entry)

    def pop_live_until(self, horizon: int) -> Optional[list]:
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3] is None:
                heappop(heap)
                continue
            if head[0] > horizon:
                return None
            return heappop(heap)
        return None

    def pop_live(self) -> Optional[list]:
        return self.pop_live_until(NEVER)

    def peek_time(self) -> int:
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3] is not None:
                return head[0]
            heappop(heap)
        return NEVER

    def __len__(self) -> int:
        """Entry count, tombstones included."""
        return len(self._heap)


class TimingWheel:
    """Calendar-queue scheduler: O(1) insert/cancel inside the horizon.

    Parameters
    ----------
    initial_time:
        The engine clock at construction; seeds the drain-bucket number.
    bucket_bits:
        log2 of the bucket width in nanoseconds. The default 12
        (4.096 µs) keeps simultaneous hardware-cost timeouts in one or
        two buckets.
    ring_bits:
        log2 of the ring length in buckets. The default 13 (8192
        buckets, ~33.6 ms horizon with the default width) keeps every
        periodic probe/heartbeat interval up to 33 ms on the O(1) path;
        only multi-interval sleeps touch the overflow heap.

    Internal state
    --------------
    ``_cur`` is the heap for the bucket currently draining (number
    ``_cur_bno``); ``_ring[b & mask]`` is the plain append-only list for
    in-horizon bucket ``b``; ``_overflow`` is the far-future heap.
    ``_ring_count`` counts entries appended to (minus drained from) the
    ring — cancellations do not decrement it, which only costs advance
    scans over tombstone-filled buckets, bounded by the ring length.
    """

    kind = "wheel"

    __slots__ = (
        "_gbits", "_mask", "_size",
        "_cur", "_cur_bno", "_horizon_bno", "_ring", "_ring_count",
        "_overflow",
    )

    def __init__(self, initial_time: int = 0,
                 bucket_bits: int = 12, ring_bits: int = 13) -> None:
        if not 4 <= bucket_bits <= 24:
            raise ValueError(f"bucket_bits must be in [4, 24], got {bucket_bits}")
        if not 4 <= ring_bits <= 20:
            raise ValueError(f"ring_bits must be in [4, 20], got {ring_bits}")
        self._gbits = bucket_bits
        self._size = size = 1 << ring_bits
        self._mask = size - 1
        self._cur: List[list] = []
        self._cur_bno = int(initial_time) >> bucket_bits
        #: first bucket past the ring (``_cur_bno + _size``), cached so
        #: the push fast path is two compares with no arithmetic
        self._horizon_bno = self._cur_bno + size
        self._ring: List[List[list]] = [[] for _ in range(size)]
        self._ring_count = 0
        self._overflow: List[list] = []

    # -- insert ------------------------------------------------------------
    def push(self, entry: list) -> None:
        bno = entry[0] >> self._gbits
        if bno <= self._cur_bno:
            # Into (or before) the bucket being drained: the drain heap
            # orders it exactly; its fresh seq can't beat anything
            # already popped.
            heappush(self._cur, entry)
        elif bno < self._horizon_bno:
            self._ring[bno & self._mask].append(entry)
            self._ring_count += 1
        else:
            heappush(self._overflow, entry)

    # -- remove ------------------------------------------------------------
    def pop_live_until(self, horizon: int) -> Optional[list]:
        cur = self._cur
        pop = heappop
        while True:
            while cur:
                head = cur[0]
                if head[3] is None:
                    pop(cur)
                    continue
                if head[0] > horizon:
                    return None
                return pop(cur)
            if not self._advance():
                return None
            cur = self._cur

    def pop_live(self) -> Optional[list]:
        return self.pop_live_until(NEVER)

    def peek_time(self) -> int:
        cur = self._cur
        while True:
            while cur:
                head = cur[0]
                if head[3] is not None:
                    return head[0]
                heappop(cur)
            if not self._advance():
                return NEVER
            cur = self._cur

    def _advance(self) -> bool:
        """Rotate to the next non-empty bucket; load it as the drain heap.

        Caller invariant: the drain heap is empty. On every bucket step
        the overflow top is checked and every overflow entry whose
        bucket now falls inside the horizon is migrated into the ring —
        before that bucket can possibly drain. When the ring is empty
        the wheel jumps straight to the overflow top's bucket instead of
        scanning empties one by one. Returns False when nothing is left.
        """
        ring = self._ring
        over = self._overflow
        mask = self._mask
        gbits = self._gbits
        size = self._size
        bno = self._cur_bno
        count = self._ring_count
        while count or over:
            if not count:
                # Ring empty everywhere: land exactly on the overflow
                # top's bucket (safe — no slot anywhere holds entries).
                target = (over[0][0] >> gbits) - 1
                if target > bno:
                    bno = target
            bno += 1
            if over:
                limit = (bno + size) << gbits
                while over and over[0][0] < limit:
                    entry = heappop(over)
                    if entry[3] is None:
                        continue
                    ring[(entry[0] >> gbits) & mask].append(entry)
                    count += 1
            slot_index = bno & mask
            slot = ring[slot_index]
            if slot:
                ring[slot_index] = []
                self._cur_bno = bno
                self._horizon_bno = bno + size
                self._ring_count = count - len(slot)
                heapify(slot)
                self._cur = slot
                return True
        self._cur_bno = bno
        self._horizon_bno = bno + size
        self._ring_count = 0
        return False

    def __len__(self) -> int:
        """Approximate entry count (ring tombstones included)."""
        return len(self._cur) + self._ring_count + len(self._overflow)


#: registry used by Environment's ``core=`` string shorthand
CORES = {
    "wheel": TimingWheel,
    "heap": BinaryHeapQueue,
}


__all__ = ["BinaryHeapQueue", "CORES", "NEVER", "TimingWheel"]
