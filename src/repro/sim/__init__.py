"""Deterministic discrete-event simulation kernel.

This package is the substrate everything else in :mod:`repro` runs on. It
provides a SimPy-flavoured, generator-based process model on top of an
integer-nanosecond event queue with fully deterministic ordering (ties are
broken by scheduling priority, then by insertion sequence number), which is
what makes every experiment in the repository bit-reproducible under a
fixed seed.
"""

from repro.sim.engine import Environment, SimulationError, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventPriority,
    Timeout,
)
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.units import MICROSECOND, MILLISECOND, NANOSECOND, SECOND, fmt_time

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "EventPriority",
    "Interrupt",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "PriorityResource",
    "Process",
    "Resource",
    "RngRegistry",
    "SECOND",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "fmt_time",
]
