"""Indexed binary heap with O(1) cancellation.

The engine's historical pain points were two: arbitrary removal from a
``heapq`` either re-heapified the whole queue (``resources.py``) or left
the entry to be scanned around forever, and a heap of immutable tuples
gives a cancelled entry no way to drop its payload reference.

The structure here fixes both with one convention, shared by
:class:`~repro.sim.engine.Environment` (which inlines it for speed) and
:class:`IndexedHeap` (the reusable wrapper used by
:class:`~repro.sim.resources.Resource`):

* a queue entry is a **mutable list** ``[*key, item]`` whose key fields
  are compared element-wise by ``heapq``'s C implementation, exactly
  like the old tuples;
* the entry itself is the **index**: the owner stores it on the item
  (``event._entry``, ``request._qentry``), so cancellation needs no
  lookup — it is one list-slot write, ``entry[-1] = None``, which both
  marks the entry dead and releases the payload immediately;
* ``pop``/``peek`` discard dead entries as they surface. Each cancelled
  entry is popped **exactly once** (amortised ``O(log n)``, paid by the
  pop that finds it) — there is no scan, no ``heapify``, and no
  tombstone ever inspected twice.

Keys must be unique (both users include a monotonic sequence number), so
comparison never reaches the payload slot and pop order is a pure
function of the keys — which is why swapping this structure in cannot
reorder any event and keeps same-seed runs byte-identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional, Sequence


class IndexedHeap:
    """A min-heap of ``[*key, item]`` entries with O(1) cancellation.

    ``push`` returns the entry, which is the cancellation handle; the
    caller keeps it wherever is convenient (typically on the item).
    ``len()`` and truthiness reflect only *live* entries.
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._live: int = 0

    def push(self, key: Sequence, item: Any) -> list:
        """Insert ``item`` under ``key`` (unique); returns the entry."""
        entry = [*key, item]
        heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: list) -> bool:
        """Kill ``entry`` in O(1). True if it was still live."""
        if entry[-1] is None:
            return False
        entry[-1] = None
        self._live -= 1
        return True

    def pop(self) -> Any:
        """Remove and return the smallest live item.

        Dead entries surfacing at the top are discarded on the way —
        each exactly once. Raises :class:`IndexError` when empty.
        """
        heap = self._heap
        while heap:
            item = heappop(heap)[-1]
            if item is not None:
                self._live -= 1
                return item
        raise IndexError("pop from empty IndexedHeap")

    def peek_key(self) -> Optional[tuple]:
        """Key of the smallest live entry, or None when empty."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[-1] is not None:
                return tuple(head[:-1])
            heappop(heap)
        return None

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IndexedHeap live={self._live} slots={len(self._heap)}>"
