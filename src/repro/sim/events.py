"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot synchronisation point. Processes wait on
events by ``yield``-ing them; the engine resumes every waiter when the
event is *triggered* and then *processed*. Events carry a value (or an
exception) to their waiters.

Determinism contract: when several events are scheduled for the same
timestamp they fire in ``(priority, sequence)`` order, where ``sequence``
is a monotonically increasing counter assigned at scheduling time. Nothing
in the kernel ever depends on hash ordering or wall-clock time.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Environment


class EventPriority(enum.IntEnum):
    """Scheduling priority for simultaneous events (lower fires first).

    ``URGENT`` is reserved for engine-internal bookkeeping (e.g. process
    resumption after an interrupt) so that user-visible causality is
    preserved; ``HIGH`` models hardware events (interrupt assertion)
    that must beat ordinary software timeouts scheduled for the same
    instant.
    """

    URGENT = 0
    HIGH = 1
    NORMAL = 2
    LOW = 3


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence that processes can wait for.

    Lifecycle::

        created -> triggered (value/exception set, queued) -> processed

    ``succeed``/``fail`` move the event to *triggered*; the engine pops it
    from the queue and runs its callbacks, at which point it is
    *processed*. Waiting on an already-processed event resumes the waiter
    immediately (at the current time, URGENT priority).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused", "_entry", "name")

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.name = name
        #: callbacks run when the event is processed; each receives the event
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed = False
        self._defused = False
        #: live queue entry while scheduled (see repro.sim.pqueue)
        self._entry: Optional[list] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine won't re-raise it."""
        self._defused = True

    def cancel(self) -> bool:
        """Cancel this event's pending dispatch, if any. O(1).

        Delegates to :meth:`~repro.sim.engine.Environment.cancel`: True
        iff the event was triggered but not yet dispatched; its
        callbacks will then never run.
        """
        return self.env.cancel(self)

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = EventPriority.NORMAL) -> "Event":
        """Trigger the event with an exception delivered to all waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- engine hook --------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called exactly once by the engine."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are by far the most-allocated event type (every simulated
    latency is one), so ``__init__`` is hand-flattened: fields are set
    inline instead of chaining ``Event.__init__``, the name stays empty
    (``__repr__`` reconstructs the label from ``delay``), and the queue
    entry is built inline and handed straight to the scheduler core's
    bound ``env._push`` rather than going through
    ``Environment._enqueue``. The entry layout and sequence numbering
    are identical, so scheduling order is unchanged.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "Environment",
        delay: int,
        value: Any = None,
        priority: int = EventPriority.NORMAL,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        delay = int(delay)
        self.env = env
        self.name = ""
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        self._entry = entry = [env._now + delay, priority, seq, self]
        env._push(entry)

    @property
    def triggered(self) -> bool:
        """A timeout is triggered at construction."""
        return True

    def __repr__(self) -> str:
        state = "processed" if self._processed else "triggered"
        return f"<Timeout({self.delay}) {state} at {id(self):#x}>"


class Hook:
    """A pooled fire-and-forget callback carrier (engine internal).

    Behaves just enough like an :class:`Event` for the dispatch loop:
    it carries an ``_entry``, reports ``_ok``/``_defused``/``_processed``
    through constant class attributes, and ``_process`` runs exactly one
    no-argument callable — after which the carrier recycles itself into
    the environment's pool. Scheduled via
    :meth:`~repro.sim.engine.Environment.call_later`, this replaces the
    hot hardware-callback idiom (fresh ``Timeout`` + callback list +
    closure per op) with zero steady-state allocation. Hooks cannot be
    waited on or cancelled; they are not part of the Event lifecycle.
    """

    __slots__ = ("env", "fn", "_entry")

    _ok = True
    _defused = False
    _processed = False
    name = ""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.fn: Optional[Callable[[], None]] = None
        self._entry: Optional[list] = None

    def _process(self) -> None:
        fn = self.fn
        self.fn = None
        # Recycle before the call: _entry/fn are dead, and the dispatch
        # loop only reads the constant class attributes afterwards, so a
        # reentrant call_later from inside fn() may safely reuse this
        # carrier.
        self.env._hook_pool.append(self)
        fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self.fn is not None else "pooled"
        return f"<Hook {state} at {id(self):#x}>"


class ConditionValue:
    """Mapping-like view of the events that fired in a condition.

    Preserves the order in which the condition's constituent events were
    given, exposing only those that are processed.
    """

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a fixed list of sub-events.

    ``evaluate`` decides when the condition is met; :class:`AllOf` and
    :class:`AnyOf` are the standard instantiations. A failed sub-event
    fails the whole condition immediately.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: List[Event],
    ) -> None:
        super().__init__(env, name=evaluate.__name__)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        return ConditionValue([e for e in self._events if e.processed])

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when the first sub-event fires."""

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
