"""Lightweight event tracing.

A :class:`Tracer` records ``(time, category, payload)`` tuples. Components
emit trace points behind a cheap enabled-check so that tracing costs
nothing when off. Tests and the interrupt-observatory example use traces
to assert on causality (e.g. "the softirq ran before the reader woke").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace point."""

    time: int
    category: str
    payload: Any

    def __iter__(self) -> Iterator[Any]:
        return iter((self.time, self.category, self.payload))


class Tracer:
    """Append-only trace buffer with per-category filtering."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._hooks: Dict[str, List[Callable[[TraceRecord], None]]] = {}
        #: per-category index maintained on emit, so category reads are
        #: O(matches) instead of scanning every record ever traced
        self._by_category: Dict[str, List[TraceRecord]] = {}

    def emit(self, time: int, category: str, payload: Any = None) -> None:
        """Record a trace point (no-op when disabled)."""
        if not self.enabled:
            return
        record = TraceRecord(time, category, payload)
        self.records.append(record)
        self._by_category.setdefault(category, []).append(record)
        for hook in self._hooks.get(category, ()):
            hook(record)

    def hook(self, category: str, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` for every record in ``category`` (while enabled)."""
        self._hooks.setdefault(category, []).append(fn)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category, in time order."""
        return list(self._by_category.get(category, ()))

    def categories(self) -> List[str]:
        """Categories seen so far (sorted)."""
        return sorted(self._by_category)

    def between(self, start: int, end: int) -> List[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def clear(self) -> None:
        self.records.clear()
        self._by_category.clear()

    def __len__(self) -> int:
        return len(self.records)
