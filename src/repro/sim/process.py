"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator. The generator ``yield``s
:class:`~repro.sim.events.Event` objects; the process suspends until the
yielded event fires and resumes with the event's value (or the event's
exception thrown into it). A Process is itself an Event that fires when
the generator returns, so processes can wait on each other directly.

Interrupts: ``process.interrupt(cause)`` throws :class:`Interrupt` into
the generator at the current simulation time. The interrupted process
stops waiting on whatever event it was waiting for (the event stays
valid; its other waiters are unaffected).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class _InterruptMarker(Event):
    """Internal carrier event delivering an interrupt to a process."""

    __slots__ = ()


class Process(Event):
    """A running simulation process (also an event: fires on completion)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        #: event this process is currently waiting on (None while running)
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current time, after any
        # events already queued for this instant at URGENT priority.
        init = Event(env, name=f"init:{self.name}")
        assert init.callbacks is not None
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        env._enqueue(init, EventPriority.URGENT)

    # -- public API ---------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """Event the process is waiting for (``None`` if running/finished)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into this process as soon as possible."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        marker = _InterruptMarker(self.env, name=f"interrupt:{self.name}")
        assert marker.callbacks is not None
        marker.callbacks.append(self._resume)
        marker.fail(Interrupt(cause), priority=EventPriority.URGENT)
        marker.defuse()

    # -- engine plumbing ------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome.

        The hottest function in the kernel (it runs once per process
        step), so state is read through slots and locals directly.
        """
        env = self.env
        resume = self._resume
        # If we were waiting on a regular event, detach from it (relevant
        # for interrupts: the original target may fire later and must not
        # resume us again).
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(resume)
                except ValueError:
                    pass
            self._target = None

        env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # Mark the failure as handled; if the process doesn't catch
                # it, we will fail the process event below instead.
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value, priority=EventPriority.URGENT)
            return
        except BaseException as exc:
            env._active_process = None
            from repro.sim.engine import StopSimulation

            if isinstance(exc, StopSimulation):
                raise
            self.fail(exc, priority=EventPriority.URGENT)
            return
        env._active_process = None

        if not isinstance(result, Event):
            raise TypeError(
                f"process {self.name!r} yielded {result!r}; processes must "
                "yield Event instances"
            )
        if result.env is not env:
            raise ValueError("yielded an event from a different environment")

        if result._processed:
            # Already done: resume at the current instant, urgently.
            relay = Event(env, name=f"relay:{self.name}")
            relay.callbacks.append(resume)
            relay._ok = result._ok
            relay._value = result._value
            if not result._ok:
                result._defused = True
            env._enqueue(relay, EventPriority.URGENT)
        else:
            result.callbacks.append(resume)
            self._target = result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else ("waiting" if self._target else "active")
        return f"<Process {self.name} {state}>"
