"""The discrete-event engine.

:class:`Environment` owns the clock and the event queue and drives the
simulation. It is deliberately minimal: all domain behaviour (CPUs,
NICs, kernels) is built as processes and events on top of it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, EventPriority, Timeout
from repro.sim.process import Process


class SimulationError(Exception):
    """Raised for structural misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised inside a process to stop the whole simulation immediately."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Internal: the event queue ran dry."""


class Environment:
    """A simulation environment: clock, event queue, process factory.

    Parameters
    ----------
    initial_time:
        Starting value of the nanosecond clock.

    Notes
    -----
    The queue is a binary heap of ``(time, priority, sequence, event)``
    tuples. ``sequence`` increases monotonically with each scheduling
    operation, so simultaneous same-priority events fire in the exact
    order they were scheduled — the keystone of reproducibility.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now: int = int(initial_time)
        self._queue: List[Tuple[int, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        #: number of events processed so far (diagnostics / tests)
        self.processed_events: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a new untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None, priority: int = EventPriority.NORMAL) -> Timeout:
        """Create an event that fires ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, priority: int, delay: int = 0) -> None:
        """Schedule a triggered event for processing ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heappush(self._queue, (self._now + delay, int(priority), self._seq, event))

    def peek(self) -> int:
        """Time of the next scheduled event, or a sentinel max if none."""
        if not self._queue:
            return 2**63 - 1
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next event. Raises :class:`EmptySchedule` if none."""
        try:
            when, _prio, _seq, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        assert when >= self._now, "event queue went backwards"
        self._now = when
        self.processed_events += 1
        event._process()
        # An un-handled failure propagates out of the run loop unless some
        # waiter defused it (e.g. a process that caught the exception).
        if not event.ok and not event.defused:
            exc = event.value
            raise exc

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * an ``int`` — run until that absolute time (clock lands exactly
          on it);
        * an :class:`Event` — run until that event is processed, returning
          its value.
        """
        stop_event: Optional[Event] = None
        horizon: Optional[int] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = int(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} is in the past (now={self._now})"
                )

        try:
            while True:
                if stop_event is not None and stop_event.processed:
                    if not stop_event.ok:
                        raise stop_event.value
                    return stop_event.value
                if horizon is not None and self.peek() > horizon:
                    self._now = horizon
                    return None
                try:
                    self.step()
                except EmptySchedule:
                    if stop_event is not None and not stop_event.processed:
                        raise SimulationError(
                            f"run() until-event {stop_event!r} can never fire: "
                            "event queue is empty"
                        ) from None
                    if horizon is not None:
                        self._now = horizon
                    return None
        except StopSimulation as stop:
            return stop.value

    def run_until_quiet(self, max_time: int) -> None:
        """Run until nothing is scheduled before ``max_time``; clamp clock."""
        while self._queue and self.peek() <= max_time:
            self.step()
        self._now = max(self._now, max_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment t={self._now} queued={len(self._queue)}>"
