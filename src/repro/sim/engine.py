"""The discrete-event engine.

:class:`Environment` owns the clock and the scheduler core and drives
the simulation. It is deliberately minimal: all domain behaviour (CPUs,
NICs, kernels) is built as processes and events on top of it.

Performance notes
-----------------
This module is the hottest code in the repository — every simulated
nanosecond flows through it — so it trades a little uniformity for
speed in three deliberate ways:

* The scheduler holds **mutable list entries** ``[time, priority, seq,
  event]`` (the :mod:`repro.sim.pqueue` convention) instead of tuples.
  Each scheduled event carries its entry in ``event._entry``, which
  makes :meth:`Environment.cancel` a single O(1) slot write — no
  tombstone scans, no re-heapify. Dead entries are discarded when they
  surface, each exactly once.
* The pending-event store is a pluggable **scheduler core**
  (:mod:`repro.sim.wheel`): the default bucketed timing wheel gives
  O(1) insert for everything inside its ~33 ms horizon, with the
  pre-wheel global binary heap selectable as the reference core. Both
  dispatch in the identical ``(time, priority, seq)`` order — held to
  account by the differential suite — so the choice of core never
  changes a simulation result, only its wall-clock.
* :meth:`run` inlines the pop/dispatch loop per ``until`` mode rather
  than calling :meth:`step`, binding the core's pop to a local and
  reading event state through slots directly. ``step`` and ``peek``
  remain for incremental driving and tests.

Sequence numbers stay globally monotonic and unique, so entry
comparison never reaches the event slot and dispatch order is a pure
function of ``(time, priority, seq)`` — byte-identical to the
historical tuple heap for any same-seed run.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from repro.sim.events import AllOf, AnyOf, Event, EventPriority, Hook, Timeout
from repro.sim.process import Process
from repro.sim.wheel import CORES, NEVER, TimingWheel


class SimulationError(Exception):
    """Raised for structural misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised inside a process to stop the whole simulation immediately."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Internal: the event queue ran dry."""


class Environment:
    """A simulation environment: clock, scheduler core, process factory.

    Parameters
    ----------
    initial_time:
        Starting value of the nanosecond clock.
    core:
        The scheduler core: ``"wheel"`` (default) or ``"heap"`` by
        name, or a pre-built core object implementing the
        :mod:`repro.sim.wheel` protocol (``push`` / ``pop_live`` /
        ``pop_live_until`` / ``peek_time``).
    wheel_bucket_bits / wheel_ring_bits:
        Wheel geometry, forwarded to :class:`~repro.sim.wheel.TimingWheel`
        when ``core="wheel"`` (ignored otherwise). See
        ``docs/PERF.md`` for sizing guidance.

    Notes
    -----
    Entries are ``[time, priority, sequence, event]`` lists.
    ``sequence`` increases monotonically with each scheduling operation,
    so simultaneous same-priority events fire in the exact order they
    were scheduled — the keystone of reproducibility. Cancelled entries
    have their event slot set to ``None`` and are dropped when they
    surface inside the core.
    """

    __slots__ = ("_now", "_core", "_push", "_seq", "_active_process",
                 "_hook_pool", "processed_events", "cancelled_events")

    def __init__(self, initial_time: int = 0,
                 core: Union[str, object] = "wheel", *,
                 wheel_bucket_bits: int = 12,
                 wheel_ring_bits: int = 13) -> None:
        self._now: int = int(initial_time)
        if isinstance(core, str):
            try:
                factory = CORES[core]
            except KeyError:
                raise SimulationError(
                    f"unknown scheduler core {core!r} "
                    f"(choose from {sorted(CORES)})"
                ) from None
            if factory is TimingWheel:
                core = TimingWheel(self._now, bucket_bits=wheel_bucket_bits,
                                   ring_bits=wheel_ring_bits)
            else:
                core = factory(self._now)
        self._core = core
        #: bound fast-path insert, used by Timeout.__init__ directly
        self._push = core.push
        self._seq: int = 0
        #: recycled Hook carriers for call_later (see repro.sim.events)
        self._hook_pool: List[Hook] = []
        self._active_process: Optional[Process] = None
        #: number of events processed so far (diagnostics / tests)
        self.processed_events: int = 0
        #: number of scheduled events cancelled before dispatch
        self.cancelled_events: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def core_kind(self) -> str:
        """Name of the scheduler core in use (``"wheel"``, ``"heap"``)."""
        return getattr(self._core, "kind", type(self._core).__name__)

    # -- factories -----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a new untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None, priority: int = EventPriority.NORMAL) -> Timeout:
        """Create an event that fires ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, priority: int, delay: int = 0) -> None:
        """Schedule a triggered event for processing ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        event._entry = entry = [self._now + delay, priority, seq, event]
        self._push(entry)

    def call_later(self, delay: int, fn, priority: int = EventPriority.NORMAL) -> None:
        """Schedule ``fn()`` to run ``delay`` ns from now (fire-and-forget).

        The zero-allocation fast path for hardware service callbacks
        (NIC DMA completion, wire arrival): the carrier event comes from
        — and immediately returns to — an internal pool, so the
        steady-state verbs/fabric paths allocate nothing per operation.
        The schedule is deliberately not cancellable and not waitable;
        use :meth:`timeout` when a handle is needed. Ordering is the
        ordinary ``(time, priority, seq)`` contract, identical to an
        equivalently-scheduled timeout.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        pool = self._hook_pool
        hook = pool.pop() if pool else Hook(self)
        hook.fn = fn
        self._seq = seq = self._seq + 1
        hook._entry = entry = [self._now + delay, priority, seq, hook]
        self._push(entry)

    def cancel(self, event: Event) -> bool:
        """Cancel a scheduled event before it dispatches. O(1).

        Returns True if the event was pending dispatch (its callbacks
        will now never run and it will never count as processed), False
        if it was not scheduled — never triggered, already processed, or
        already cancelled. Does not touch the core: the dead entry is
        discarded when it surfaces.
        """
        entry = event._entry
        if entry is None:
            return False
        entry[3] = None
        event._entry = None
        self.cancelled_events += 1
        return True

    def peek(self) -> int:
        """Time of the next scheduled event, or a sentinel max if none."""
        return self._core.peek_time()

    def step(self) -> None:
        """Process the next event. Raises :class:`EmptySchedule` if none."""
        entry = self._core.pop_live()
        if entry is None:
            raise EmptySchedule()
        event = entry[3]
        event._entry = None
        self._now = entry[0]
        self.processed_events += 1
        event._process()
        # An un-handled failure propagates out of the run loop unless
        # some waiter defused it (e.g. a process that caught the
        # exception).
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * an ``int`` — run until that absolute time (clock lands exactly
          on it);
        * an :class:`Event` — run until that event is processed, returning
          its value.
        """
        if until is None:
            return self._run_drain()
        if isinstance(until, Event):
            return self._run_until_event(until)
        horizon = int(until)
        if horizon < self._now:
            raise SimulationError(
                f"until={horizon} is in the past (now={self._now})"
            )
        return self._run_until_time(horizon)

    def _run_drain(self) -> Any:
        """run(None): drain the queue completely."""
        pop = self._core.pop_live
        processed = self.processed_events
        try:
            while True:
                entry = pop()
                if entry is None:
                    return None
                event = entry[3]
                event._entry = None
                self._now = entry[0]
                processed += 1
                self.processed_events = processed
                event._process()
                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.value

    def _run_until_event(self, stop_event: Event) -> Any:
        """run(event): dispatch until ``stop_event`` is processed."""
        pop = self._core.pop_live
        try:
            while not stop_event._processed:
                entry = pop()
                if entry is None:
                    raise SimulationError(
                        f"run() until-event {stop_event!r} can never fire: "
                        "event queue is empty"
                    )
                event = entry[3]
                event._entry = None
                self._now = entry[0]
                self.processed_events += 1
                event._process()
                if not event._ok and not event._defused:
                    raise event._value
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        except StopSimulation as stop:
            return stop.value

    def _run_until_time(self, horizon: int) -> Any:
        """run(int): dispatch everything at or before ``horizon``."""
        pop_until = self._core.pop_live_until
        processed = self.processed_events
        try:
            while True:
                entry = pop_until(horizon)
                if entry is None:
                    break
                event = entry[3]
                event._entry = None
                self._now = entry[0]
                processed += 1
                self.processed_events = processed
                event._process()
                if not event._ok and not event._defused:
                    raise event._value
            self._now = horizon
            return None
        except StopSimulation as stop:
            return stop.value

    def run_until_quiet(self, max_time: int) -> None:
        """Run until nothing is scheduled before ``max_time``; clamp clock."""
        pop_until = self._core.pop_live_until
        while True:
            entry = pop_until(max_time)
            if entry is None:
                break
            event = entry[3]
            event._entry = None
            self._now = entry[0]
            self.processed_events += 1
            event._process()
            if not event._ok and not event._defused:
                raise event._value
        if self._now < max_time:
            self._now = max_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Environment t={self._now} core={self.core_kind} "
                f"queued={len(self._core)}>")


#: re-exported for callers that pattern-match on the peek sentinel
PEEK_NEVER = NEVER
