"""The discrete-event engine.

:class:`Environment` owns the clock and the event queue and drives the
simulation. It is deliberately minimal: all domain behaviour (CPUs,
NICs, kernels) is built as processes and events on top of it.

Performance notes
-----------------
This module is the hottest code in the repository — every simulated
nanosecond flows through it — so it trades a little uniformity for
speed in three deliberate ways:

* The queue holds **mutable list entries** ``[time, priority, seq,
  event]`` (the :mod:`repro.sim.pqueue` convention) instead of tuples.
  Each scheduled event carries its entry in ``event._entry``, which
  makes :meth:`Environment.cancel` a single O(1) slot write — no
  tombstone scans, no re-heapify. Dead entries are discarded when they
  surface at the heap top, each exactly once.
* :meth:`run` inlines the pop/dispatch loop per ``until`` mode rather
  than calling :meth:`step`, binding the queue and ``heappop`` to
  locals and reading event state through slots directly. ``step`` and
  ``peek`` remain for incremental driving and tests.
* Sequence numbers stay globally monotonic and unique, so heap
  comparison never reaches the event slot and dispatch order is a pure
  function of ``(time, priority, seq)`` — byte-identical to the
  historical tuple heap for any same-seed run.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, List, Optional

from repro.sim.events import AllOf, AnyOf, Event, EventPriority, Timeout
from repro.sim.process import Process


class SimulationError(Exception):
    """Raised for structural misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised inside a process to stop the whole simulation immediately."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(Exception):
    """Internal: the event queue ran dry."""


class Environment:
    """A simulation environment: clock, event queue, process factory.

    Parameters
    ----------
    initial_time:
        Starting value of the nanosecond clock.

    Notes
    -----
    The queue is a binary heap of ``[time, priority, sequence, event]``
    entries. ``sequence`` increases monotonically with each scheduling
    operation, so simultaneous same-priority events fire in the exact
    order they were scheduled — the keystone of reproducibility.
    Cancelled entries have their event slot set to ``None`` and are
    dropped when they reach the heap top.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now: int = int(initial_time)
        self._queue: List[list] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        #: number of events processed so far (diagnostics / tests)
        self.processed_events: int = 0
        #: number of scheduled events cancelled before dispatch
        self.cancelled_events: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -----------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a new untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None, priority: int = EventPriority.NORMAL) -> Timeout:
        """Create an event that fires ``delay`` nanoseconds from now."""
        return Timeout(self, delay, value=value, priority=priority)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, priority: int, delay: int = 0) -> None:
        """Schedule a triggered event for processing ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq = seq = self._seq + 1
        event._entry = entry = [self._now + delay, priority, seq, event]
        heappush(self._queue, entry)

    def cancel(self, event: Event) -> bool:
        """Cancel a scheduled event before it dispatches. O(1).

        Returns True if the event was pending dispatch (its callbacks
        will now never run and it will never count as processed), False
        if it was not scheduled — never triggered, already processed, or
        already cancelled. Does not touch the heap: the dead entry is
        discarded when it surfaces at the top.
        """
        entry = event._entry
        if entry is None:
            return False
        entry[3] = None
        event._entry = None
        self.cancelled_events += 1
        return True

    def peek(self) -> int:
        """Time of the next scheduled event, or a sentinel max if none."""
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3] is not None:
                return head[0]
            heappop(queue)
        return 2**63 - 1

    def step(self) -> None:
        """Process the next event. Raises :class:`EmptySchedule` if none."""
        queue = self._queue
        while queue:
            entry = heappop(queue)
            event = entry[3]
            if event is not None:
                event._entry = None
                self._now = entry[0]
                self.processed_events += 1
                event._process()
                # An un-handled failure propagates out of the run loop
                # unless some waiter defused it (e.g. a process that
                # caught the exception).
                if not event._ok and not event._defused:
                    raise event._value
                return
        raise EmptySchedule()

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * an ``int`` — run until that absolute time (clock lands exactly
          on it);
        * an :class:`Event` — run until that event is processed, returning
          its value.
        """
        if until is None:
            return self._run_drain()
        if isinstance(until, Event):
            return self._run_until_event(until)
        horizon = int(until)
        if horizon < self._now:
            raise SimulationError(
                f"until={horizon} is in the past (now={self._now})"
            )
        return self._run_until_time(horizon)

    def _run_drain(self) -> Any:
        """run(None): drain the queue completely."""
        queue = self._queue
        pop = heappop
        processed = self.processed_events
        try:
            while queue:
                entry = pop(queue)
                event = entry[3]
                if event is None:
                    continue
                event._entry = None
                self._now = entry[0]
                processed += 1
                self.processed_events = processed
                event._process()
                if not event._ok and not event._defused:
                    raise event._value
            return None
        except StopSimulation as stop:
            return stop.value

    def _run_until_event(self, stop_event: Event) -> Any:
        """run(event): dispatch until ``stop_event`` is processed."""
        queue = self._queue
        pop = heappop
        try:
            while not stop_event._processed:
                while queue:
                    entry = pop(queue)
                    event = entry[3]
                    if event is not None:
                        break
                else:
                    raise SimulationError(
                        f"run() until-event {stop_event!r} can never fire: "
                        "event queue is empty"
                    )
                event._entry = None
                self._now = entry[0]
                self.processed_events += 1
                event._process()
                if not event._ok and not event._defused:
                    raise event._value
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        except StopSimulation as stop:
            return stop.value

    def _run_until_time(self, horizon: int) -> Any:
        """run(int): dispatch everything at or before ``horizon``."""
        queue = self._queue
        pop = heappop
        processed = self.processed_events
        try:
            while queue:
                head = queue[0]
                event = head[3]
                if event is None:
                    pop(queue)
                    continue
                if head[0] > horizon:
                    break
                pop(queue)
                event._entry = None
                self._now = head[0]
                processed += 1
                self.processed_events = processed
                event._process()
                if not event._ok and not event._defused:
                    raise event._value
            self._now = horizon
            return None
        except StopSimulation as stop:
            return stop.value

    def run_until_quiet(self, max_time: int) -> None:
        """Run until nothing is scheduled before ``max_time``; clamp clock."""
        queue = self._queue
        pop = heappop
        while queue:
            head = queue[0]
            event = head[3]
            if event is None:
                pop(queue)
                continue
            if head[0] > max_time:
                break
            pop(queue)
            event._entry = None
            self._now = head[0]
            self.processed_events += 1
            event._process()
            if not event._ok and not event._defused:
                raise event._value
        if self._now < max_time:
            self._now = max_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Environment t={self._now} queued={len(self._queue)}>"
