"""Shared-resource primitives built on the event kernel.

These mirror the classic SimPy resource trio:

* :class:`Resource` — N identical slots, FIFO queueing.
* :class:`PriorityResource` — slots granted lowest-priority-value-first
  (FIFO within a priority level).
* :class:`Store` — a FIFO buffer of Python objects with blocking get/put.
* :class:`Container` — a divisible quantity (bytes, tokens).

All waiting is strictly deterministic: queues are explicit lists ordered
by (priority, arrival sequence).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from repro.sim.events import Event
from repro.sim.pqueue import IndexedHeap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...

    which guarantees release even if the process is interrupted.
    """

    __slots__ = ("resource", "priority", "_order", "_qentry")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env, name=f"req:{resource.name}")
        self.resource = resource
        self.priority = priority
        resource._seq += 1
        self._order = resource._seq
        #: live wait-queue entry while queued (see repro.sim.pqueue)
        self._qentry: Optional[list] = None
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical slots with FIFO (or priority) queueing."""

    def __init__(self, env: "Environment", capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._seq = 0
        self.users: List[Request] = []
        #: waiting requests keyed by (priority, order); live-count aware
        self.queue: IndexedHeap = IndexedHeap()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot. Safe to call for a never-granted request."""
        try:
            self.users.remove(request)
        except ValueError:
            self._cancel(request)
            return
        self._grant_next()

    # -- internals ----------------------------------------------------------
    def _request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            request.succeed()
        else:
            request._qentry = self.queue.push(
                (request.priority, request._order), request
            )

    def _cancel(self, request: Request) -> None:
        # O(1): tombstone the entry; _grant_next discards it when it
        # surfaces (previously this scanned and re-heapified the queue).
        entry = request._qentry
        if entry is not None:
            request._qentry = None
            self.queue.cancel(entry)

    def _grant_next(self) -> None:
        queue = self.queue
        users = self.users
        while queue and len(users) < self.capacity:
            request = queue.pop()
            request._qentry = None
            if request.triggered:
                continue
            users.append(request)
            request.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.name} {self.count}/{self.capacity} q={len(self.queue)}>"


class PriorityResource(Resource):
    """Alias with priority-aware requests made explicit in the name."""


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ("store", "filter")

    def __init__(self, store: "Store", item_filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env, name=f"get:{store.name}")
        self.store = store
        self.filter = item_filter
        store._getters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        try:
            self.store._getters.remove(self)
        except ValueError:
            pass


class StorePut(Event):
    """Pending insertion into a bounded :class:`Store`."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env, name=f"put:{store.name}")
        self.store = store
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """FIFO object buffer with blocking get/put.

    ``capacity`` bounds the number of buffered items; ``put`` blocks when
    full. ``get`` optionally takes a filter predicate (first matching item
    is returned, preserving FIFO order among matches).
    """

    def __init__(self, env: "Environment", capacity: int = 2**62, name: str = "store") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; fires when the item is buffered."""
        return StorePut(self, item)

    def get(self, item_filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return the first (matching) item; blocks if none."""
        return StoreGet(self, item_filter)

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self.items and not self._getters:
            return True, self.items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ----------------------------------------------------------
    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy pending gets.
            i = 0
            while i < len(self._getters) and self.items:
                getter = self._getters[i]
                matched_idx = None
                if getter.filter is None:
                    matched_idx = 0
                else:
                    for j, item in enumerate(self.items):
                        if getter.filter(item):
                            matched_idx = j
                            break
                if matched_idx is None:
                    i += 1
                    continue
                item = self.items[matched_idx]
                del self.items[matched_idx]
                self._getters.pop(i)
                getter.succeed(item)
                progress = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Store {self.name} n={len(self.items)}>"


class ContainerGet(Event):
    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env, name=f"cget:{container.name}")
        self.container = container
        self.amount = amount
        container._getters.append(self)
        container._dispatch()


class ContainerPut(Event):
    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container.env, name=f"cput:{container.name}")
        self.container = container
        self.amount = amount
        container._putters.append(self)
        container._dispatch()


class Container:
    """A divisible quantity with blocking get/put (e.g. buffer bytes)."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.name = name
        self.capacity = capacity
        self.level = init
        self._getters: List[ContainerGet] = []
        self._putters: List[ContainerPut] = []

    def get(self, amount: float) -> ContainerGet:
        if amount <= 0:
            raise ValueError("amount must be positive")
        return ContainerGet(self, amount)

    def put(self, amount: float) -> ContainerPut:
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ValueError("amount exceeds container capacity")
        return ContainerPut(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                put = self._putters[0]
                if self.level + put.amount <= self.capacity:
                    self._putters.pop(0)
                    self.level += put.amount
                    put.succeed()
                    progress = True
            if self._getters:
                get = self._getters[0]
                if self.level >= get.amount:
                    self._getters.pop(0)
                    self.level -= get.amount
                    get.succeed()
                    progress = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Container {self.name} {self.level}/{self.capacity}>"
