"""The front-door API: a fluent builder for a fully-wired cluster.

:class:`ClusterBuilder` is the one way to assemble the application
stack — booted cluster, back-end web servers, a monitoring scheme with
its front-end poller, the load balancer (extended scoring iff the
scheme is e-RDMA-Sync), and the dispatcher — plus any of the optional
planes (admission control, telemetry, alert shedding, span tracing,
fault injection, heartbeat failover, hierarchical federation,
congestion-realistic fabric)::

    from repro.api import ClusterBuilder

    cluster = (
        ClusterBuilder(cfg)
        .scheme("rdma-sync", interval=20 * MS)
        .with_telemetry()
        .with_faults("at 2s crash backend3")
        .build()
    )
    cluster.run(until=10 * S)

Each ``with_*`` method returns the builder, so a deployment reads as a
single expression naming exactly the planes it enables; everything not
named stays off and the run is byte-identical to the minimal stack
(property-tested). ``build()`` may be called once; it returns the same
:class:`~repro.experiments.common.RubisCluster` handle the legacy
helper returned.

The legacy ``repro.experiments.common.deploy_rubis_cluster`` /
``repro.federation.deploy_federation`` entry points remain as thin
shims over this builder and produce fingerprint-identical clusters
(also property-tested), but new code should use the builder.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Optional, Sequence

from repro.config import SimConfig
from repro.faults import FaultPlane, FaultSchedule, parse_schedule
from repro.federation import deploy_federation
from repro.hw.cluster import build_cluster
from repro.monitoring import FrontendMonitor, create_scheme
from repro.monitoring.heartbeat import HeartbeatMonitor
from repro.server.admission import AdmissionController
from repro.server.dispatcher import Dispatcher
from repro.server.loadbalancer import LeastLoadedBalancer, TwoLevelBalancer
from repro.server.webserver import BackendServer

__all__ = ["ClusterBuilder"]


def _audit_kwargs(method: str, extra: dict, valid: Sequence[str]) -> None:
    """Reject unknown chain-method keywords with a did-you-mean hint.

    Mirrors the config-schema audit: a misspelled knob on any builder
    chain method raises immediately instead of silently vanishing into
    ``**kwargs`` (or a bare TypeError with no suggestion).
    """
    if not extra:
        return
    name = next(iter(extra))
    matches = get_close_matches(name, valid, n=1, cutoff=0.6)
    hint = f" — did you mean {matches[0]!r}?" if matches else ""
    raise TypeError(
        f"ClusterBuilder.{method}() got unknown keyword argument "
        f"{name!r}{hint} (valid keywords: {', '.join(sorted(valid))})"
    )


class ClusterBuilder:
    """Fluent assembly of a monitored cluster (see module docstring)."""

    def __init__(self, cfg: Optional[SimConfig] = None) -> None:
        self._cfg = cfg if cfg is not None else SimConfig()
        self._scheme_name = "rdma-sync"
        self._interval: Optional[int] = None
        self._scheme_kwargs: dict = {}
        self._workers: Optional[int] = None
        self._admission = False
        self._admission_max_score = 0.85
        self._telemetry = False
        self._telemetry_rules = None
        self._alert_shedding = False
        self._fault_schedule: Optional[FaultSchedule] = None
        self._heartbeat = False
        self._heartbeat_interval = 50_000_000
        self._heartbeat_timeout = 10_000_000
        self._heartbeat_hung_after = 2
        self._workloads: list = []
        self._built = False

    # -- knobs ----------------------------------------------------------
    def scheme(self, name: str, *, interval: Optional[int] = None,
               **kwargs) -> "ClusterBuilder":
        """Choose the monitoring scheme (default ``rdma-sync``).

        ``interval`` overrides ``cfg.monitor.interval`` for the scheme's
        probe loop; extra keywords are forwarded to the scheme
        constructor via :func:`~repro.monitoring.registry.create_scheme`
        (which rejects unknown ones by name).
        """
        self._scheme_name = name
        self._interval = interval
        self._scheme_kwargs = kwargs
        return self

    def workers(self, n: int) -> "ClusterBuilder":
        """Web-server worker processes per back-end (default from cfg)."""
        self._workers = n
        return self

    def with_admission(self, *, max_score: float = 0.85,
                       **extra) -> "ClusterBuilder":
        """Reject requests when every back-end scores above ``max_score``."""
        _audit_kwargs("with_admission", extra, ["max_score"])
        self._admission = True
        self._admission_max_score = max_score
        return self

    def with_telemetry(self, *, rules=None, **extra) -> "ClusterBuilder":
        """Attach the bounded telemetry pipeline to the front-end monitor."""
        _audit_kwargs("with_telemetry", extra, ["rules"])
        self._telemetry = True
        self._telemetry_rules = rules
        return self

    def with_alert_shedding(self) -> "ClusterBuilder":
        """Route around critically-alerted back-ends (implies telemetry)."""
        self._alert_shedding = True
        return self

    def with_tracing(self, *, sample: float = 1.0, **extra) -> "ClusterBuilder":
        """Enable the causal span plane at head-sampling rate ``sample``."""
        _audit_kwargs("with_tracing", extra, ["sample"])
        self._cfg.tracing.enabled = True
        self._cfg.tracing.sample_rate = sample
        return self

    def with_faults(self, schedule) -> "ClusterBuilder":
        """Install the deterministic fault plane.

        ``schedule`` is a :class:`~repro.faults.FaultSchedule` or
        schedule text for :func:`~repro.faults.parse_schedule`.
        """
        if isinstance(schedule, str):
            schedule = parse_schedule(schedule)
        elif not isinstance(schedule, FaultSchedule):
            raise TypeError("with_faults() takes a FaultSchedule or schedule text")
        self._fault_schedule = schedule
        return self

    def with_heartbeat(self, *, interval: int = 50_000_000,
                       timeout: int = 10_000_000,
                       hung_after: int = 2, **extra) -> "ClusterBuilder":
        """Run the RDMA heartbeat monitor and health-aware failover."""
        _audit_kwargs("with_heartbeat", extra,
                      ["interval", "timeout", "hung_after"])
        self._heartbeat = True
        self._heartbeat_interval = interval
        self._heartbeat_timeout = timeout
        self._heartbeat_hung_after = hung_after
        return self

    def engine(self, core: str = "wheel", **knobs) -> "ClusterBuilder":
        """Select the discrete-event scheduler core.

        ``core`` is ``"wheel"`` (the bucketed timing wheel, the default
        everywhere) or ``"heap"`` (the pre-wheel global binary heap kept
        as the reference core); extra keywords are ``cfg.engine`` knobs
        (``wheel_bucket_bits=...``, ``wheel_ring_bits=...``) and a
        mistyped name raises immediately with a did-you-mean hint,
        courtesy of the audited config schema. Both cores dispatch in
        the identical ``(time, priority, seq)`` order — enforced by the
        differential conformance suite — so this switch never changes a
        simulation result, only its wall-clock.
        """
        eng = self._cfg.engine
        eng.core = core
        for name, value in knobs.items():
            setattr(eng, name, value)
        return self

    def congestion(self, **knobs) -> "ClusterBuilder":
        """Enable the congestion-realistic fabric (ECN/DCQCN/PFC).

        Keywords are ``cfg.congestion`` knobs (``dcqcn=False``,
        ``ecn_kmin=...``, ``pfc_xoff=...``, ...); a mistyped name raises
        immediately with a did-you-mean hint, courtesy of the audited
        config schema. ``enabled`` is implied — calling this method at
        all switches the plane on.
        """
        cc = self._cfg.congestion
        cc.enabled = True
        for name, value in knobs.items():
            setattr(cc, name, value)
        return self

    def tenancy(self, **knobs) -> "ClusterBuilder":
        """Enable the multi-tenant NIC resource model (see repro.tenancy).

        Keywords are ``cfg.tenancy`` knobs (``qp_table_size=...``,
        ``icm_entries=...``, ``defense=True``, ``offend_mbps=...``, ...);
        a mistyped name raises immediately with a did-you-mean hint,
        courtesy of the audited config schema. ``enabled`` is implied —
        calling this method at all installs the plane, giving every NIC
        a bounded QP table and a shared ICM context cache, and policing
        tenant verbs at post time. The built cluster's
        ``sim.tenancy`` handle carries the registry and defense loop.
        """
        tn = self._cfg.tenancy
        tn.enabled = True
        for name, value in knobs.items():
            setattr(tn, name, value)
        return self

    def observability(self, **knobs) -> "ClusterBuilder":
        """Enable the OpenMetrics observability surface (see repro.obs).

        Keywords are ``cfg.obs`` knobs (``namespace=...``,
        ``snapshot_dir=...``, ``http=True``, ``http_port=...``, ...); a
        mistyped name raises immediately with a did-you-mean hint,
        courtesy of the audited config schema. ``enabled`` is implied —
        calling this method at all switches the surface on, and the
        build also attaches the telemetry pipeline (the registry's
        richest source) exactly as :meth:`with_telemetry` would.

        The built cluster's ``obs`` handle carries the registry, the
        ``/metrics`` server (when ``http=True``) and
        :meth:`~repro.obs.surface.Observability.job_report`.
        """
        obs = self._cfg.obs
        obs.enabled = True
        for name, value in knobs.items():
            setattr(obs, name, value)
        return self

    def with_elastic_scaler(self, **knobs) -> "ClusterBuilder":
        """Enable monitoring-driven elastic autoscaling (see server.reconfig).

        Keywords are ``cfg.scaler`` knobs (``high_water=...``,
        ``low_water=...``, ``initial_active=...``, ``up_after=...``,
        ``cooldown=...``, ...); a mistyped name raises immediately with
        a did-you-mean hint, courtesy of the audited config schema.
        ``enabled`` is implied — calling this method at all installs an
        :class:`~repro.server.reconfig.ElasticScaler` driven by
        whichever monitoring view the dispatcher consults (the
        federated root when federation is on, the flat front-end poller
        otherwise). The built cluster's ``scaler`` handle carries the
        scale-event log and load samples.
        """
        sc = self._cfg.scaler
        sc.enabled = True
        for name, value in knobs.items():
            setattr(sc, name, value)
        return self

    def workload(self, name: str, **kwargs) -> "ClusterBuilder":
        """Queue a registered workload to start as part of ``build()``.

        ``name`` is a :mod:`repro.workloads` registry entry
        (``"rubis"``, ``"openloop"``, ``"replay"``, ``"background"``,
        ``"incast"``, ...); keywords are that workload's parameters —
        both are validated *here*, at chain time, with did-you-mean
        hints, so a typo fails where it was written rather than deep in
        ``build()``. Node-valued parameters accept back-end indices.
        The instantiated workloads land in the built cluster's
        ``workloads`` list, in chain order.
        """
        from repro.workloads import _audit_workload_kwargs, get_workload_spec

        spec = get_workload_spec(name)
        _audit_workload_kwargs(spec, kwargs)
        self._workloads.append((spec, kwargs))
        return self

    def with_federation(self, *, num_shards: int = 0,
                        leaf_interval: int = 0,
                        root_interval: int = 0,
                        levels: int = 2,
                        num_regions: int = 0,
                        region_interval: int = 0,
                        **extra) -> "ClusterBuilder":
        """Deploy the sharded monitoring fabric (two or three tiers).

        Equivalent to setting ``cfg.federation.enabled`` (plus the given
        knobs) before building: leaves poll their shard with the chosen
        scheme, the root merges leaf snapshots, the dispatcher routes
        through the shard-then-node balancer, and the flat front-end
        poller stays idle. ``levels=3`` inserts region aggregators
        between leaves and root (fan-outs near N^(1/3) — the large-N
        regime; see docs/FEDERATION.md).
        """
        _audit_kwargs("with_federation", extra,
                      ["num_shards", "leaf_interval", "root_interval",
                       "levels", "num_regions", "region_interval"])
        fed = self._cfg.federation
        fed.enabled = True
        fed.num_shards = num_shards
        fed.leaf_interval = leaf_interval
        fed.root_interval = root_interval
        fed.levels = levels
        fed.num_regions = num_regions
        fed.region_interval = region_interval
        return self

    # -- assembly -------------------------------------------------------
    def build(self):
        """Wire everything up and return the :class:`RubisCluster` handle."""
        if self._built:
            raise RuntimeError("ClusterBuilder.build() may only be called once")
        self._built = True
        # Deferred: common.py's legacy shim imports this module.
        from repro.experiments.common import RubisCluster
        from repro.telemetry.pipeline import TelemetryPipeline

        cfg = self._cfg
        if cfg.obs.enabled:
            # The exposition's richest source; attaching it is free in
            # simulated time, so fingerprints are unchanged.
            self._telemetry = True
        scheme_name = self._scheme_name
        sim = build_cluster(cfg)

        servers = [
            BackendServer(be, sim.rng.stream(f"db:{be.name}"),
                          workers=self._workers)
            for be in sim.backends
        ]
        for server in servers:
            server.start()

        federated = cfg.federation.enabled
        scheme = create_scheme(scheme_name, sim, interval=self._interval,
                               **self._scheme_kwargs)
        monitor = FrontendMonitor(scheme)
        if not federated:
            # With federation on, the flat front-end poller stays idle
            # (its O(N) fan-out is exactly what the two-level fabric
            # replaces); the deployed scheme remains available for
            # direct queries.
            monitor.start()

        telemetry = None
        if self._telemetry or self._alert_shedding:
            telemetry = TelemetryPipeline(rules=self._telemetry_rules)
            telemetry.attach(monitor)

        if telemetry is not None and sim.congestion is not None:
            telemetry.attach_congestion(sim.congestion)

        if telemetry is not None and sim.tenancy is not None:
            telemetry.attach_tenancy(sim.tenancy)

        faults = None
        if self._fault_schedule is not None:
            faults = FaultPlane(sim, self._fault_schedule).install()
            if telemetry is not None:
                telemetry.attach_faults(faults)

        heartbeat = None
        if self._heartbeat:
            heartbeat = HeartbeatMonitor(
                sim, interval=self._heartbeat_interval,
                timeout=self._heartbeat_timeout,
                hung_after=self._heartbeat_hung_after,
            )
            if telemetry is not None:
                telemetry.attach_heartbeat(heartbeat)

        federation = None
        if federated:
            federation = deploy_federation(sim, scheme_name=scheme_name,
                                           heartbeat=heartbeat)
            if telemetry is not None:
                telemetry.attach_federation(federation)
            if sim.tenancy is not None:
                # Quarantining a tenant re-splits shard assignments so
                # routing routes around the noisy neighborhood.
                sim.tenancy.federation = federation

        scaler = None
        if cfg.scaler.enabled:
            from repro.server.reconfig import ElasticScaler  # deferred: opt-in
            sc = cfg.scaler
            scaler = ElasticScaler(
                sim,
                view=(federation.root if federation is not None else monitor),
                interval=(sc.interval or cfg.monitor.interval),
                high_water=sc.high_water,
                low_water=sc.low_water,
                initial_active=sc.initial_active,
                min_active=sc.min_active,
                max_active=sc.max_active,
                up_after=sc.up_after,
                down_after=sc.down_after,
                cooldown=sc.cooldown,
                federation=federation,
                health=heartbeat,
            )
            if telemetry is not None:
                telemetry.attach_scaler(scaler)

        if federation is not None:
            balancer = TwoLevelBalancer(
                federation.topology,
                use_irq_pressure=(scheme_name == "e-rdma-sync"),
                rng=sim.rng.stream("loadbalancer"),
            )
        else:
            balancer = LeastLoadedBalancer(
                num_backends=len(servers),
                use_irq_pressure=(scheme_name == "e-rdma-sync"),
                rng=sim.rng.stream("loadbalancer"),
            )
        balancer.tracer = sim.spans
        balancer.trace_node = sim.frontend.name
        admission = None
        if self._admission:
            admission = AdmissionController(
                num_backends=len(servers),
                max_score=self._admission_max_score,
                balancer=balancer,
                alert_engine=(telemetry.engine
                              if self._alert_shedding and telemetry else None),
            )
            admission.tracer = sim.spans
            admission.trace_node = sim.frontend.name
        dispatcher = Dispatcher(
            sim.frontend, servers, balancer,
            monitor=(federation.root if federation is not None else monitor),
            admission=admission,
            health=(scaler if scaler is not None else heartbeat),
            telemetry=(telemetry if self._alert_shedding else None),
        )
        dispatcher.start()
        workloads = []
        if self._workloads:
            from repro.workloads import create_workload

            for spec, kwargs in self._workloads:
                obj = create_workload(
                    spec.name, sim,
                    dispatcher=(dispatcher if spec.needs_dispatcher else None),
                    **kwargs)
                if spec.needs_start:
                    obj.start()
                workloads.append(obj)
        cluster = RubisCluster(
            sim=sim,
            servers=servers,
            scheme=scheme,
            monitor=monitor,
            balancer=balancer,
            dispatcher=dispatcher,
            admission=admission,
            telemetry=telemetry,
            faults=faults,
            heartbeat=heartbeat,
            federation=federation,
            scaler=scaler,
            workloads=workloads,
        )
        if cfg.obs.enabled:
            from repro.obs import Observability  # deferred: heavy-ish, opt-in
            cluster.obs = Observability.deploy(cluster, cfg.obs)
        return cluster
