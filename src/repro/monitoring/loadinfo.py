"""Load-information records and their derivation from kernel snapshots.

A :class:`LoadInfo` is what a monitoring scheme delivers to the front
end. ``collected_at`` is the *data* timestamp — when the underlying
kernel counters were observed — which is what staleness analysis (the
paper's Fig 5) compares against the ground truth at receive time.

:class:`LoadCalculator` turns raw kernel snapshots into LoadInfo,
deriving CPU utilisation from jiffy deltas between consecutive
snapshots. The asynchronous schemes run a calculator on the back end;
RDMA-Sync runs one on the *front end* over raw counters fetched by DMA —
no back-end CPU involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(slots=True)
class LoadInfo:
    """One load report for one back-end node."""

    backend: str
    #: when the underlying counters were observed (backend clock)
    collected_at: int
    #: when the front end received the report (0 until delivered)
    received_at: int = 0
    nr_threads: int = 0
    nr_running: int = 0
    #: tick-resolution run-queue EMA — the fine-grained load signal
    runq_load: float = 0.0
    #: CPU utilisation in [0, 1] derived from jiffy deltas
    cpu_util: float = 0.0
    busy_cpus: int = 0
    #: 1-minute loadavg (coarse signal, for comparison)
    loadavg1: float = 0.0
    #: memory utilisation in [0, 1] (resident sets / physical memory)
    mem_util: float = 0.0
    #: network receive+transmit rate since the previous report, MB/s
    net_rate_mbps: float = 0.0
    #: application-level gauges (connections, memory) published by servers
    gauges: Dict[str, float] = field(default_factory=dict)
    #: pending interrupts per CPU (only e-RDMA-Sync fills this)
    irq_pending: Optional[list] = None
    #: cumulative interrupts handled per CPU (extended info)
    irq_handled: Optional[list] = None

    @property
    def staleness(self) -> int:
        """Age of the data at delivery time, ns."""
        return max(0, self.received_at - self.collected_at)

    @property
    def irq_pressure(self) -> float:
        """Total pending interrupts across CPUs (0 when not reported)."""
        if not self.irq_pending:
            return 0.0
        return float(sum(self.irq_pending))


class LoadCalculator:
    """Derives :class:`LoadInfo` from consecutive kernel snapshots."""

    def __init__(self, backend_name: str) -> None:
        self.backend_name = backend_name
        self._prev_jiffies: Optional[list] = None
        self._prev_time: Optional[int] = None
        self._prev_net_bytes: Optional[int] = None
        self._prev_net_time: Optional[int] = None

    def compute(self, snapshot: dict, irq_stat: Optional[dict] = None) -> LoadInfo:
        """Produce a LoadInfo from a kernel snapshot (and optional irq_stat)."""
        jiffies = snapshot["jiffies"]
        now = snapshot["time"]
        util = self._utilisation(jiffies, now)
        mem_total = snapshot.get("mem_total_bytes", 0)
        info = LoadInfo(
            backend=self.backend_name,
            collected_at=now,
            nr_threads=snapshot["nr_threads"],
            nr_running=snapshot["nr_running"],
            runq_load=snapshot["runq_ema"],
            cpu_util=util,
            busy_cpus=snapshot["busy_cpus"],
            loadavg1=snapshot["loadavg"][0],
            mem_util=(snapshot.get("mem_used_bytes", 0) / mem_total if mem_total else 0.0),
            net_rate_mbps=self._net_rate(snapshot, now),
            # snapshot() already hands over a fresh gauges dict per read,
            # so adopting it avoids a second copy on every poll.
            gauges=snapshot.get("gauges") or {},
        )
        if irq_stat is not None:
            info.irq_pending = [c["hard_pending"] + c["soft_pending"] for c in irq_stat["cpus"]]
            info.irq_handled = [sum(c["handled"].values()) for c in irq_stat["cpus"]]
        return info

    def _net_rate(self, snapshot: dict, now: int) -> float:
        """RX+TX MB/s since the previous snapshot (0 on the first)."""
        total = snapshot.get("net_rx_bytes", 0) + snapshot.get("net_tx_bytes", 0)
        prev_bytes, prev_time = self._prev_net_bytes, self._prev_net_time
        self._prev_net_bytes, self._prev_net_time = total, now
        if prev_bytes is None or prev_time is None or now <= prev_time:
            return 0.0
        return (total - prev_bytes) / ((now - prev_time) / 1e9) / 1e6

    def _utilisation(self, jiffies: list, now: int) -> float:
        # Only the per-CPU busy totals matter for the delta, so keep
        # those (a list of ints) rather than copying every jiffies dict.
        busy_now = [j["user"] + j["sys"] + j["irq"] for j in jiffies]
        prev_busy, prev_time = self._prev_jiffies, self._prev_time
        self._prev_jiffies = busy_now
        self._prev_time = now
        if prev_busy is None or prev_time is None or now <= prev_time:
            # No baseline yet: report instantaneous busy fraction.
            busy = sum(1 for j in jiffies if j["user"] + j["sys"] > 0)
            return busy / max(1, len(jiffies))
        elapsed = now - prev_time
        delta = sum(busy_now) - sum(prev_busy)
        return min(1.0, max(0.0, delta / (len(jiffies) * elapsed)))
