"""Socket-Async (the paper's §3.1.1, Fig 1a).

Two threads on every back-end:

* a **load-calculating thread** that wakes every interval ``T``, reads
  /proc (trap + O(tasks) scan), composes a LoadInfo and stores it in a
  known user-space buffer, and
* a **load-reporting thread** that answers front-end requests from that
  buffer over a socket.

The reported information is therefore up to ``T`` old *plus* whatever
scheduling delay both threads suffer on a loaded node — and the two
threads themselves perturb the applications (the paper's Fig 4 shows
Socket-Async as the worst offender).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.monitoring.base import MonitoringScheme
from repro.monitoring.loadinfo import LoadCalculator, LoadInfo
from repro.transport.sockets import SocketEndpoint, socket_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import TaskContext


class SocketAsyncScheme(MonitoringScheme):
    """Asynchronous socket-based monitoring."""

    name = "socket-async"
    one_sided = False
    backend_threads = 2

    def __init__(self, sim, *, interval: Optional[int] = None, with_irq_detail: bool = False) -> None:
        super().__init__(sim, interval=interval)
        self.with_irq_detail = with_irq_detail
        #: front-end side endpoints, one per back-end
        self._fe_ends: List[SocketEndpoint] = []
        #: latest LoadInfo per back-end (the "known memory location")
        self._buffers: List[Optional[LoadInfo]] = []

    def _deploy(self) -> None:
        mon = self.sim.cfg.monitor
        for i, be in enumerate(self.backends):
            fe_end, be_end = socket_pair(self.frontend, be, label=f"sa:{be.name}")
            self._fe_ends.append(fe_end)
            self._buffers.append(None)
            be.spawn(f"mon-calc:{be.name}", self._calc_body(i, be), nice=0)
            be.spawn(f"mon-report:{be.name}", self._report_body(i, be_end, mon), nice=0)

    # ------------------------------------------------------------------
    def _calc_body(self, index: int, be):
        calculator = LoadCalculator(be.name)
        mon = self.sim.cfg.monitor

        def body(k):
            while not self._stopped:
                stats = yield from be.procfs.read_stat(k)
                irq = None
                if self.with_irq_detail:
                    irq = yield from be.kmod.read_irq_stat(k)
                yield k.compute(mon.compose_cost)
                self._buffers[index] = calculator.compute(stats, irq)
                yield k.sleep(self.interval)

        return body

    def _report_body(self, index: int, be_end: SocketEndpoint, mon):
        def body(k):
            while not self._stopped:
                yield from be_end.recv(k)
                # Read the known memory location (no /proc access here).
                yield k.compute(1_000)
                info = self._buffers[index]
                if info is None:
                    info = LoadInfo(backend=be_end.node.name, collected_at=0)
                nbytes = mon.extended_bytes if self.with_irq_detail else mon.loadinfo_bytes
                yield from be_end.send(k, info, nbytes)

        return body

    # ------------------------------------------------------------------
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        mon = self.sim.cfg.monitor
        end = self._fe_ends[backend_index]
        issued = k.now
        span = self._probe_span(backend_index)
        info, attempts = yield from self._socket_probe(
            k, end, mon.request_bytes, ctx=span)
        if info is None:
            return self._record_failure(backend_index, issued, span=span,
                                        attempts=attempts)
        return self._record(backend_index, issued, info, span=span,
                            attempts=attempts)

    def query_all(self, k: "TaskContext") -> Generator:
        """Send every request first, then collect replies (select-style)."""
        if self.policy.enabled:
            out = yield from MonitoringScheme.query_all(self, k)
            return out
        mon = self.sim.cfg.monitor
        issued = k.now
        spans = [self._probe_span(i) for i in range(len(self.backends))]
        for i, end in enumerate(self._fe_ends):
            yield from end.send(k, "load-req", mon.request_bytes, ctx=spans[i])
        out: Dict[int, LoadInfo] = {}
        for i, end in enumerate(self._fe_ends):
            info = yield from end.recv(k, ctx=spans[i])
            out[i] = self._record(i, issued, info, span=spans[i])
        return out
