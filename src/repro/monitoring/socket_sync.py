"""Socket-Sync (the paper's §3.1.2, Fig 1b).

One thread per back-end: on every front-end request it reads /proc
*then*, composes a fresh LoadInfo and replies. Fresher than Socket-Async
(no interval-old buffer), but each query now pays the /proc scan on the
loaded node, and on a busy server the monitoring thread "can compete for
CPU with other threads in the system … result[ing] in huge delays"
(§4) — the max-response-time tails of Table 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.monitoring.base import MonitoringScheme
from repro.monitoring.loadinfo import LoadCalculator, LoadInfo
from repro.transport.sockets import SocketEndpoint, socket_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import TaskContext


class SocketSyncScheme(MonitoringScheme):
    """Synchronous socket-based monitoring."""

    name = "socket-sync"
    one_sided = False
    backend_threads = 1

    def __init__(self, sim, *, interval: Optional[int] = None, with_irq_detail: bool = False) -> None:
        super().__init__(sim, interval=interval)
        self.with_irq_detail = with_irq_detail
        self._fe_ends: List[SocketEndpoint] = []

    def _deploy(self) -> None:
        for be in self.backends:
            fe_end, be_end = socket_pair(self.frontend, be, label=f"ss:{be.name}")
            self._fe_ends.append(fe_end)
            be.spawn(f"mon-sync:{be.name}", self._server_body(be, be_end), nice=0)

    def _server_body(self, be, be_end: SocketEndpoint):
        calculator = LoadCalculator(be.name)
        mon = self.sim.cfg.monitor

        def body(k):
            while not self._stopped:
                yield from be_end.recv(k)
                stats = yield from be.procfs.read_stat(k)
                irq = None
                if self.with_irq_detail:
                    irq = yield from be.kmod.read_irq_stat(k)
                yield k.compute(mon.compose_cost)
                info = calculator.compute(stats, irq)
                nbytes = mon.extended_bytes if self.with_irq_detail else mon.loadinfo_bytes
                yield from be_end.send(k, info, nbytes)

        return body

    # ------------------------------------------------------------------
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        mon = self.sim.cfg.monitor
        end = self._fe_ends[backend_index]
        issued = k.now
        span = self._probe_span(backend_index)
        info, attempts = yield from self._socket_probe(
            k, end, mon.request_bytes, ctx=span)
        if info is None:
            return self._record_failure(backend_index, issued, span=span,
                                        attempts=attempts)
        return self._record(backend_index, issued, info, span=span,
                            attempts=attempts)

    def query_all(self, k: "TaskContext") -> Generator:
        if self.policy.enabled:
            out = yield from MonitoringScheme.query_all(self, k)
            return out
        mon = self.sim.cfg.monitor
        issued = k.now
        spans = [self._probe_span(i) for i in range(len(self.backends))]
        for i, end in enumerate(self._fe_ends):
            yield from end.send(k, "load-req", mon.request_bytes, ctx=spans[i])
        out: Dict[int, LoadInfo] = {}
        for i, end in enumerate(self._fe_ends):
            info = yield from end.recv(k, ctx=spans[i])
            out[i] = self._record(i, issued, info, span=spans[i])
        return out
