"""e-RDMA-Sync (the paper's §5.2.1).

RDMA-Sync *plus* detailed system information: every query also fetches
the ``irq_stat`` kernel structure, and the resulting LoadInfo carries
per-CPU pending-interrupt counts. The extended load balancer
(:class:`repro.server.loadbalancer.WeightedLoadBalancer` with
``use_irq_pressure=True``) folds interrupt pressure into the placement
score — the paper shows this consistently beats plain RDMA-Sync on
RUBiS (Table 1) and on the Zipf mix (Fig 7, up to 35 % over
Socket-Async).
"""

from __future__ import annotations

from repro.monitoring.rdma_sync import RdmaSyncScheme


class ExtendedRdmaSyncScheme(RdmaSyncScheme):
    """RDMA-Sync with pending-interrupt detail on every query."""

    name = "e-rdma-sync"
    read_irq_stat = True

    def __init__(self, sim, *, interval=None, with_irq_detail: bool = True) -> None:
        # irq detail is this scheme's whole point: force it on even if a
        # caller passes with_irq_detail=False.
        super().__init__(sim, interval=interval, with_irq_detail=True)
