"""RDMA heartbeat: liveness detection as a monitoring by-product.

An extension of the paper's "enhanced robustness to load" argument (§4):
because an RDMA read of kernel memory needs neither the remote CPU nor
any remote software, it doubles as a *diagnostic* probe —

* a healthy node returns a snapshot whose timer-tick counter advances;
* a **hung** node (kernel livelock, scheduler stuck) still answers the
  DMA — with a frozen tick counter. A socket-based health check cannot
  tell this apart from overload; the RDMA probe positively identifies it;
* a **crashed** node answers nothing: the probe times out.

:class:`HeartbeatMonitor` probes every back-end's ``kern.load`` region
each interval and classifies nodes ALIVE / HUNG / DEAD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.sim.events import AnyOf
from repro.transport.verbs import (
    AccessFlags,
    MemoryRegionHandle,
    ProtectionDomain,
    QueuePair,
    connect_monitor_qp,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim


class NodeHealth(enum.Enum):
    ALIVE = "alive"
    HUNG = "hung"
    DEAD = "dead"


@dataclass
class HealthRecord:
    """Health-state transition."""

    time: int
    backend: int
    state: NodeHealth


class HeartbeatMonitor:
    """One-sided liveness probing of every back-end."""

    def __init__(
        self,
        sim: "ClusterSim",
        interval: int = 50_000_000,  # 50 ms
        timeout: int = 10_000_000,  # 10 ms — far above a healthy RTT
        hung_after: int = 2,
        observer: Optional[Callable[[HealthRecord], None]] = None,
    ) -> None:
        """``hung_after``: consecutive frozen-tick probes before HUNG.
        ``observer``: called with each :class:`HealthRecord` transition
        (the telemetry alert engine hooks in here)."""
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        if hung_after < 1:
            raise ValueError("hung_after must be >= 1")
        self.sim = sim
        self.interval = interval
        self.timeout = timeout
        self.hung_after = hung_after
        self.observer = observer
        self.state: Dict[int, NodeHealth] = {
            i: NodeHealth.ALIVE for i in range(len(sim.backends))
        }
        self.transitions: List[HealthRecord] = []
        self.probes = 0
        self._qps: List[QueuePair] = []
        self._mrs: List[MemoryRegionHandle] = []
        self._last_ticks: Dict[int, Optional[int]] = {}
        self._frozen_count: Dict[int, int] = {}
        self._stopped = False
        for be in sim.backends:
            pd = ProtectionDomain.for_node(be)
            self._mrs.append(pd.register(be.memory.get("kern.load"),
                                         AccessFlags.REMOTE_READ))
            qp, _ = connect_monitor_qp(sim.frontend, be)
            self._qps.append(qp)
            self._last_ticks[be.index - 1] = None
            self._frozen_count[be.index - 1] = 0
        sim.frontend.spawn("heartbeat", self._body)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _set_state(self, backend: int, state: NodeHealth, now: int) -> None:
        if self.state[backend] is state:
            return
        self.state[backend] = state
        record = HealthRecord(now, backend, state)
        self.transitions.append(record)
        if self.observer is not None:
            self.observer(record)

    def _body(self, k):
        env = self.sim.env
        while not self._stopped:
            for i, (qp, mr) in enumerate(zip(self._qps, self._mrs)):
                self.probes += 1
                wc_event = qp._post_read(mr.rkey, mr.nbytes)
                yield k.compute(self.sim.cfg.net.doorbell_cost)
                deadline = env.timeout(self.timeout)
                fired = yield k.wait(AnyOf(env, [wc_event, deadline]))
                if wc_event not in fired:
                    # No DMA response: the node is off the fabric.
                    self._set_state(i, NodeHealth.DEAD, k.now)
                    continue
                wc = wc_event.value
                if not wc.ok:
                    # NAK'd probe (injected verb fault): inconclusive —
                    # the HCA answered, so the node is on the fabric, but
                    # there is no snapshot to judge liveness by.
                    continue
                snapshot = wc.value
                ticks = self._extract_ticks(snapshot)
                last = self._last_ticks[i]
                self._last_ticks[i] = ticks
                if last is not None and ticks == last:
                    self._frozen_count[i] += 1
                    if self._frozen_count[i] >= self.hung_after:
                        self._set_state(i, NodeHealth.HUNG, k.now)
                else:
                    self._frozen_count[i] = 0
                    self._set_state(i, NodeHealth.ALIVE, k.now)
            yield k.sleep(self.interval)

    @staticmethod
    def _extract_ticks(snapshot: dict) -> int:
        """The heartbeat counter: the kernel's timer-tick count.

        A hung kernel's timer stops; a healthy one ticks at 100 Hz, so
        at any probing interval ≥ one tick the counter always advances.
        """
        return snapshot["ticks"]

    # ------------------------------------------------------------------
    def healthy_backends(self) -> List[int]:
        return [i for i, s in self.state.items() if s is NodeHealth.ALIVE]

    def quarantined(self) -> List[int]:
        """Back-ends currently held out of dispatch (HUNG or DEAD)."""
        return [i for i, s in self.state.items() if s is not NodeHealth.ALIVE]
