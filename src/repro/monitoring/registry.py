"""Name → scheme factory."""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Optional, Type

from repro.monitoring.base import MonitoringScheme
from repro.monitoring.e_rdma_sync import ExtendedRdmaSyncScheme
from repro.monitoring.rdma_async import RdmaAsyncScheme
from repro.monitoring.rdma_sync import RdmaSyncScheme
from repro.monitoring.rdma_write_push import RdmaWritePushScheme
from repro.monitoring.socket_async import SocketAsyncScheme
from repro.monitoring.socket_sync import SocketSyncScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim

_SCHEMES: dict[str, Type[MonitoringScheme]] = {
    cls.name: cls
    for cls in (
        SocketAsyncScheme,
        SocketSyncScheme,
        RdmaAsyncScheme,
        RdmaSyncScheme,
        ExtendedRdmaSyncScheme,
        RdmaWritePushScheme,  # extension (beyond the paper)
    )
}

#: the paper's five schemes, in table order
SCHEME_NAMES = ["socket-async", "socket-sync", "rdma-async", "rdma-sync", "e-rdma-sync"]

#: the four micro-benchmark schemes (Figs 3–6, 8)
CORE_SCHEME_NAMES = SCHEME_NAMES[:4]

#: every registered scheme, including extensions
ALL_SCHEME_NAMES = [*SCHEME_NAMES, "rdma-write-push"]


def scheme_class(name: str) -> Type[MonitoringScheme]:
    """The registered class for a scheme name (no instantiation).

    Lets deployers inspect class traits (``one_sided``,
    ``backend_threads``) before building — the federation uses this to
    decide how widely a leaf's scheme can safely be deployed.
    """
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None


def scheme_options(name: str) -> list:
    """The keyword options a scheme's constructor accepts (sorted)."""
    cls = scheme_class(name)
    params = inspect.signature(cls.__init__).parameters
    return sorted(p for p in params if p not in ("self", "sim"))


def create_scheme(
    name: str,
    sim: "ClusterSim",
    *,
    interval: Optional[int] = None,
    deploy: bool = True,
    **kwargs,
) -> MonitoringScheme:
    """Instantiate (and by default deploy) a scheme by its paper name.

    All scheme constructors share the normalized keyword-only signature
    ``cls(sim, *, interval=None, with_irq_detail=False)``; extra keyword
    arguments are forwarded verbatim. Unknown keywords are rejected here
    with an error naming the scheme and listing what it does accept.
    """
    try:
        cls = _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from None
    params = inspect.signature(cls.__init__).parameters
    unknown = sorted(k for k in kwargs if k not in params)
    if unknown:
        valid = sorted(p for p in params if p not in ("self", "sim"))
        raise TypeError(
            f"scheme {name!r} ({cls.__name__}) got unknown keyword "
            f"argument(s) {', '.join(map(repr, unknown))}; "
            f"it accepts: {', '.join(valid)}"
        )
    scheme = cls(sim, interval=interval, **kwargs)
    if deploy:
        scheme.deploy()
    return scheme
