"""RDMA-Sync (the paper's §3.2.2, Fig 2b).

No back-end monitoring process at all. The back-end's *kernel data
structures* (jiffies counters, run-queue statistics — the ``kern.load``
live region) are registered read-only; the front end RDMA-reads them on
every query and derives the load itself. Properties the paper claims,
all emergent here:

* **accuracy** — the DMA engine samples kernel memory at the read
  instant, so the data is as fresh as the wire (Fig 5);
* **zero perturbation** — no back-end thread exists to steal CPU from
  applications (Fig 4);
* **load resilience** — latency is NIC + fabric only (Fig 3);
* **kernel detail** — structures with no /proc interface (``irq_stat``)
  are equally readable (Fig 6); see
  :class:`~repro.monitoring.e_rdma_sync.ExtendedRdmaSyncScheme`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.monitoring.base import MonitoringScheme, make_read_post
from repro.monitoring.loadinfo import LoadCalculator, LoadInfo
from repro.transport.verbs import (
    AccessFlags,
    MemoryRegionHandle,
    ProtectionDomain,
    QueuePair,
    WqeBatch,
    connect_monitor_qp,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import TaskContext


class RdmaSyncScheme(MonitoringScheme):
    """Synchronous (kernel-memory) RDMA monitoring."""

    name = "rdma-sync"
    one_sided = True
    backend_threads = 0
    #: whether queries additionally fetch irq_stat
    read_irq_stat = False

    def __init__(self, sim, *, interval: Optional[int] = None, with_irq_detail: bool = False) -> None:
        super().__init__(sim, interval=interval)
        if with_irq_detail:
            self.read_irq_stat = True
        self._qps: List[Optional[QueuePair]] = []
        self._load_mrs: List[Optional[MemoryRegionHandle]] = []
        self._irq_mrs: List[Optional[MemoryRegionHandle]] = []
        #: front-end side calculators (jiffy differencing happens here)
        self._calcs: List[Optional[LoadCalculator]] = []
        #: prebuilt untraced post closures (steady-state probe cache)
        self._load_posts: List = []
        self._irq_posts: List = []

    def _deploy(self) -> None:
        # Wiring is lazy, per back-end, on first query. Deploying a QP,
        # registering the kernel MRs and building the post closures is
        # pure bookkeeping — no events, no RNG draws, no simulated time —
        # so deferring it never perturbs a run. It does turn deploy cost
        # from O(universe) into O(members actually polled): a federation
        # leaf is handed the full back-end universe (so quarantine
        # rebalancing can re-shard without re-deploying) but only ever
        # touches its own shard, which at N back-ends and ~sqrt(N) leaves
        # is the difference between O(N^1.5) and O(N) QPs cluster-wide.
        n = len(self.backends)
        self._qps = [None] * n
        self._load_mrs = [None] * n
        self._irq_mrs = [None] * n
        self._calcs = [None] * n
        self._load_posts = [None] * n
        self._irq_posts = [None] * n

    def _wire(self, i: int) -> None:
        """Materialize QP/MR/calculator/post wiring for back-end ``i``."""
        be = self.backends[i]
        pd = ProtectionDomain.for_node(be)
        # Kernel structures are registered READ-ONLY (§6 security).
        self._load_mrs[i] = lmr = pd.register(
            be.memory.get("kern.load"), AccessFlags.REMOTE_READ)
        self._irq_mrs[i] = imr = pd.register(
            be.memory.get("kern.irq_stat"), AccessFlags.REMOTE_READ)
        qp_fe, _ = connect_monitor_qp(self.frontend, be)
        self._qps[i] = qp_fe
        self._calcs[i] = LoadCalculator(be.name)
        self._load_posts[i] = make_read_post(qp_fe, lmr)
        self._irq_posts[i] = make_read_post(qp_fe, imr)

    # ------------------------------------------------------------------
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        mon = self.sim.cfg.monitor
        issued = k.now
        if self._qps[backend_index] is None:
            self._wire(backend_index)
        span = self._probe_span(backend_index)
        if span is None:
            post = self._load_posts[backend_index]
        else:
            qp = self._qps[backend_index]
            load_mr = self._load_mrs[backend_index]
            post = lambda: qp._post_read(load_mr.rkey, load_mr.nbytes, ctx=span)
        wc, attempts = yield from self._verb_retry(k, post)
        if wc is None or not wc.ok:
            return self._record_failure(backend_index, issued, span=span,
                                        attempts=attempts)
        irq = None
        if self.read_irq_stat:
            if span is None:
                irq_post = self._irq_posts[backend_index]
            else:
                qp = self._qps[backend_index]
                irq_mr = self._irq_mrs[backend_index]
                irq_post = lambda: qp._post_read(irq_mr.rkey, irq_mr.nbytes, ctx=span)
            wc_irq, irq_attempts = yield from self._verb_retry(k, irq_post)
            attempts += irq_attempts - 1
            if wc_irq is None or not wc_irq.ok:
                return self._record_failure(backend_index, issued, span=span,
                                            attempts=attempts)
            irq = wc_irq.value
        # Derive load on the *front end* from the raw counters.
        yield k.compute(mon.compose_cost)
        info = self._calcs[backend_index].compute(wc.value, irq)
        return self._record(backend_index, issued, info, span=span,
                            attempts=attempts)

    def query_many(self, k: "TaskContext", indices) -> Generator:
        """Batched shard fan-out: post every WQE, ring ONE doorbell.

        The federation leaf path. Unlike :meth:`query_all` (which pays
        a doorbell per back-end, the historical front-end behaviour,
        kept byte-identical), a leaf posts the whole shard's read WQEs
        to its send queues and rings the doorbell once — the HCA then
        fetches and services them without further CPU help, so a shard
        round costs one doorbell + overlapped wire time.
        """
        indices = list(indices)
        if self.policy.enabled or not indices:
            out = yield from MonitoringScheme.query_many(self, k, indices)
            return out
        net = self.sim.cfg.net
        mon = self.sim.cfg.monitor
        issued = k.now
        qps = self._qps
        for i in indices:
            if qps[i] is None:
                self._wire(i)
        tracer = self.frontend.span_tracer
        if tracer is None or not tracer.enabled:
            spans = dict.fromkeys(indices)
        else:
            spans = {i: self._probe_span(i) for i in indices}
        batch = WqeBatch(net=net)
        load_events = [
            batch.post_read(self._qps[i], self._load_mrs[i].rkey,
                            self._load_mrs[i].nbytes, ctx=spans[i])
            for i in indices
        ]
        irq_events = {}
        if self.read_irq_stat:
            irq_events = {
                i: batch.post_read(self._qps[i], self._irq_mrs[i].rkey,
                                   self._irq_mrs[i].nbytes, ctx=spans[i])
                for i in indices
            }
        yield from batch.ring(k)
        out: Dict[int, LoadInfo] = {}
        for i, ev in zip(indices, load_events):
            wc = yield k.wait(ev)
            irq = None
            if self.read_irq_stat:
                wc_irq = yield k.wait(irq_events[i])
                if not wc_irq.ok:
                    out[i] = self._record_failure(i, issued, span=spans[i])
                    continue
                irq = wc_irq.value
            if not wc.ok:
                out[i] = self._record_failure(i, issued, span=spans[i])
                continue
            yield k.compute(mon.compose_cost)
            out[i] = self._record(i, issued, self._calcs[i].compute(wc.value, irq),
                                  span=spans[i])
        return out

    def query_all(self, k: "TaskContext") -> Generator:
        if self.policy.enabled:
            # Bounded probes: fall back to sequential per-backend queries
            # so each one can time out and retry independently.
            out = yield from MonitoringScheme.query_all(self, k)
            return out
        net = self.sim.cfg.net
        mon = self.sim.cfg.monitor
        issued = k.now
        qps = self._qps
        for i in range(len(qps)):
            if qps[i] is None:
                self._wire(i)
        spans = [self._probe_span(i) for i in range(len(self.backends))]
        load_events, irq_events = [], []
        for i, (qp, lmr) in enumerate(zip(self._qps, self._load_mrs)):
            yield k.compute(net.doorbell_cost)
            load_events.append(qp._post_read(lmr.rkey, lmr.nbytes, ctx=spans[i]))
        if self.read_irq_stat:
            for i, (qp, imr) in enumerate(zip(self._qps, self._irq_mrs)):
                yield k.compute(net.doorbell_cost)
                irq_events.append(qp._post_read(imr.rkey, imr.nbytes, ctx=spans[i]))
        out: Dict[int, LoadInfo] = {}
        for i, ev in enumerate(load_events):
            wc = yield k.wait(ev)
            irq = None
            if self.read_irq_stat:
                wc_irq = yield k.wait(irq_events[i])
                if not wc_irq.ok:
                    out[i] = self._record_failure(i, issued, span=spans[i])
                    continue
                irq = wc_irq.value
            if not wc.ok:
                out[i] = self._record_failure(i, issued, span=spans[i])
                continue
            yield k.compute(mon.compose_cost)
            out[i] = self._record(i, issued, self._calcs[i].compute(wc.value, irq),
                                  span=spans[i])
        return out
