"""Front-end polling loop.

Wraps a deployed scheme in the periodic poll the paper's front-end
monitoring process runs: every ``interval`` it performs a batched
``query_all`` and caches the latest LoadInfo per back-end for the load
balancer / admission controller to consult synchronously. Also records
(time, info) history and an optional per-poll observer hook used by the
accuracy experiments to compare reports against instantaneous truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.monitoring.base import MonitoringScheme
from repro.monitoring.loadinfo import LoadInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task


class FrontendMonitor:
    """Periodic poller + cache of the freshest load information."""

    def __init__(
        self,
        scheme: MonitoringScheme,
        interval: Optional[int] = None,
        observer: Optional[Callable[[int, LoadInfo], None]] = None,
        name: str = "frontend-monitor",
        history_limit: Optional[int] = None,
    ) -> None:
        """``history_limit``: retain only the newest N history entries
        (0 = unbounded). Defaults to ``cfg.monitor.history_limit`` so a
        single config knob bounds every monitor in a deployment. Long
        runs should bound history here and keep full-horizon statistics
        in a :class:`~repro.telemetry.pipeline.TelemetryPipeline`."""
        self.scheme = scheme
        self.sim = scheme.sim
        self.interval = interval if interval is not None else scheme.interval
        if self.interval <= 0:
            raise ValueError("poll interval must be positive")
        self.observer = observer
        #: fired once per completed poll round with ``(epoch, infos)`` —
        #: the federation / telemetry shard-rollup hook (chain, don't
        #: replace, like ``observer``)
        self.round_observer: Optional[Callable[[int, Dict[int, LoadInfo]], None]] = None
        #: monotonic poll-round counter (stamps mergeable snapshots)
        self.epoch = 0
        self.name = name
        if history_limit is None:
            history_limit = getattr(self.sim.cfg.monitor, "history_limit", 0)
        if history_limit < 0:
            raise ValueError("history_limit must be >= 0 (0 = unbounded)")
        self.history_limit = history_limit
        #: freshest report per back-end index
        self.latest: Dict[int, LoadInfo] = {}
        #: history [(backend, info)] in arrival order; when bounded, a
        #: plain list trimmed in chunks (slicing stays O(1) amortised and
        #: existing ``history[n:]`` access patterns keep working)
        self.history: List[Tuple[int, LoadInfo]] = []
        #: history entries discarded by the bound (0 when unbounded)
        self.history_dropped = 0
        self.polls = 0
        self._stopped = False
        self._task: Optional["Task"] = None

    # ------------------------------------------------------------------
    def start(self) -> "Task":
        """Spawn the poll loop on the front-end node."""
        if self._task is not None:
            raise RuntimeError("monitor already started")
        self._task = self.scheme.frontend.spawn(self.name, self._body, nice=0)
        return self._task

    def stop(self) -> None:
        self._stopped = True

    def _body(self, k):
        while not self._stopped:
            infos = yield from self.scheme.query_all(k)
            self.polls += 1
            for i, info in infos.items():
                self._record(i, info)
            self.epoch += 1
            if self.round_observer is not None:
                self.round_observer(self.epoch, infos)
            yield k.sleep(self.interval)

    def _record(self, i: int, info: LoadInfo) -> None:
        """Cache + history + observer fan-out for one delivered report."""
        self.latest[i] = info
        self.history.append((i, info))
        limit = self.history_limit
        if limit and len(self.history) >= 2 * limit:
            # Chunked trim: let the list grow to 2x then slice back to the
            # bound — amortised O(1) per record, unlike per-append del.
            self.history_dropped += len(self.history) - limit
            self.history = self.history[-limit:]
        if self.observer is not None:
            self.observer(i, info)

    # ------------------------------------------------------------------
    def load_of(self, backend_index: int) -> Optional[LoadInfo]:
        """Freshest cached report for one back-end (None before first poll)."""
        return self.latest.get(backend_index)

    def snapshot(self) -> Dict[int, LoadInfo]:
        """Copy of the current cache."""
        return dict(self.latest)
