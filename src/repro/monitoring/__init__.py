"""The paper's contribution: five fine-grained resource-monitoring schemes.

============== =========== ================= ===========================
Scheme         Transport   Back-end threads  Load information source
============== =========== ================= ===========================
Socket-Async   sockets     2 (calc+report)   /proc → user buffer
Socket-Sync    sockets     1 (on demand)     /proc, read per request
RDMA-Async     RDMA read   1 (calc)          /proc → registered buffer
RDMA-Sync      RDMA read   0                 live kernel memory
e-RDMA-Sync    RDMA read   0                 kernel memory + irq_stat
============== =========== ================= ===========================

All schemes expose the same API (:class:`~repro.monitoring.base.MonitoringScheme`):
``deploy()`` once, then ``query_all(k)`` / ``query(k, i)`` from a
front-end task. :class:`~repro.monitoring.frontend.FrontendMonitor` wraps
a scheme in the periodic polling loop used by the load balancer.
"""

from repro.monitoring.base import MonitoringScheme, QueryRecord
from repro.monitoring.loadinfo import LoadCalculator, LoadInfo
from repro.monitoring.socket_async import SocketAsyncScheme
from repro.monitoring.socket_sync import SocketSyncScheme
from repro.monitoring.rdma_async import RdmaAsyncScheme
from repro.monitoring.rdma_sync import RdmaSyncScheme
from repro.monitoring.rdma_write_push import RdmaWritePushScheme
from repro.monitoring.e_rdma_sync import ExtendedRdmaSyncScheme
from repro.monitoring.frontend import FrontendMonitor
from repro.monitoring.heartbeat import HeartbeatMonitor, NodeHealth
from repro.monitoring.registry import SCHEME_NAMES, create_scheme

__all__ = [
    "ExtendedRdmaSyncScheme",
    "FrontendMonitor",
    "HeartbeatMonitor",
    "LoadCalculator",
    "LoadInfo",
    "MonitoringScheme",
    "NodeHealth",
    "QueryRecord",
    "RdmaAsyncScheme",
    "RdmaSyncScheme",
    "RdmaWritePushScheme",
    "SCHEME_NAMES",
    "SocketAsyncScheme",
    "SocketSyncScheme",
    "create_scheme",
]
