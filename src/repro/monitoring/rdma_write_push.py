"""RDMA-Write push — an extension scheme beyond the paper.

The natural dual of RDMA-Async: instead of the front end *pulling* a
registered back-end buffer, each back-end's calc thread *pushes* its
LoadInfo into a registered buffer **on the front end** with a one-sided
RDMA write. Properties:

* query latency is effectively zero — the dispatcher reads local
  memory (plus one staleness hop);
* the back-end still runs a calc thread (perturbation like RDMA-Async)
  and now also pays the doorbell per period;
* the front-end CPU is untouched by the transfers themselves (writes
  land by DMA), though each completion interrupts the *back-end*.

Included for the design-space ablation: it shows that one-sidedness
alone is not the paper's whole story — RDMA-Sync additionally removes
the back-end thread and the staleness, which no push design can.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from repro.monitoring.base import MonitoringScheme
from repro.monitoring.loadinfo import LoadCalculator, LoadInfo
from repro.transport.verbs import (
    AccessFlags,
    MemoryRegionHandle,
    ProtectionDomain,
    QueuePair,
    connect_monitor_qp,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import TaskContext


class RdmaWritePushScheme(MonitoringScheme):
    """Back-ends push load info into front-end memory via RDMA write."""

    name = "rdma-write-push"
    one_sided = True
    backend_threads = 1

    def __init__(self, sim, *, interval: Optional[int] = None, with_irq_detail: bool = False) -> None:
        super().__init__(sim, interval=interval)
        self.with_irq_detail = with_irq_detail
        #: front-end regions, one per back-end (the push targets)
        self._regions: List = []

    def _deploy(self) -> None:
        mon = self.sim.cfg.monitor
        nbytes = mon.extended_bytes if self.with_irq_detail else mon.loadinfo_bytes
        fe_pd = ProtectionDomain.for_node(self.frontend)
        for i, be in enumerate(self.backends):
            region = self.frontend.memory.alloc(f"push-buf:{be.name}", nbytes, value=None)
            handle = fe_pd.register(
                region, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_READ)
            self._regions.append(region)
            _qp_fe, qp_be = connect_monitor_qp(self.frontend, be)
            be.spawn(f"mon-push:{be.name}",
                     self._pusher_body(i, be, qp_be, handle, nbytes), nice=0)

    def _pusher_body(self, index: int, be, qp_be: QueuePair,
                     handle: MemoryRegionHandle, nbytes: int):
        calculator = LoadCalculator(be.name)
        mon = self.sim.cfg.monitor

        def body(k):
            while not self._stopped:
                tracer = be.span_tracer
                span = None
                if tracer is not None and tracer.enabled:
                    # The push direction originates on the back-end: each
                    # cycle (collect → compose → RDMA write) is one trace.
                    span = tracer.start_trace(
                        f"push:{self.name}", node=be.name, component="monitor",
                        attrs={"backend": index, "scheme": self.name})
                stats = yield from be.procfs.read_stat(k)
                irq = None
                if self.with_irq_detail:
                    irq = yield from be.kmod.read_irq_stat(k)
                yield k.compute(mon.compose_cost)
                info = calculator.compute(stats, irq)
                # Under the retry policy a NAK'd/lost push is re-issued
                # with backoff; an exhausted push is simply skipped (the
                # front-end buffer goes stale, which staleness analysis
                # then shows).
                wc, _attempts = yield from self._verb_retry(
                    k, lambda: qp_be._post_write(handle.rkey, info, nbytes,
                                                 ctx=span))
                if wc is None or not wc.ok:
                    self.failures += 1
                if span is not None:
                    tracer.end(span)
                yield k.sleep(self.interval)

        return body

    # ------------------------------------------------------------------
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        """Local memory read — no wire time at decision point."""
        issued = k.now
        span = self._probe_span(backend_index)
        # A cached read plus a bounds check: ~100 ns of CPU.
        yield k.compute(100)
        info = self._regions[backend_index].read()
        if info is None:
            info = LoadInfo(backend=self.backends[backend_index].name, collected_at=0)
        return self._record(backend_index, issued, info, span=span)
