"""Common interface for monitoring schemes.

A scheme is deployed once onto a built cluster; thereafter any front-end
task can ``yield from scheme.query(k, i)`` to obtain the freshest
:class:`~repro.monitoring.loadinfo.LoadInfo` the scheme can provide for
back-end ``i``, or ``yield from scheme.query_all(k)`` for the batched
poll the load balancer uses. Every query is recorded (latency, report)
for the micro-benchmark analyses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.faults.retry import RetryPolicy
from repro.monitoring.loadinfo import LoadInfo
from repro.sim.events import AnyOf
from repro.tracing.span import STATUS_ERROR, STATUS_OK

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext
    from repro.tracing.span import Span


@dataclass(slots=True)
class QueryRecord:
    """One completed monitoring query (front-end view)."""

    backend: int
    issued_at: int
    completed_at: int
    info: LoadInfo
    #: False when the probe exhausted its retry budget (placeholder info)
    ok: bool = True
    #: transport attempts the probe took (1 = first try succeeded)
    attempts: int = 1

    @property
    def latency(self) -> int:
        return self.completed_at - self.issued_at


def make_read_post(qp, mr):
    """Prebuilt, untraced RDMA-read post closure for one (QP, MR) pair.

    The RDMA schemes build one of these per back-end at deploy time and
    reuse it on every unsampled probe, so the steady-state polling loop
    allocates no per-query closure — the per-call lambda survives only
    on the (rare) traced path, which needs the fresh span context.
    """
    rkey = mr.rkey
    nbytes = mr.nbytes
    post_read = qp._post_read

    def post():
        return post_read(rkey, nbytes)

    return post


class MonitoringScheme(abc.ABC):
    """Base class for the five schemes.

    Constructor contract (normalized across every scheme): positional
    ``sim`` only; everything else — ``interval``, ``with_irq_detail`` —
    is keyword-only, so :func:`repro.monitoring.registry.create_scheme`
    can forward arbitrary keyword options and reject unknown ones with
    a per-scheme error.
    """

    #: registry name, e.g. "rdma-sync"
    name: str = "abstract"
    #: True if queries never involve the back-end CPU
    one_sided: bool = False
    #: monitoring threads the scheme runs on each back-end
    backend_threads: int = 0

    def __init__(self, sim: "ClusterSim", *, interval: Optional[int] = None) -> None:
        self.sim = sim
        self.frontend: "Node" = sim.frontend
        self.backends: List["Node"] = list(sim.backends)
        self.interval = interval if interval is not None else sim.cfg.monitor.interval
        if self.interval <= 0:
            raise ValueError("monitoring interval must be positive")
        self.records: List[QueryRecord] = []
        self._stopped = False
        self._deployed = False
        #: probe timeout/retry discipline (disabled by default — the
        #: historical unbounded-wait behaviour, bit-identical)
        self.policy = RetryPolicy.from_config(sim.cfg.monitor)
        #: fault-recovery counters (all stay 0 on a healthy fabric with
        #: the policy disabled)
        self.timeouts = 0
        self.retries = 0
        self.naks = 0
        self.failures = 0
        self.stale_drops = 0
        #: last successful report per back-end, for failure placeholders
        self._last_good: Dict[int, LoadInfo] = {}

    # ------------------------------------------------------------------
    def deploy(self) -> None:
        """Set up connections / registrations / back-end threads."""
        if self._deployed:
            raise RuntimeError(f"{self.name} already deployed")
        self._deployed = True
        self._deploy()

    @abc.abstractmethod
    def _deploy(self) -> None:
        ...

    @abc.abstractmethod
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        """Fetch load info for one back-end (front-end task context)."""
        ...

    def query_all(self, k: "TaskContext") -> Generator:
        """Batched poll of every back-end; returns {index: LoadInfo}.

        Default: sequential queries. Schemes override to overlap wire
        time where their transport allows it.
        """
        out: Dict[int, LoadInfo] = {}
        for i in range(len(self.backends)):
            out[i] = yield from self.query(k, i)
        return out

    def query_many(self, k: "TaskContext", indices) -> Generator:
        """Poll a subset of back-ends; returns {index: LoadInfo}.

        The federation leaf monitors poll per-shard subsets through
        this. Default: sequential queries, like :meth:`query_all`.
        Schemes whose transport can batch a fan-out (RDMA-Sync posts
        every WQE then rings one doorbell) override it.
        """
        out: Dict[int, LoadInfo] = {}
        for i in indices:
            out[i] = yield from self.query(k, i)
        return out

    def stop(self) -> None:
        """Ask back-end threads (if any) to exit at their next wakeup."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _probe_span(self, backend_index: int) -> "Optional[Span]":
        """Open a root trace for one monitoring probe (None when off).

        One probe = one trace: every transport hop the query takes
        (RDMA verb segments or socket send/recv) becomes a child span,
        so the probe's critical path is directly comparable with the
        paper's analytic latency model. Closed by :meth:`_record`.
        """
        tracer = self.frontend.span_tracer
        if tracer is None or not tracer.enabled:
            return None
        return tracer.start_trace(
            f"probe:{self.name}", node=self.frontend.name, component="monitor",
            attrs={"backend": backend_index, "scheme": self.name},
        )

    def _record(self, backend_index: int, issued_at: int, info: LoadInfo,
                span: "Optional[Span]" = None, ok: bool = True,
                attempts: int = 1) -> LoadInfo:
        info.received_at = self.sim.env.now
        self.records.append(
            QueryRecord(backend_index, issued_at, self.sim.env.now, info,
                        ok=ok, attempts=attempts)
        )
        if ok:
            self._last_good[backend_index] = info
        if span is not None:
            self.frontend.span_tracer.end(
                span, status=STATUS_OK, attrs={"staleness": info.staleness})
        return info

    def _record_failure(self, backend_index: int, issued_at: int,
                        span: "Optional[Span]" = None,
                        attempts: int = 1) -> LoadInfo:
        """Record a probe that exhausted its retry budget.

        The placeholder report reuses the last good data timestamp (or 0
        when there never was one), so the backend's apparent staleness
        keeps growing for as long as it stays unreachable — exactly what
        the staleness analyses should see during an outage.
        """
        self.failures += 1
        last = self._last_good.get(backend_index)
        info = LoadInfo(
            backend=self.backends[backend_index].name,
            collected_at=last.collected_at if last is not None else 0,
        )
        info.received_at = self.sim.env.now
        self.records.append(
            QueryRecord(backend_index, issued_at, self.sim.env.now, info,
                        ok=False, attempts=attempts)
        )
        if span is not None:
            self.frontend.span_tracer.end(
                span, status=STATUS_ERROR, attrs={"attempts": attempts})
        return info

    # ------------------------------------------------------------------
    # probe transports under the retry policy
    # ------------------------------------------------------------------
    def _batched_posts(self, k: "TaskContext", posts) -> Generator:
        """Post every closure into one WQE batch; ring ONE doorbell.

        The shared single-doorbell fan-out every RDMA probe path rides
        (see :class:`repro.transport.verbs.WqeBatch`). Returns the
        completion events in post order.
        """
        # Deferred: transport.verbs transitively imports this module.
        from repro.transport.verbs import WqeBatch

        batch = WqeBatch(net=self.sim.cfg.net)
        for post in posts:
            batch.post(post)
        yield from batch.ring(k)
        return batch.events

    def _verb_retry(self, k: "TaskContext", post) -> Generator:
        """Issue a verb probe under the retry policy.

        ``post()`` posts the work request and returns its completion
        event. Returns ``(wc, attempts)``; ``wc`` is ``None`` when every
        attempt timed out, and carries a non-ok status when the final
        attempt was NAK'd with a non-retryable error. With the policy
        disabled this is exactly ``QueuePair.rdma_read``'s wait sequence
        (post, doorbell, unbounded wait) — no extra events.
        """
        policy = self.policy
        net = self.sim.cfg.net
        if not policy.enabled:
            events = yield from self._batched_posts(k, (post,))
            wc = yield k.wait(events[0])
            return wc, 1
        # Deferred: transport.verbs transitively imports this module.
        from repro.transport.verbs import WcStatus

        env = self.sim.env
        attempts = 0
        while True:
            attempts += 1
            wc_event = post()
            yield k.compute(net.doorbell_cost, mode="user")
            deadline = env.timeout(policy.timeout)
            fired = yield k.wait(AnyOf(env, [wc_event, deadline]))
            if wc_event in fired:
                wc = wc_event.value
                if wc.ok or wc.status is not WcStatus.RNR_RETRY:
                    return wc, attempts
                # Receiver-not-ready NAK: retryable by definition.
                self.naks += 1
            else:
                self.timeouts += 1
            if attempts > policy.retries:
                return None, attempts
            self.retries += 1
            yield k.sleep(policy.backoff_for(attempts))

    def _socket_probe(self, k: "TaskContext", end, request_bytes: int,
                      ctx=None) -> Generator:
        """Request/reply probe over socket ``end`` under the retry policy.

        Returns ``(info, attempts)``; ``info`` is ``None`` when every
        attempt timed out. Stale replies left over from a previously
        timed-out probe are drained (and counted) before each request so
        a late reply can never be mistaken for the current one.
        """
        policy = self.policy
        if not policy.enabled:
            yield from end.send(k, "load-req", request_bytes, ctx=ctx)
            info = yield from end.recv(k, ctx=ctx)
            return info, 1
        attempts = 0
        while True:
            attempts += 1
            got, _stale = end.rx.try_get()
            while got:
                self.stale_drops += 1
                got, _stale = end.rx.try_get()
            yield from end.send(k, "load-req", request_bytes, ctx=ctx)
            info = yield from end.recv(k, ctx=ctx, timeout=policy.timeout)
            if info is not None:
                return info, attempts
            self.timeouts += 1
            if attempts > policy.retries:
                return None, attempts
            self.retries += 1
            yield k.sleep(policy.backoff_for(attempts))

    def fault_stats(self) -> Dict[str, int]:
        """Fault-recovery counters for telemetry and the fault matrix."""
        return {
            "timeouts": self.timeouts,
            "retries": self.retries,
            "naks": self.naks,
            "failures": self.failures,
            "stale_drops": self.stale_drops,
        }

    def latencies(self) -> List[int]:
        """All recorded query latencies, ns."""
        return [r.latency for r in self.records]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} interval={self.interval}>"
