"""Common interface for monitoring schemes.

A scheme is deployed once onto a built cluster; thereafter any front-end
task can ``yield from scheme.query(k, i)`` to obtain the freshest
:class:`~repro.monitoring.loadinfo.LoadInfo` the scheme can provide for
back-end ``i``, or ``yield from scheme.query_all(k)`` for the batched
poll the load balancer uses. Every query is recorded (latency, report)
for the micro-benchmark analyses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.monitoring.loadinfo import LoadInfo
from repro.tracing.span import STATUS_OK

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext
    from repro.tracing.span import Span


@dataclass
class QueryRecord:
    """One completed monitoring query (front-end view)."""

    backend: int
    issued_at: int
    completed_at: int
    info: LoadInfo

    @property
    def latency(self) -> int:
        return self.completed_at - self.issued_at


class MonitoringScheme(abc.ABC):
    """Base class for the five schemes."""

    #: registry name, e.g. "rdma-sync"
    name: str = "abstract"
    #: True if queries never involve the back-end CPU
    one_sided: bool = False
    #: monitoring threads the scheme runs on each back-end
    backend_threads: int = 0

    def __init__(self, sim: "ClusterSim", interval: Optional[int] = None) -> None:
        self.sim = sim
        self.frontend: "Node" = sim.frontend
        self.backends: List["Node"] = list(sim.backends)
        self.interval = interval if interval is not None else sim.cfg.monitor.interval
        if self.interval <= 0:
            raise ValueError("monitoring interval must be positive")
        self.records: List[QueryRecord] = []
        self._stopped = False
        self._deployed = False

    # ------------------------------------------------------------------
    def deploy(self) -> None:
        """Set up connections / registrations / back-end threads."""
        if self._deployed:
            raise RuntimeError(f"{self.name} already deployed")
        self._deployed = True
        self._deploy()

    @abc.abstractmethod
    def _deploy(self) -> None:
        ...

    @abc.abstractmethod
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        """Fetch load info for one back-end (front-end task context)."""
        ...

    def query_all(self, k: "TaskContext") -> Generator:
        """Batched poll of every back-end; returns {index: LoadInfo}.

        Default: sequential queries. Schemes override to overlap wire
        time where their transport allows it.
        """
        out: Dict[int, LoadInfo] = {}
        for i in range(len(self.backends)):
            out[i] = yield from self.query(k, i)
        return out

    def stop(self) -> None:
        """Ask back-end threads (if any) to exit at their next wakeup."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _probe_span(self, backend_index: int) -> "Optional[Span]":
        """Open a root trace for one monitoring probe (None when off).

        One probe = one trace: every transport hop the query takes
        (RDMA verb segments or socket send/recv) becomes a child span,
        so the probe's critical path is directly comparable with the
        paper's analytic latency model. Closed by :meth:`_record`.
        """
        tracer = self.frontend.span_tracer
        if tracer is None or not tracer.enabled:
            return None
        return tracer.start_trace(
            f"probe:{self.name}", node=self.frontend.name, component="monitor",
            attrs={"backend": backend_index, "scheme": self.name},
        )

    def _record(self, backend_index: int, issued_at: int, info: LoadInfo,
                span: "Optional[Span]" = None) -> LoadInfo:
        info.received_at = self.sim.env.now
        self.records.append(
            QueryRecord(backend_index, issued_at, self.sim.env.now, info)
        )
        if span is not None:
            self.frontend.span_tracer.end(
                span, status=STATUS_OK, attrs={"staleness": info.staleness})
        return info

    def latencies(self) -> List[int]:
        """All recorded query latencies, ns."""
        return [r.latency for r in self.records]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} interval={self.interval}>"
