"""RDMA-Async (the paper's §3.2.1, Fig 2a).

One load-calculating thread per back-end updates a *registered
user-space buffer* every interval ``T``; the front end fetches the
buffer with a one-sided RDMA read. The query path never touches the
back-end CPU (flat latency, Fig 3), but the data is still up to ``T``
old and the calc thread still perturbs applications and can itself be
delayed on a loaded node (Figs 4 and 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from repro.monitoring.base import MonitoringScheme, make_read_post
from repro.monitoring.loadinfo import LoadCalculator, LoadInfo
from repro.transport.verbs import (
    AccessFlags,
    MemoryRegionHandle,
    ProtectionDomain,
    QueuePair,
    connect_monitor_qp,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import TaskContext


class RdmaAsyncScheme(MonitoringScheme):
    """Asynchronous RDMA-based monitoring."""

    name = "rdma-async"
    one_sided = True
    backend_threads = 1

    def __init__(self, sim, *, interval: Optional[int] = None, with_irq_detail: bool = False) -> None:
        super().__init__(sim, interval=interval)
        self.with_irq_detail = with_irq_detail
        self._qps: List[QueuePair] = []
        self._mrs: List[MemoryRegionHandle] = []
        #: prebuilt untraced post closures (steady-state probe cache)
        self._posts: List = []

    def _deploy(self) -> None:
        mon = self.sim.cfg.monitor
        nbytes = mon.extended_bytes if self.with_irq_detail else mon.loadinfo_bytes
        for be in self.backends:
            region = be.memory.alloc(f"mon-buf:{self.name}", nbytes, value=None)
            pd = ProtectionDomain.for_node(be)
            self._mrs.append(pd.register(region, AccessFlags.REMOTE_READ))
            qp_fe, _qp_be = connect_monitor_qp(self.frontend, be)
            self._qps.append(qp_fe)
            self._posts.append(make_read_post(qp_fe, self._mrs[-1]))
            be.spawn(f"mon-calc:{be.name}", self._calc_body(be, region), nice=0)

    def _calc_body(self, be, region):
        calculator = LoadCalculator(be.name)
        mon = self.sim.cfg.monitor

        def body(k):
            while not self._stopped:
                stats = yield from be.procfs.read_stat(k)
                irq = None
                if self.with_irq_detail:
                    irq = yield from be.kmod.read_irq_stat(k)
                yield k.compute(mon.compose_cost)
                region.write(calculator.compute(stats, irq))
                yield k.sleep(self.interval)

        return body

    # ------------------------------------------------------------------
    def query(self, k: "TaskContext", backend_index: int) -> Generator:
        issued = k.now
        span = self._probe_span(backend_index)
        if span is None:
            post = self._posts[backend_index]
        else:
            mr = self._mrs[backend_index]
            qp = self._qps[backend_index]
            post = lambda: qp._post_read(mr.rkey, mr.nbytes, ctx=span)
        wc, attempts = yield from self._verb_retry(k, post)
        if wc is None or not wc.ok:
            return self._record_failure(backend_index, issued, span=span,
                                        attempts=attempts)
        info = wc.value
        if info is None:
            # Buffer not yet filled by the calc thread.
            info = LoadInfo(backend=self.backends[backend_index].name, collected_at=0)
        return self._record(backend_index, issued, info, span=span,
                            attempts=attempts)

    def query_all(self, k: "TaskContext") -> Generator:
        """Post all reads, then collect completions (overlapped wire time)."""
        if self.policy.enabled:
            out = yield from MonitoringScheme.query_all(self, k)
            return out
        net = self.sim.cfg.net
        issued = k.now
        spans = [self._probe_span(i) for i in range(len(self.backends))]
        events = []
        for i, (qp, mr) in enumerate(zip(self._qps, self._mrs)):
            yield k.compute(net.doorbell_cost)
            events.append(qp._post_read(mr.rkey, mr.nbytes, ctx=spans[i]))
        out: Dict[int, LoadInfo] = {}
        for i, ev in enumerate(events):
            wc = yield k.wait(ev)
            if not wc.ok:
                out[i] = self._record_failure(i, issued, span=spans[i])
                continue
            info = wc.value
            if info is None:
                info = LoadInfo(backend=self.backends[i].name, collected_at=0)
            out[i] = self._record(i, issued, info, span=spans[i])
        return out
