"""The metric registry: every plane's counters behind one stable surface.

:class:`MetricsRegistry` holds a list of *collectors* — zero-argument
callables returning :class:`MetricFamily` lists — and concatenates
their output on each :meth:`collect`. Collection is pull-based and
side-effect-free: nothing is cached, nothing is scheduled, and the
families are rebuilt from live simulator state on every scrape, so the
exposition always reflects the instant it was rendered and costs the
simulation zero simulated time.

Naming scheme (see docs/OBSERVABILITY.md for the full table): every
family is ``<namespace>_<subsystem>_<name>`` with OpenMetrics suffix
conventions (``_total`` for counters, quantile/``_sum``/``_count``
for summaries). Entity identity goes in labels — ``backend="3"``,
``shard="1"``, ``port="2"``, ``node="backend5"`` — never in the metric
name, so dashboards aggregate across entities with plain label
matchers. :meth:`MetricsRegistry.from_cluster` knows every plane the
:class:`~repro.experiments.common.RubisCluster` handle can carry and
registers a collector for each one present.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.openmetrics import (
    LABEL_NAME_RE,
    METRIC_NAME_RE,
    TYPE_SUFFIXES,
    TYPES,
    render_exposition,
)

#: quantiles every summary family exposes (matches the digest surface)
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: telemetry ring-key grammar: ``b<i>.`` / ``s<j>.`` / ``sw<p>.`` /
#: ``t<k>.`` prefixes (``sw`` must precede ``s`` in the alternation)
_KEY_RE = re.compile(r"(sw|s|b|t)(\d+)\.(.+)\Z")

#: ring-key prefix → (subsystem, entity label)
_KEY_GROUPS = {
    "b": ("backend", "backend"),
    "s": ("shard", "shard"),
    "sw": ("switch", "port"),
    "t": ("tenant", "tenant"),
}

_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Fold an arbitrary series name into the metric-name charset."""
    out = _SANITIZE_RE.sub("_", name)
    if not out or not METRIC_NAME_RE.match(out):
        out = "_" + out
    return out


class MetricFamily:
    """One named metric with typed samples.

    ``samples`` is a list of ``(suffix, labels, value)`` with labels a
    name-sorted tuple of (name, value) string pairs — exactly what the
    exposition renderer consumes.
    """

    __slots__ = ("name", "mtype", "help", "samples")

    def __init__(self, name: str, mtype: str, help: str) -> None:
        if not METRIC_NAME_RE.match(name):
            raise ValueError(f"bad metric family name {name!r}")
        if mtype not in TYPES:
            raise ValueError(f"unknown metric type {mtype!r} (one of {TYPES})")
        if mtype == "counter" and name.endswith("_total"):
            raise ValueError(
                f"counter family {name!r} must not carry the _total suffix "
                "(it is added per sample)")
        self.name = name
        self.mtype = mtype
        self.help = help
        self.samples: List[Tuple[str, Tuple[Tuple[str, str], ...], object]] = []

    @staticmethod
    def _labels(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
        out = []
        for name in sorted(labels):
            if not LABEL_NAME_RE.match(name):
                raise ValueError(f"bad label name {name!r}")
            out.append((name, str(labels[name])))
        return tuple(out)

    def add(self, value, suffix: Optional[str] = None, **labels) -> "MetricFamily":
        """Append one sample; the type's canonical suffix by default."""
        if suffix is None:
            suffix = {"counter": "_total", "info": "_info"}.get(self.mtype, "")
        if suffix not in TYPE_SUFFIXES[self.mtype]:
            raise ValueError(
                f"suffix {suffix!r} is illegal for {self.mtype} {self.name}")
        self.samples.append((suffix, self._labels(labels), value))
        return self

    def add_summary(self, digest, quantiles: Sequence[float] = DEFAULT_QUANTILES,
                    **labels) -> "MetricFamily":
        """Append one summary sample set from a StreamingDigest-like."""
        if self.mtype != "summary":
            raise ValueError(f"add_summary on {self.mtype} family {self.name}")
        base = self._labels(labels)
        for q in quantiles:
            self.samples.append(
                ("", base + (("quantile", str(q)),), digest.quantile(q)))
        self.samples.append(("_sum", base, digest.mean * digest.count))
        self.samples.append(("_count", base, digest.count))
        return self


class MetricsRegistry:
    """Pull-based collection of metric families from live collectors."""

    def __init__(self, namespace: str = "repro",
                 quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not METRIC_NAME_RE.match(namespace):
            raise ValueError(f"bad metric namespace {namespace!r}")
        self.namespace = namespace
        self.quantiles = tuple(quantiles)
        self._collectors: List[Callable[[], Iterable[MetricFamily]]] = []

    # ------------------------------------------------------------------
    def family(self, name: str, mtype: str, help: str) -> MetricFamily:
        """A fresh namespaced family (``<namespace>_<name>``)."""
        return MetricFamily(f"{self.namespace}_{name}", mtype, help)

    def register(self, collector: Callable[[], Iterable[MetricFamily]]
                 ) -> "MetricsRegistry":
        """Add a collector: a callable returning metric families."""
        self._collectors.append(collector)
        return self

    def collect(self) -> List[MetricFamily]:
        """Run every collector; duplicate family names are an error."""
        families: List[MetricFamily] = []
        for collector in self._collectors:
            families.extend(collector())
        seen = set()
        for family in families:
            if family.name in seen:
                raise ValueError(
                    f"metric family {family.name!r} emitted by two collectors")
            seen.add(family.name)
        return families

    def render(self) -> str:
        """The OpenMetrics text exposition of the current state."""
        return render_exposition(self.collect())

    # ------------------------------------------------------------------
    @classmethod
    def from_cluster(cls, cluster, namespace: str = "repro",
                     quantiles: Sequence[float] = DEFAULT_QUANTILES,
                     ) -> "MetricsRegistry":
        """Register a collector for every plane the cluster carries.

        ``cluster`` is a :class:`~repro.experiments.common.RubisCluster`
        (or anything duck-typed like one). Planes that are absent
        (``None``) are skipped, so the exposition names only what the
        deployment actually enabled.
        """
        reg = cls(namespace=namespace, quantiles=quantiles)
        reg.register(lambda: collect_sim(reg, cluster))
        reg.register(lambda: collect_monitor(reg, cluster))
        if cluster.dispatcher is not None:
            reg.register(lambda: collect_dispatcher(reg, cluster.dispatcher))
        if cluster.telemetry is not None:
            reg.register(lambda: collect_telemetry(reg, cluster.telemetry))
        spans = getattr(cluster.sim, "spans", None)
        if spans is not None and spans.enabled:
            reg.register(lambda: collect_spans(reg, spans))
        if cluster.federation is not None:
            reg.register(lambda: collect_federation(reg, cluster.federation))
        congestion = getattr(cluster.sim, "congestion", None)
        if congestion is not None:
            reg.register(lambda: collect_congestion(reg, cluster.sim))
        tenancy = getattr(cluster.sim, "tenancy", None)
        if tenancy is not None:
            reg.register(lambda: collect_tenancy(reg, cluster.sim))
        if cluster.faults is not None:
            reg.register(lambda: collect_faults(reg, cluster.faults))
        if cluster.heartbeat is not None:
            reg.register(lambda: collect_heartbeat(reg, cluster.heartbeat))
        scaler = getattr(cluster, "scaler", None)
        if scaler is not None:
            reg.register(lambda: collect_scaler(reg, scaler))
        return reg


# ----------------------------------------------------------------------
# collectors — one per plane, each a pure read of live state
# ----------------------------------------------------------------------
def _scheme_name(scheme) -> str:
    """Reverse-map a scheme instance to its registered paper name."""
    from repro.monitoring.registry import _SCHEMES

    for name, klass in _SCHEMES.items():
        if type(scheme) is klass:
            return name
    return type(scheme).__name__


def collect_sim(reg: MetricsRegistry, cluster) -> List[MetricFamily]:
    """Build info, simulated clock and event-core throughput counters."""
    from repro._version import __version__

    env = cluster.sim.env
    info = reg.family("build", "info", "Deployment identity of this exposition.")
    info.add(1, version=__version__, scheme=_scheme_name(cluster.scheme),
             backends=len(cluster.sim.backends))
    clock = reg.family("sim_time_ns", "gauge",
                       "Simulated clock at scrape time, nanoseconds.")
    clock.add(env.now)
    events = reg.family("sim_events", "counter",
                        "Events processed by the discrete-event core.")
    events.add(env.processed_events)
    cancelled = reg.family("sim_events_cancelled", "counter",
                           "Scheduled events cancelled before dispatch.")
    cancelled.add(env.cancelled_events)
    return [info, clock, events, cancelled]


def collect_monitor(reg: MetricsRegistry, cluster) -> List[MetricFamily]:
    """Front-end poller rounds plus the scheme's probe/retry counters."""
    monitor = cluster.monitor
    polls = reg.family("monitor_polls", "counter",
                       "Completed front-end monitoring rounds.")
    polls.add(monitor.polls)
    epoch = reg.family("monitor_epoch", "gauge",
                       "Current monitoring epoch of the flat front-end poller.")
    epoch.add(monitor.epoch)
    dropped = reg.family("monitor_history_dropped", "counter",
                         "Front-end history entries trimmed by the bound.")
    dropped.add(monitor.history_dropped)
    probes = reg.family(
        "probe_events", "counter",
        "Probe fault-recovery outcomes by kind (timeouts, retries, naks, "
        "failures, stale replies dropped).")
    for kind, count in sorted(cluster.scheme.fault_stats().items()):
        probes.add(count, kind=kind)
    return [polls, epoch, dropped, probes]


def collect_dispatcher(reg: MetricsRegistry, dispatcher) -> List[MetricFamily]:
    """Request outcomes and client-observed response-time quantiles."""
    from repro.telemetry.digest import exact_quantiles

    stats = dispatcher.stats
    outcomes = reg.family("requests", "counter",
                          "Requests by final outcome.")
    outcomes.add(stats.count(), outcome="completed")
    outcomes.add(stats.rejected_count, outcome="rejected")
    outcomes.add(stats.timeout_count, outcome="timed_out")
    forwarded = reg.family("requests_forwarded", "counter",
                           "Requests forwarded to a back-end.")
    forwarded.add(dispatcher.forwarded)
    rerouted = reg.family(
        "requests_rerouted", "counter",
        "Requests steered away from their first-choice back-end.")
    rerouted.add(dispatcher.rerouted_by_alert, reason="alert")
    rerouted.add(dispatcher.rerouted_by_health, reason="health")
    per_backend = reg.family("backend_requests", "counter",
                             "Completed requests per serving back-end.")
    for backend, count in sorted(stats.per_backend_counts().items()):
        per_backend.add(count, backend=backend)
    families = [outcomes, forwarded, rerouted, per_backend]

    times = stats.response_times()
    if times:
        rt = reg.family("response_time_ns", "summary",
                        "Client-observed response time, nanoseconds.")
        qs = exact_quantiles(times, reg.quantiles)

        class _Exact:  # duck-typed digest over the exact sample list
            count = len(times)
            mean = sum(times) / len(times)

            @staticmethod
            def quantile(q):
                return qs[list(reg.quantiles).index(q)]

        rt.add_summary(_Exact, reg.quantiles)
        families.append(rt)
    return families


#: help strings for the well-known telemetry series
_SERIES_HELP = {
    "cpu_util": "CPU utilisation fraction",
    "runq_load": "run-queue load (length averaged over the interval)",
    "nr_running": "instantaneous runnable task count",
    "irq_pressure": "pending-interrupt pressure (e-RDMA-Sync extension)",
    "mem_util": "memory utilisation fraction",
    "net_rate_mbps": "network receive rate, Mb/s",
    "staleness": "age of the load view when delivered, nanoseconds",
    "members": "routable members in the shard",
    "depth": "egress queue depth at enqueue, bytes",
    "ecn_rate": "cumulative ECN mark rate at the egress port",
    "pause_ns": "PFC pause issued by the egress port, nanoseconds",
    "rate": "DCQCN rate factor after a CNP cut",
    "posted_mbps": "tenant attempted post rate over the window, MB/s",
    "qp_creates": "tenant QP creation attempts in the window",
    "icm_misses": "tenant ICM context-cache misses in the window",
    "denied": "tenant verbs denied while quarantined, per window",
    "offending": "1 while the window crossed an offend_* threshold",
}


def collect_telemetry(reg: MetricsRegistry, pipeline) -> List[MetricFamily]:
    """Digest summaries, ring retention counters and alert totals.

    Ring keys ``b<i>.<metric>`` / ``s<j>.<metric>`` / ``sw<p>.<metric>``
    map to ``<ns>_backend_<metric>{backend="i"}`` /
    ``<ns>_shard_<metric>{shard="j"}`` / ``<ns>_switch_<metric>{port="p"}``
    summaries; keys outside the grammar fall back to
    ``<ns>_series_<sanitized>{series="<key>"}``.
    """
    families: Dict[str, MetricFamily] = {}
    digests = pipeline.digests()
    for key in sorted(digests):
        digest = digests[key]
        match = _KEY_RE.match(key)
        if match:
            prefix, index, metric = match.groups()
            subsystem, label = _KEY_GROUPS[prefix]
            name = f"{subsystem}_{sanitize_metric_name(metric)}"
            labels = {label: index}
        else:
            name = f"series_{sanitize_metric_name(key)}"
            labels = {"series": key}
        family = families.get(name)
        if family is None:
            metric = key.partition(".")[2] if "." in key else key
            detail = _SERIES_HELP.get(metric, f"telemetry series {metric!r}")
            family = families[name] = reg.family(
                name, "summary", f"Streaming digest: {detail}.")
        family.add_summary(digest, reg.quantiles, **labels)

    retained = reg.family("telemetry_retained", "gauge",
                          "Raw-tier samples currently retained per series.")
    dropped = reg.family("telemetry_dropped", "counter",
                         "Raw-tier samples aged out of the ring per series.")
    for key in pipeline.store.names():
        ring = pipeline.store.ring(key)
        retained.add(len(ring.raw), series=key)
        dropped.add(ring.raw.dropped, series=key)
    observations = reg.family("telemetry_observations", "counter",
                              "Load reports ingested by the pipeline.")
    observations.add(pipeline.observations)

    engine = pipeline.engine
    raised: Dict[Tuple[str, str], int] = {}
    cleared: Dict[str, int] = {}
    for alert in engine.log:
        if alert.cleared:
            cleared[alert.rule] = cleared.get(alert.rule, 0) + 1
        else:
            k = (alert.rule, alert.severity.name)
            raised[k] = raised.get(k, 0) + 1
    alerts = reg.family("alerts", "counter", "Alerts raised, by rule and severity.")
    for (rule, severity) in sorted(raised):
        alerts.add(raised[(rule, severity)], rule=rule, severity=severity)
    alerts_cleared = reg.family("alerts_cleared", "counter",
                                "Alerts cleared, by rule.")
    for rule in sorted(cleared):
        alerts_cleared.add(cleared[rule], rule=rule)
    active: Dict[str, int] = {}
    for alert in engine.active_alerts():
        active[alert.rule] = active.get(alert.rule, 0) + 1
    alerts_active = reg.family("alerts_active", "gauge",
                               "Currently-active alerts, by rule.")
    for rule in sorted(active):
        alerts_active.add(active[rule], rule=rule)
    return (list(families.values())
            + [retained, dropped, observations,
               alerts, alerts_cleared, alerts_active])


def collect_spans(reg: MetricsRegistry, spans) -> List[MetricFamily]:
    """Span-tracer totals: the drop counters the ASCII dumps hid."""
    traces = reg.family("traces_started", "counter",
                        "Traces started (post head-sampling).")
    traces.add(spans.traces_started)
    unsampled = reg.family("traces_unsampled", "counter",
                           "Root spans skipped by head sampling.")
    unsampled.add(spans.unsampled)
    committed = reg.family("spans_committed", "counter",
                           "Finished spans retained in the bounded store.")
    committed.add(len(spans.spans))
    dropped = reg.family("spans_dropped", "counter",
                         "Finished spans dropped by the store bound.")
    dropped.add(spans.dropped)
    open_spans = reg.family("spans_open", "gauge",
                            "Spans currently open (started, not ended).")
    open_spans.add(spans.open_spans)
    return [traces, unsampled, committed, dropped, open_spans]


def collect_federation(reg: MetricsRegistry, federation) -> List[MetricFamily]:
    """Root/leaf epochs, shard membership and rebalance counters."""
    root = federation.root
    topology = federation.topology
    epoch = reg.family("federation_epoch", "gauge",
                       "Root merge-round counter (global view epoch).")
    epoch.add(root.epoch)
    lag = reg.family("federation_epoch_lag", "gauge",
                     "Largest shard-epoch gap inside the merged view.")
    lag.add(root.max_epoch_lag())
    failures = reg.family("federation_read_failures", "counter",
                          "Root-side leaf snapshot reads that failed.")
    failures.add(root.read_failures)
    generation = reg.family("federation_generation", "gauge",
                            "Topology generation (bumped by each rebalance).")
    generation.add(topology.generation)
    rebalances = reg.family("federation_rebalances", "counter",
                            "Quarantine-driven shard re-splits.")
    rebalances.add(topology.rebalances)
    # prefixed federation_ so they cannot collide with the telemetry
    # plane's s<j>.members rollup (repro_shard_members summary)
    members = reg.family("federation_shard_members", "gauge",
                         "Routable back-ends assigned to the shard.")
    leaf_epoch = reg.family("federation_shard_epoch", "gauge",
                            "Freshest merged leaf epoch per shard.")
    for shard in range(topology.num_shards):
        members.add(len(topology.members(shard)), shard=shard)
        leaf_epoch.add(root.shard_epochs.get(shard, 0), shard=shard)
    return [epoch, lag, failures, generation, rebalances, members, leaf_epoch]


def collect_congestion(reg: MetricsRegistry, sim) -> List[MetricFamily]:
    """Per-port switch congestion counters and per-NIC DCQCN state."""
    plane = sim.congestion
    port_families = [
        ("switch_enqueued", "counter", "Packets enqueued at the egress port",
         lambda p: p.enqueued),
        ("switch_bytes_enqueued", "counter",
         "Bytes enqueued at the egress port", lambda p: p.bytes_enqueued),
        ("switch_ecn_marks", "counter",
         "Packets ECN-marked at the egress port", lambda p: p.ecn_marks),
        ("switch_pauses", "counter",
         "PFC pause frames emitted by the egress port", lambda p: p.pauses),
        ("switch_pause_ns", "counter",
         "Cumulative PFC pause issued, nanoseconds", lambda p: p.pause_ns),
        ("switch_peak_depth_bytes", "gauge",
         "Deepest egress queue observed, bytes", lambda p: p.peak_depth),
    ]
    ports = sorted(plane.switch.ports().values(), key=lambda p: p.index)
    out = []
    for name, mtype, help, getter in port_families:
        family = reg.family(name, mtype, help + ".")
        for port in ports:
            family.add(getter(port), port=port.index)
        out.append(family)

    nic_counters = [
        ("nic_ecn_marked_rx", "ECN-marked packets received by the NIC"),
        ("nic_cnps_sent", "Congestion notification packets generated"),
        ("nic_cnps_received", "Congestion notification packets received"),
        ("nic_pause_ns", "Time the NIC spent PFC-paused, nanoseconds"),
    ]
    for name, help in nic_counters:
        family = reg.family(name, "counter", help + ".")
        attr = "cc_" + name[len("nic_"):]
        for node in sim.nodes:
            value = getattr(node.nic, attr, 0)
            if value:
                family.add(value, node=node.name)
        out.append(family)
    return out


def collect_tenancy(reg: MetricsRegistry, sim) -> List[MetricFamily]:
    """Per-tenant resource accounting and per-NIC context-cache state."""
    plane = sim.tenancy
    qps = reg.family("tenant_qps_active", "gauge",
                     "Queue pairs currently held by the tenant.")
    posted = reg.family("tenant_posted_bytes", "counter",
                        "Bytes posted by the tenant's one-sided verbs.")
    denied = reg.family("tenant_denied_ops", "counter",
                        "Verb posts denied while the tenant was quarantined.")
    qp_denied = reg.family("tenant_qp_denied", "counter",
                           "QP creations rejected by admission.")
    # "tenancy_" (not "tenant_") so the exact counter can never collide
    # with the telemetry rollup summary built from the t<k>.icm_misses
    # ring series — same rule as the federation_shard_* gauges.
    misses = reg.family("tenancy_icm_misses", "counter",
                        "ICM context-cache misses charged to the tenant.")
    evictions = reg.family(
        "tenant_icm_evictions_inflicted", "counter",
        "Other tenants' hot ICM entries this tenant evicted.")
    quarantined = reg.family("tenant_quarantined", "gauge",
                             "1 while the defense loop quarantines the tenant.")
    throttle = reg.family("tenant_police_bps", "gauge",
                          "Defense-imposed byte-rate cap (0 = unthrottled).")
    for tenant in plane.registry:
        labels = {"tenant": tenant.tid, "name": tenant.name}
        qps.add(tenant.qps_active, **labels)
        posted.add(tenant.posted_bytes, **labels)
        denied.add(tenant.denied_ops, **labels)
        qp_denied.add(tenant.qp_denied, **labels)
        misses.add(tenant.icm_misses, **labels)
        evictions.add(tenant.icm_evictions_inflicted, **labels)
        quarantined.add(1 if tenant.quarantined else 0, **labels)
        throttle.add(tenant.police_bps, **labels)
    actions = reg.family("tenancy_actions", "counter",
                         "Defense sanctions by kind (throttle/quarantine/release).")
    counts: Dict[str, int] = {}
    for action in plane.actions:
        counts[action["kind"]] = counts.get(action["kind"], 0) + 1
    for kind in sorted(counts):
        actions.add(counts[kind], kind=kind)
    nic_hits = reg.family("nic_icm_hits", "counter",
                          "ICM context-cache hits at the NIC.")
    nic_misses = reg.family("nic_icm_misses", "counter",
                            "ICM context-cache misses at the NIC.")
    nic_qps = reg.family("nic_qp_table_entries", "gauge",
                         "Occupied entries in the NIC's bounded QP table.")
    for name, state in sorted(plane.stats()["nics"].items()):
        nic_hits.add(state["icm_hits"], node=name)
        nic_misses.add(state["icm_misses"], node=name)
        nic_qps.add(state["qp_count"], node=name)
    return [qps, posted, denied, qp_denied, misses, evictions, quarantined,
            throttle, actions, nic_hits, nic_misses, nic_qps]


def collect_faults(reg: MetricsRegistry, plane) -> List[MetricFamily]:
    """Fault-plane action and injection counters."""
    actions = reg.family("fault_actions", "counter",
                         "Fault-schedule actions by phase (applied/revoked).")
    actions.add(plane.applied, phase="applied")
    actions.add(plane.revoked, phase="revoked")
    injected = reg.family("fault_injections", "counter",
                          "Individual injections by kind.")
    injected.add(plane.dropped_packets, kind="dropped_packet")
    injected.add(plane.naks_injected, kind="verb_nak")
    injected.add(plane.mrs_invalidated, kind="mr_invalidated")
    return [actions, injected]


def collect_heartbeat(reg: MetricsRegistry, heartbeat) -> List[MetricFamily]:
    """Heartbeat probe totals and per-backend quarantine flags."""
    probes = reg.family("heartbeat_probes", "counter",
                        "RDMA heartbeat probes issued.")
    probes.add(heartbeat.probes)
    quarantined = set(heartbeat.quarantined())
    flags = reg.family("backend_quarantined", "gauge",
                       "1 while the heartbeat monitor quarantines the back-end.")
    for backend in sorted(set(heartbeat.healthy_backends()) | quarantined):
        flags.add(1 if backend in quarantined else 0, backend=backend)
    return [probes, flags]


def collect_scaler(reg: MetricsRegistry, scaler) -> List[MetricFamily]:
    """Elastic-scaler pool state, decision counts and last pool load."""
    active = reg.family("scaler_active_backends", "gauge",
                        "Back-ends currently in the serving pool.")
    active.add(len(scaler.active))
    parked = reg.family("scaler_parked_backends", "gauge",
                        "Back-ends currently parked (scaled down).")
    parked.add(len(scaler.parked))
    evals = reg.family("scaler_evaluations", "counter",
                       "Scaling evaluations performed.")
    evals.add(scaler.evaluations)
    moves = reg.family("scaler_moves", "counter",
                       "Scale moves taken, by direction.")
    for direction in ("up", "down"):
        moves.add(sum(1 for e in scaler.events if e.direction == direction),
                  direction=direction)
    load = reg.family("scaler_mean_load", "gauge",
                      "Mean load score over the active pool, last evaluation.")
    if scaler.samples:
        load.add(scaler.samples[-1][1])
    return [active, parked, evals, moves, load]
