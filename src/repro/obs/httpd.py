"""A real ``/metrics`` scrape endpoint over ``http.server``.

:class:`MetricsServer` binds a :class:`ThreadingHTTPServer` on a
background daemon thread and serves

* ``/metrics`` — the registry's OpenMetrics exposition, rendered fresh
  per scrape with the standard OpenMetrics content type;
* ``/report``  — the current job report as JSON (when a provider was
  given);
* ``/healthz`` — liveness probe;
* ``/``        — a one-page index.

The simulator is single-threaded and a scrape only *reads* live plane
state (collectors are side-effect-free), so serving between — or even
during — ``run()`` slices is safe: a scrape racing the simulation can
observe a mid-epoch view, never corrupt one. Port 0 binds an ephemeral
port (the default everywhere in-tree, so tests and CI never collide).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.openmetrics import CONTENT_TYPE

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry

_INDEX = """<html><head><title>repro exporter</title></head>
<body><h1>repro metrics exporter</h1>
<p><a href="/metrics">/metrics</a> — OpenMetrics exposition</p>
<p><a href="/report">/report</a> — per-session job report (JSON)</p>
<p><a href="/healthz">/healthz</a> — liveness</p>
</body></html>
"""


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-exporter/1.0"

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                body = self.server.registry.render()  # type: ignore[attr-defined]
            except Exception as exc:  # surface render bugs to the scraper
                self._send(500, "text/plain; charset=utf-8",
                           f"exposition failed: {exc}\n")
                return
            self._send(200, CONTENT_TYPE, body)
        elif path == "/report":
            provider = self.server.report_provider  # type: ignore[attr-defined]
            if provider is None:
                self._send(404, "text/plain; charset=utf-8",
                           "no job-report provider configured\n")
                return
            self._send(200, "application/json; charset=utf-8",
                       provider().to_json() + "\n")
        elif path == "/healthz":
            self._send(200, "text/plain; charset=utf-8", "ok\n")
        elif path == "/":
            self._send(200, "text/html; charset=utf-8", _INDEX)
        else:
            self._send(404, "text/plain; charset=utf-8", "not found\n")

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass


class MetricsServer:
    """Background-thread HTTP server exposing a metrics registry."""

    def __init__(self, registry: "MetricsRegistry", host: str = "127.0.0.1",
                 port: int = 0,
                 report_provider: Optional[Callable[[], object]] = None) -> None:
        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.registry = registry  # type: ignore[attr-defined]
        self._httpd.report_provider = report_provider  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral port 0 requests)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
