"""Per-session job reports: traces and telemetry joined per query class.

The MPCDF observation (PAPERS.md): node metrics become actionable when
they are re-cut per *job*. :func:`build_job_report` does that join for
one cluster session — for every workload query class it combines

* client-observed response-time statistics (dispatcher request log),
* the mean trace **critical path**, broken down per span name, from
  the sampled traces of that class (:mod:`repro.tracing.analysis`),

and sides them with the per-back-end telemetry quantiles (cpu, run
queue, staleness) and the monitoring plane's own health counters. The
result is a deterministic artifact: :meth:`JobReport.to_json` is
byte-identical across same-seed runs, and :meth:`JobReport.render`
prints the human-shaped tables.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.telemetry.digest import exact_quantiles
from repro.tracing.analysis import critical_path

#: bump when the report's JSON shape changes
JOB_REPORT_SCHEMA_VERSION = 1


def _round(x: float, digits: int = 4) -> float:
    return round(float(x), digits)


class JobReport:
    """One session's report: a plain payload dict plus renderings."""

    def __init__(self, payload: Dict[str, object]) -> None:
        self.payload = payload

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, fixed separators)."""
        return json.dumps(self.payload, sort_keys=True, separators=(",", ":"))

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The terminal form: per-class, per-backend and plane tables."""
        p = self.payload
        sections: List[str] = [
            f"== JOB REPORT: {p['job']} "
            f"(schema v{p['schema_version']}, t={p['sim_time_ns'] / 1e9:.3f}s) =="
        ]
        classes: Dict[str, dict] = p["classes"]  # type: ignore[assignment]
        rows = []
        for name in sorted(classes):
            c = classes[name]
            rt, cp = c["response_ms"], c["critical_path"]
            rows.append([
                name, c["count"],
                f"{rt['mean']:.1f}", f"{rt['p50']:.1f}",
                f"{rt['p95']:.1f}", f"{rt['p99']:.1f}",
                cp["traces"],
                f"{cp['total_us']:.1f}" if cp["traces"] else "<no traces>",
                cp["dominant"] or "-",
            ])
        sections.append(format_table(
            ["class", "n", "mean ms", "p50 ms", "p95 ms", "p99 ms",
             "traces", "crit-path us", "dominant segment"],
            rows, title="Per-query-class response times + trace critical paths",
        ))

        backends: Dict[str, dict] = p["backends"]  # type: ignore[assignment]
        rows = []
        for idx in sorted(backends, key=int):
            b = backends[idx]
            rows.append([
                f"backend{idx}", b["requests"],
                f"{b['cpu_util']['p50']:.2f}", f"{b['cpu_util']['p95']:.2f}",
                f"{b['runq_load']['p95']:.1f}",
                f"{b['staleness_ms']['p95']:.2f}",
            ])
        sections.append(format_table(
            ["backend", "requests", "cpu p50", "cpu p95", "runq p95",
             "stale p95 ms"],
            rows, title="Per-backend telemetry digests",
        ))

        mon = p["monitoring"]
        sections.append(
            f"Monitoring: polls={mon['polls']} "
            f"observations={mon['observations']} "
            f"alerts={mon['alerts_raised']} "
            f"traces={mon['traces']} spans={mon['spans']} "
            f"(dropped {mon['spans_dropped']})")
        totals = p["requests"]
        sections.append(
            f"Requests: completed={totals['completed']} "
            f"rejected={totals['rejected']} timed_out={totals['timed_out']}")
        return "\n\n".join(sections)


def _quantile_block(values: Sequence[float],
                    qs: Sequence[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
    got = exact_quantiles(list(values), qs)
    return {f"p{int(q * 100)}": _round(v) for q, v in zip(qs, got)}


def _digest_block(digest, qs: Sequence[float] = (0.5, 0.95)) -> Dict[str, float]:
    if digest is None or digest.count == 0:
        return {f"p{int(q * 100)}": 0.0 for q in qs}
    return {f"p{int(q * 100)}": _round(digest.quantile(q)) for q in qs}


def build_job_report(cluster, job: str = "rubis",
                     stats=None) -> JobReport:
    """Join traces, telemetry and request stats into one report.

    ``cluster`` is a :class:`~repro.experiments.common.RubisCluster`;
    ``stats`` defaults to the dispatcher's request log. Classes with no
    sampled traces still report response-time statistics — the
    critical-path block just records zero traces (tracing off, or head
    sampling skipped them all).
    """
    if stats is None:
        stats = cluster.dispatcher.stats
    spans = getattr(cluster.sim, "spans", None)
    telemetry = cluster.telemetry

    # Group finished spans per trace, and traces per query class.
    by_trace: Dict[int, list] = {}
    root_class: Dict[int, str] = {}
    if spans is not None:
        for span in spans.spans:
            by_trace.setdefault(span.trace_id, []).append(span)
            if span.parent_id is None and "query" in span.attrs:
                root_class[span.trace_id] = str(span.attrs["query"])

    class_traces: Dict[str, List[int]] = {}
    for trace_id, name in root_class.items():
        class_traces.setdefault(name, []).append(trace_id)

    classes: Dict[str, dict] = {}
    for name, times in sorted(stats.by_query().items()):
        ms = [t / 1e6 for t in times]
        block = {
            "count": len(times),
            "response_ms": {
                "mean": _round(sum(ms) / len(ms)),
                "max": _round(max(ms)),
                **_quantile_block(ms),
            },
        }
        seg_totals: Dict[str, float] = {}
        path_total = 0.0
        trace_ids = sorted(class_traces.get(name, []))
        for trace_id in trace_ids:
            path = critical_path(by_trace[trace_id])
            for seg in path:
                seg_totals[seg.name] = seg_totals.get(seg.name, 0.0) + seg.duration
            path_total += sum(s.duration for s in path)
        n = len(trace_ids)
        segments = {
            seg: _round(total / n / 1e3)  # mean us per trace
            for seg, total in sorted(seg_totals.items())
        }
        dominant = max(segments, key=lambda s: segments[s]) if segments else ""
        block["critical_path"] = {
            "traces": n,
            "total_us": _round(path_total / n / 1e3) if n else 0.0,
            "segments": segments,
            "dominant": dominant,
        }
        classes[name] = block

    backends: Dict[str, dict] = {}
    per_backend = stats.per_backend_counts()
    for i in range(len(cluster.servers)):
        block = {"requests": per_backend.get(i, 0)}
        for metric, qs in (("cpu_util", (0.5, 0.95)),
                           ("runq_load", (0.5, 0.95))):
            digest = telemetry.digest(i, metric) if telemetry else None
            block[metric] = _digest_block(digest, qs)
        stale = telemetry.digest(i, "staleness") if telemetry else None
        if stale is not None and stale.count:
            block["staleness_ms"] = {
                "p95": _round(stale.quantile(0.95) / 1e6)}
        else:
            block["staleness_ms"] = {"p95": 0.0}
        backends[str(i)] = block

    payload: Dict[str, object] = {
        "schema_version": JOB_REPORT_SCHEMA_VERSION,
        "kind": "job-report",
        "job": job,
        "sim_time_ns": cluster.sim.env.now,
        "requests": {
            "completed": stats.count(),
            "rejected": stats.rejected_count,
            "timed_out": stats.timeout_count,
        },
        "classes": classes,
        "backends": backends,
        "monitoring": {
            "polls": cluster.monitor.polls,
            "observations": telemetry.observations if telemetry else 0,
            "alerts_raised": (sum(telemetry.engine.counts_by_rule().values())
                              if telemetry else 0),
            "traces": spans.traces_started if spans else 0,
            "spans": len(spans.spans) if spans else 0,
            "spans_dropped": spans.dropped if spans else 0,
        },
    }
    return JobReport(payload)
