"""OpenMetrics text exposition: deterministic rendering + validation.

The render side turns :class:`~repro.obs.registry.MetricFamily` lists
into the OpenMetrics text format (the superset Prometheus scrapes):
``# HELP`` / ``# TYPE`` metadata, escaped label values, a trailing
``# EOF``. Output is a pure function of the families — families sorted
by name, samples in collector order, floats rendered via ``repr``
(shortest round-trip, platform-independent) — so same-seed runs export
byte-identical text (tested in ``tests/obs/``).

The validate side is an in-tree promtool-style line-format checker:
:func:`validate_exposition` parses the text from scratch (it shares no
code with the renderer) and returns a list of ``"line N: problem"``
strings, empty when the document conforms. CI scrapes the live
``/metrics`` endpoint and runs it (the ``obs-smoke`` job).
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricFamily

#: legal metric-family names (OpenMetrics ABNF, colons reserved for rules)
METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
#: legal label names (leading ``__`` is reserved for internal use)
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: metric types this exposition emits (a subset of OpenMetrics 1.0)
TYPES = ("gauge", "counter", "summary", "info", "unknown")

#: sample-name suffixes each type may emit (OpenMetrics: the *family*
#: name is suffix-free; counters sample as ``_total``, summaries as the
#: bare name (with a ``quantile`` label) plus ``_sum``/``_count``)
TYPE_SUFFIXES: Dict[str, Tuple[str, ...]] = {
    "gauge": ("",),
    "counter": ("_total",),
    "summary": ("", "_sum", "_count"),
    "info": ("_info",),
    "unknown": ("",),
}

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value (``\\``, ``"``, newline)."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Backslash-escape HELP text (``\\`` and newline; quotes are legal)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value) -> str:
    """Deterministic sample-value rendering.

    Integral values print as integers (``12`` not ``12.0``); other
    floats use ``repr`` — Python's shortest round-trip form, identical
    on every platform. Non-finite values use the OpenMetrics spellings.
    """
    if isinstance(value, bool):
        raise TypeError("metric values must be numeric, not bool")
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def render_exposition(families: Iterable["MetricFamily"]) -> str:
    """Render metric families as OpenMetrics text (ends with ``# EOF``)."""
    lines: List[str] = []
    seen = set()
    for family in sorted(families, key=lambda f: f.name):
        if family.name in seen:
            raise ValueError(f"duplicate metric family {family.name!r}")
        seen.add(family.name)
        lines.append(f"# HELP {family.name} {escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.mtype}")
        for suffix, labels, value in family.samples:
            lines.append(
                f"{family.name}{suffix}{_render_labels(labels)} "
                f"{format_value(value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# validation (promtool-style; independent of the renderer)
# ----------------------------------------------------------------------
_VALUE_RE = re.compile(
    r"(?:[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?|[+-]?Inf|NaN)\Z"
)


def _parse_labels(text: str) -> Tuple[Optional[List[Tuple[str, str]]], str]:
    """Parse ``name="value",...`` (no braces); return (pairs, error)."""
    pairs: List[Tuple[str, str]] = []
    i, n = 0, len(text)
    while i < n:
        j = text.find("=", i)
        if j < 0:
            return None, "label without '='"
        name = text[i:j]
        if not LABEL_NAME_RE.match(name):
            return None, f"bad label name {name!r}"
        if j + 1 >= n or text[j + 1] != '"':
            return None, f"label {name!r} value is not quoted"
        value = []
        k = j + 2
        while k < n:
            c = text[k]
            if c == "\\":
                if k + 1 >= n:
                    return None, f"dangling escape in label {name!r}"
                esc = text[k + 1]
                if esc not in ('\\', '"', 'n'):
                    return None, f"bad escape '\\{esc}' in label {name!r}"
                value.append("\n" if esc == "n" else esc)
                k += 2
            elif c == '"':
                break
            else:
                value.append(c)
                k += 1
        else:
            return None, f"unterminated label value for {name!r}"
        pairs.append((name, "".join(value)))
        i = k + 1
        if i < n:
            if text[i] != ",":
                return None, f"expected ',' between labels, got {text[i]!r}"
            i += 1
            if i == n:
                return None, "trailing ',' in label set"
    return pairs, ""


def _split_sample(line: str) -> Tuple[str, str, str, str]:
    """Split a sample line into (name, label-body, value, error)."""
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            return "", "", "", "unbalanced '{' in sample line"
        name = line[:brace]
        labels = line[brace + 1:close]
        rest = line[close + 1:]
    else:
        sp = line.find(" ")
        if sp < 0:
            return "", "", "", "sample line has no value"
        name = line[:sp]
        labels = ""
        rest = line[sp:]
    value = rest.strip()
    if not value:
        return "", "", "", "sample line has no value"
    # OpenMetrics allows an optional timestamp; this repo never emits
    # one, and a deterministic exposition must not, so reject it.
    if " " in value:
        return "", "", "", "unexpected timestamp (exposition must be timestamp-free)"
    return name, labels, value, ""


def _family_of(sample_name: str, families: Dict[str, str]) -> Optional[Tuple[str, str]]:
    """Resolve a sample name to its declared (family, suffix)."""
    candidates = []
    for family, mtype in families.items():
        if sample_name == family or (
                sample_name.startswith(family)
                and sample_name[len(family):] in TYPE_SUFFIXES[mtype]):
            candidates.append((family, sample_name[len(family):]))
    if not candidates:
        return None
    # Longest family wins (foo_sum belongs to summary foo, not gauge foo_sum
    # — unless foo_sum itself is declared).
    return max(candidates, key=lambda c: len(c[0]))


def validate_exposition(text: str) -> List[str]:
    """Check OpenMetrics line-format conformance; return problems.

    Enforces, per line: metadata grammar (``# HELP`` / ``# TYPE`` /
    ``# EOF``), metric- and label-name charsets, label escaping, float
    values, and per family: TYPE declared once and before any sample,
    sample suffixes legal for the declared type, summary ``quantile``
    labels in [0, 1], counter values non-negative, no samples without a
    declaration, no duplicate sample lines, and exactly one ``# EOF``
    as the final line.
    """
    problems: List[str] = []
    families: Dict[str, str] = {}
    helped: set = set()
    sampled: set = set()
    seen_samples: set = set()
    eof_line = None

    if not text:
        return ["empty exposition"]
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")

    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()

    for lineno, line in enumerate(lines, start=1):
        if eof_line is not None:
            problems.append(f"line {lineno}: content after # EOF")
            break
        if line == "# EOF":
            eof_line = lineno
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment {line!r}")
                continue
            kind, name = parts[1], parts[2]
            body = parts[3] if len(parts) > 3 else ""
            if not METRIC_NAME_RE.match(name):
                problems.append(f"line {lineno}: bad metric name {name!r}")
                continue
            if kind == "HELP":
                if name in helped:
                    problems.append(f"line {lineno}: second HELP for {name}")
                helped.add(name)
            else:
                if body not in TYPES:
                    problems.append(f"line {lineno}: unknown type {body!r} for {name}")
                    continue
                if name in families:
                    problems.append(f"line {lineno}: second TYPE for {name}")
                    continue
                if name in sampled:
                    problems.append(
                        f"line {lineno}: TYPE for {name} after its samples")
                families[name] = body
            continue
        if not line.strip():
            problems.append(f"line {lineno}: blank line")
            continue

        name, label_body, value, err = _split_sample(line)
        if err:
            problems.append(f"line {lineno}: {err}")
            continue
        if not METRIC_NAME_RE.match(name):
            problems.append(f"line {lineno}: bad sample name {name!r}")
            continue
        labels: List[Tuple[str, str]] = []
        if label_body:
            labels, label_err = _parse_labels(label_body)  # type: ignore[assignment]
            if labels is None:
                problems.append(f"line {lineno}: {label_err}")
                continue
        label_names = [k for k, _ in labels]
        if len(label_names) != len(set(label_names)):
            problems.append(f"line {lineno}: duplicate label name")
        if not _VALUE_RE.match(value):
            problems.append(f"line {lineno}: bad value {value!r}")
            continue

        resolved = _family_of(name, families)
        if resolved is None:
            problems.append(
                f"line {lineno}: sample {name!r} has no # TYPE declaration")
            continue
        family, suffix = resolved
        mtype = families[family]
        sampled.add(family)
        key = (name, tuple(labels))
        if key in seen_samples:
            problems.append(f"line {lineno}: duplicate sample {name}{label_body}")
        seen_samples.add(key)

        if mtype == "counter" and float(value) < 0:
            problems.append(f"line {lineno}: counter {name} is negative")
        if mtype == "summary" and suffix == "":
            qs = [v for k, v in labels if k == "quantile"]
            if not qs:
                problems.append(
                    f"line {lineno}: summary {family} sample without quantile label")
            else:
                try:
                    q = float(qs[0])
                except ValueError:
                    q = -1.0
                if not 0.0 <= q <= 1.0:
                    problems.append(
                        f"line {lineno}: quantile {qs[0]!r} outside [0, 1]")
        if mtype == "info" and value != "1":
            problems.append(f"line {lineno}: info {name} must have value 1")

    if eof_line is None:
        problems.append("missing # EOF terminator")
    elif eof_line != len(lines):
        problems.append(f"# EOF at line {eof_line} is not the final line")
    return problems
