"""The deployed observability surface for one cluster.

:class:`Observability` is what ``ClusterBuilder.observability(...)``
hangs off the cluster handle: the registry wired to every present
plane, plus the optional consumers the ``cfg.obs`` knobs enabled — a
per-epoch snapshot writer and/or a live ``/metrics`` HTTP endpoint.
Everything is observer-side; simulated time is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.httpd import MetricsServer
from repro.obs.jobreport import JobReport, build_job_report
from repro.obs.registry import MetricsRegistry
from repro.obs.snapshots import SnapshotWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import ObsConfig


class Observability:
    """Registry + optional snapshot writer + optional scrape endpoint."""

    def __init__(self, registry: MetricsRegistry, cfg: "ObsConfig",
                 cluster=None) -> None:
        self.registry = registry
        self.cfg = cfg
        self.cluster = cluster
        self.writer: Optional[SnapshotWriter] = None
        self.server: Optional[MetricsServer] = None

    # ------------------------------------------------------------------
    @classmethod
    def deploy(cls, cluster, cfg: "ObsConfig") -> "Observability":
        """Wire the surface onto a built cluster per the config knobs."""
        registry = MetricsRegistry.from_cluster(
            cluster, namespace=cfg.namespace, quantiles=cfg.quantiles)
        obs = cls(registry, cfg, cluster=cluster)
        if cfg.snapshot_dir:
            obs.writer = SnapshotWriter(
                registry, cfg.snapshot_dir, every=cfg.snapshot_every)
            view = (cluster.federation.root
                    if cluster.federation is not None else cluster.monitor)
            obs.writer.attach(view)
        if cfg.http:
            obs.server = MetricsServer(
                registry, host=cfg.http_host, port=cfg.http_port,
                report_provider=obs.job_report)
            obs.server.start()
        return obs

    # ------------------------------------------------------------------
    def exposition(self) -> str:
        """The OpenMetrics text of the current simulator state."""
        return self.registry.render()

    def snapshot(self):
        """Write one exposition snapshot now (needs ``snapshot_dir``)."""
        if self.writer is None:
            raise RuntimeError(
                "no snapshot writer: set cfg.obs.snapshot_dir (or pass "
                "snapshot_dir=... to ClusterBuilder.observability)")
        return self.writer.write()

    def job_report(self, job: str = "rubis", stats=None) -> JobReport:
        """Build the per-session job report for this cluster."""
        if self.cluster is None:
            raise RuntimeError("observability surface has no cluster handle")
        return build_job_report(self.cluster, job=job, stats=stats)

    def stop(self) -> None:
        """Shut down the scrape endpoint (if one was started)."""
        if self.server is not None:
            self.server.stop()
