"""``repro.obs`` — the production observability surface.

Everything the simulator's planes already measure — telemetry digests
and alerts, federation shard snapshots, congestion switch counters,
fault/retry counters, span-tracer totals, event-core throughput — is
exposed through one :class:`~repro.obs.registry.MetricsRegistry` with a
stable OpenMetrics naming scheme (docs/OBSERVABILITY.md), and consumed
three ways:

* :mod:`repro.obs.openmetrics` — deterministic Prometheus/OpenMetrics
  text exposition (byte-identical across same-seed runs) plus an
  in-tree promtool-style line-format validator;
* :mod:`repro.obs.snapshots` / :mod:`repro.obs.httpd` — a file-backed
  snapshot-per-epoch writer and a real ``http.server``-based
  ``/metrics`` scrape endpoint;
* :mod:`repro.obs.jobreport` — per-session/per-query-class job reports
  joining tracing critical paths with telemetry quantiles.

All of it is observer-side bookkeeping: nothing here schedules
simulated events, so a run with the surface enabled is bit-identical
to one without (property-tested, like telemetry and tracing).
"""

from repro.obs.httpd import MetricsServer
from repro.obs.jobreport import JOB_REPORT_SCHEMA_VERSION, JobReport, build_job_report
from repro.obs.openmetrics import (
    escape_help,
    escape_label_value,
    format_value,
    render_exposition,
    validate_exposition,
)
from repro.obs.registry import MetricFamily, MetricsRegistry
from repro.obs.snapshots import SnapshotWriter
from repro.obs.surface import Observability

__all__ = [
    "JOB_REPORT_SCHEMA_VERSION",
    "JobReport",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "Observability",
    "SnapshotWriter",
    "build_job_report",
    "escape_help",
    "escape_label_value",
    "format_value",
    "render_exposition",
    "validate_exposition",
]
