"""File-backed exposition snapshots, one per monitoring epoch.

:class:`SnapshotWriter` renders a registry to ``<prefix>-<seq>.prom``
files — the "node exporter textfile collector" pattern: a scraper (or
a human with ``diff``) can replay the whole run epoch by epoch, and
two same-seed runs produce byte-identical snapshot sequences.

Writing happens on the wall clock only (inside an observer callback);
the simulation schedules nothing and simulated time is untouched.
"""

from __future__ import annotations

import pathlib
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry


class SnapshotWriter:
    """Writes numbered ``.prom`` exposition snapshots to a directory."""

    def __init__(self, registry: "MetricsRegistry", directory,
                 prefix: str = "metrics", every: int = 1) -> None:
        if every < 1:
            raise ValueError("snapshot cadence must be >= 1 epoch")
        self.registry = registry
        self.directory = pathlib.Path(directory)
        self.prefix = prefix
        self.every = every
        #: snapshot files written, in order
        self.paths: List[pathlib.Path] = []
        # manual write() numbering is 1-based, matching monitor epochs
        self._seq = 1

    def write(self, seq: Optional[int] = None) -> pathlib.Path:
        """Render the registry into the next (or given) numbered file."""
        if seq is None:
            seq = self._seq
        self._seq = seq + 1
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{self.prefix}-{seq:06d}.prom"
        path.write_text(self.registry.render())
        self.paths.append(path)
        return path

    def attach(self, monitor) -> "SnapshotWriter":
        """Snapshot every ``every``-th monitoring round.

        ``monitor`` is anything with the ``round_observer`` hook — the
        flat :class:`~repro.monitoring.frontend.FrontendMonitor` or the
        federated root. Chains onto any observer already installed.
        """
        previous = monitor.round_observer

        def observer(epoch: int, latest) -> None:
            if previous is not None:
                previous(epoch, latest)
            if epoch % self.every == 0:
                self.write(epoch)

        monitor.round_observer = observer
        return self
