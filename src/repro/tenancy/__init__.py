"""Multi-tenant NIC resource model and monitoring-driven defense.

The plane (`TenancyPlane`) gives the cluster's RDMA fabric the shared
NIC resources real multi-tenant deployments fight over:

* a **bounded QP table** per NIC — tenants that churn queue pairs can
  exhaust it (``cfg.tenancy.qp_table_size``);
* an **ICM context cache** (:class:`repro.hw.nic.IcmCache`) — verbs
  whose QP/MR state misses pay a PCIe refill penalty, and capacity is
  shared so one tenant's working set evicts another's;
* **per-tenant quotas and rate policing** enforced at verb-post time in
  :mod:`repro.transport.verbs`;
* a **closed defense loop** — per-tenant telemetry detects the
  offender, the plane throttles then quarantines its QPs, and the
  federation rebalances affected shards.

Everything is off by default (``cfg.tenancy.enabled = False``) and the
disabled plane is byte-identical to its absence (property-tested).
"""

from repro.tenancy.plane import TenancyPlane
from repro.tenancy.registry import Tenant, TenantRegistry

__all__ = ["Tenant", "TenantRegistry", "TenancyPlane"]
