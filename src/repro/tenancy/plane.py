"""The tenancy plane: shared-NIC resources, policing, and defense.

Installed on the fabric when ``cfg.tenancy.enabled``; every NIC gains a
bounded QP table and an ICM context cache (:class:`repro.hw.nic.IcmCache`)
shared across tenants, and :mod:`repro.transport.verbs` consults the
plane at QP creation and verb-post time:

* ``on_qp_create`` — admission: quarantined tenants, full QP tables and
  exceeded quotas all reject the QP (``TenancyError``);
* ``police`` — rate policing: a tenant over its byte rate has its post
  delayed (token spacing), a quarantined tenant's post completes with
  ``WcStatus.TENANT_DENIED``;
* ``icm_touch`` — working-set model: a QP/MR whose context is not in
  the NIC cache pays ``cfg.tenancy.icm_miss_penalty`` (the PCIe refill)
  and may evict another tenant's hot entry.

The **defense loop** ticks every ``defense_interval``: per-tenant
*attempted* rates (bytes posted + denied, QP creates + denials, ICM
misses) are compared against the ``offend_*`` thresholds. An offender
is first throttled (``police_bps`` = observed rate × ``throttle_factor``,
span ``tenancy:throttle``) and, after ``quarantine_after`` cumulative
offending windows, quarantined (span ``tenancy:evict``) — which also
asks the federation to rebalance shard assignments. ``release_after``
consecutive clean windows lift a *throttle* (span ``tenancy:release``)
but strikes persist, so a throttle–release–re-offend oscillator still
accumulates its way into quarantine; quarantine is sticky until the
operator path (:meth:`TenancyPlane.release`) re-admits the tenant.
The ticker runs whenever the plane is installed — detection telemetry
is always produced; only the *sanctions* are gated on
``cfg.tenancy.defense`` — so attaching observers never changes event
counts.

The plane draws no random numbers and keys everything by stable
integer tenant ids, so enabled runs are deterministic and disabled
runs are byte-identical to the plane's absence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.hw.nic import IcmCache
from repro.sim.events import EventPriority
from repro.tenancy.registry import Tenant, TenantRegistry
from repro.transport.verbs import TenancyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SimConfig
    from repro.hw.fabric import Fabric
    from repro.hw.nic import Nic
    from repro.sim.core import Environment
    from repro.tracing.span import SpanTracer


class _NicState:
    """Per-NIC shared resources (QP table occupancy + ICM cache)."""

    __slots__ = ("qp_count", "icm")

    def __init__(self, icm_entries: int) -> None:
        self.qp_count = 0
        self.icm = IcmCache(icm_entries)


class TenancyPlane:
    """Owns the tenant registry, NIC resource state and defense loop."""

    def __init__(
        self,
        env: "Environment",
        cfg: "SimConfig",
        spans: "Optional[SpanTracer]" = None,
    ) -> None:
        self.env = env
        self.cfg = cfg
        self.spans = spans
        self.registry = TenantRegistry()
        self.fabric: Optional["Fabric"] = None
        #: federation handle (set by the builder) — quarantine triggers
        #: a shard rebalance when present
        self.federation = None
        #: telemetry hook: called with one dict per tenant per defense
        #: window ({"kind": "tenant", ...}) and per sanction action
        self.on_event: Optional[Callable[[dict], None]] = None
        #: sanction log: {"t", "kind": throttle|quarantine|release, "tenant"}
        self.actions: List[dict] = []
        self._nics: Dict[str, _NicState] = {}
        #: per-tenant cumulative cursors from the previous defense window
        self._win: Dict[int, tuple] = {}
        self._ticking = False

    # ------------------------------------------------------------------
    def install(self, fabric: "Fabric", nics=()) -> "TenancyPlane":
        """Attach to ``fabric``; NICs added later (federation leaves,
        region heads) pick the plane up via ``Fabric.attach``."""
        fabric.tenancy = self
        self.fabric = fabric
        for nic in nics:
            nic.tenancy = self
        if not self._ticking:
            self._ticking = True
            self.env.call_later(self.cfg.tenancy.defense_interval,
                                self._tick, priority=EventPriority.HIGH)
        return self

    def _state(self, nic: "Nic") -> _NicState:
        state = self._nics.get(nic.name)
        if state is None:
            state = self._nics[nic.name] = _NicState(self.cfg.tenancy.icm_entries)
        return state

    # ------------------------------------------------------------------
    # tenant management
    # ------------------------------------------------------------------
    def create_tenant(
        self,
        name: str,
        node=None,
        qp_quota: Optional[int] = None,
        rate_bps: Optional[int] = None,
    ) -> Tenant:
        """Create a tenant (quota/rate default from ``cfg.tenancy``) and
        optionally bind it as the owner of ``node``'s future QPs/MRs."""
        tn = self.cfg.tenancy
        tenant = self.registry.create(
            name,
            qp_quota=tn.default_qp_quota if qp_quota is None else qp_quota,
            rate_bps=tn.default_rate_bps if rate_bps is None else rate_bps,
        )
        if node is not None:
            self.registry.bind_node(node.name, tenant)
        return tenant

    # ------------------------------------------------------------------
    # QP lifecycle (called from QueuePair.__init__ / .destroy())
    # ------------------------------------------------------------------
    def on_qp_create(self, qp) -> None:
        tenant = getattr(qp, "tenant", None)
        if tenant is None:
            tenant = self.registry.tenant_for_node(qp.local.name)
            qp.tenant = tenant
        if tenant.quarantined and not tenant.is_system:
            tenant.qp_denied += 1
            raise TenancyError(
                f"tenant {tenant.name!r} is quarantined: QP creation denied")
        state = self._state(qp.local.nic)
        if state.qp_count >= self.cfg.tenancy.qp_table_size:
            tenant.qp_denied += 1
            raise TenancyError(
                f"{qp.local.nic.name}: QP table full "
                f"({self.cfg.tenancy.qp_table_size} entries)")
        if (not tenant.is_system and tenant.qp_quota
                and tenant.qps_active >= tenant.qp_quota):
            tenant.qp_denied += 1
            raise TenancyError(
                f"tenant {tenant.name!r} exceeds its QP quota "
                f"({tenant.qp_quota})")
        state.qp_count += 1
        tenant.qps_active += 1
        tenant.qp_creates += 1

    def on_qp_destroy(self, qp) -> None:
        tenant = getattr(qp, "tenant", None)
        state = self._nics.get(qp.local.nic.name)
        if state is not None:
            state.qp_count -= 1
            state.icm.invalidate(("qp", qp.local.name, qp.qpn))
        if tenant is not None:
            tenant.qps_active -= 1
            tenant.qp_destroys += 1

    # ------------------------------------------------------------------
    # verb-post hooks (called from the hot path in transport/verbs.py)
    # ------------------------------------------------------------------
    def police(self, qp, nbytes: int) -> int:
        """Admission decision for one posted verb.

        Returns ``-1`` to deny (quarantined owner), ``0`` to proceed
        immediately, or a positive delay in ns (rate policing: the post
        is held back until the tenant's token spacing allows it).
        """
        tenant = qp.tenant
        if tenant.quarantined and not tenant.is_system:
            tenant.denied_ops += 1
            tenant.denied_bytes += nbytes
            return -1
        tenant.posted_ops += 1
        tenant.posted_bytes += nbytes
        if tenant.is_system:
            return 0
        bps = tenant.police_bps or tenant.rate_bps
        if bps <= 0:
            return 0
        now = self.env.now
        start = now if now > tenant.allowed_at else tenant.allowed_at
        # token spacing: one verb of nbytes occupies nbytes/bps seconds
        tenant.allowed_at = start + max(1, (nbytes * 1_000_000_000 + bps - 1) // bps)
        return start - now

    def icm_touch(self, nic: "Nic", key: tuple, tenant: Tenant) -> int:
        """Charge one context-cache access; returns the refill penalty."""
        missed, evicted = self._state(nic).icm.access(key, tenant.tid)
        if not missed:
            return 0
        tenant.icm_misses += 1
        if evicted is not None and evicted[1] != tenant.tid:
            tenant.icm_evictions_inflicted += 1
        return self.cfg.tenancy.icm_miss_penalty

    # ------------------------------------------------------------------
    # defense loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        tn = self.cfg.tenancy
        now = self.env.now
        window = tn.defense_interval
        for tenant in self.registry:
            if tenant.is_system:
                continue
            cur = (tenant.posted_bytes + tenant.denied_bytes,
                   tenant.qp_creates + tenant.qp_denied,
                   tenant.icm_misses,
                   tenant.denied_ops)
            prev = self._win.get(tenant.tid, (0, 0, 0, 0))
            self._win[tenant.tid] = cur
            d_bytes = cur[0] - prev[0]
            d_creates = cur[1] - prev[1]
            d_misses = cur[2] - prev[2]
            d_denied = cur[3] - prev[3]
            # attempted byte rate over the window, in MB/s
            mbps = d_bytes * 1000 / window
            offending = (mbps > tn.offend_mbps
                         or d_creates > tn.offend_qp_creates
                         or d_misses > tn.offend_icm_misses)
            if self.on_event is not None:
                self.on_event({
                    "kind": "tenant", "t": now, "tenant": tenant.tid,
                    "name": tenant.name, "posted_mbps": mbps,
                    "qp_creates": float(d_creates),
                    "icm_misses": float(d_misses),
                    "denied": float(d_denied),
                    "offending": 1.0 if offending else 0.0,
                })
            if not tn.defense:
                continue
            if offending:
                tenant.strikes += 1
                tenant.clean = 0
                if not tenant.quarantined and tenant.police_bps == 0:
                    observed_bps = d_bytes * 1_000_000_000 // window
                    tenant.police_bps = max(
                        1, int(observed_bps * tn.throttle_factor))
                    self._sanction("throttle", tenant, now,
                                   {"police_bps": tenant.police_bps})
                if not tenant.quarantined and tenant.strikes >= tn.quarantine_after:
                    tenant.quarantined = True
                    self._sanction("quarantine", tenant, now, {})
                    if self.federation is not None:
                        self.federation.topology.rebalance()
            else:
                tenant.clean += 1
                if (tenant.clean >= tn.release_after and tenant.police_bps
                        and not tenant.quarantined):
                    # Lift the throttle but keep the strike history: a
                    # repeat offender that goes quiet under throttle and
                    # resumes on release accumulates strikes across the
                    # cycles and still reaches quarantine. Quarantine
                    # itself is sticky — an offender that earned the
                    # terminal sanction is only re-admitted explicitly
                    # (:meth:`release`, the operator path).
                    tenant.police_bps = 0
                    tenant.clean = 0
                    self._sanction("release", tenant, now, {})
        self.env.call_later(window, self._tick, priority=EventPriority.HIGH)

    def release(self, tenant: Tenant) -> None:
        """Operator re-admission: lift every sanction and clear history."""
        tenant.quarantined = False
        tenant.police_bps = 0
        tenant.strikes = 0
        tenant.clean = 0
        self._sanction("release", tenant, self.env.now, {"manual": True})

    def _sanction(self, kind: str, tenant: Tenant, now: int, attrs: dict) -> None:
        self.actions.append({"t": now, "kind": kind, "tenant": tenant.tid})
        spans = self.spans
        if spans is not None and spans.enabled:
            name = {"throttle": "tenancy:throttle",
                    "quarantine": "tenancy:evict",
                    "release": "tenancy:release"}[kind]
            span = spans.start_trace(
                name, node=tenant.name, component="tenancy",
                attrs={"tenant": tenant.tid, **attrs})
            if span is not None:
                spans.end(span)
        if self.on_event is not None:
            self.on_event({"kind": "action", "t": now, "action": kind,
                           "tenant": tenant.tid, **attrs})

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Plane-wide snapshot for the obs registry and tests."""
        return {
            "tenants": {
                t.tid: {
                    "name": t.name,
                    "qps_active": t.qps_active,
                    "qp_creates": t.qp_creates,
                    "qp_denied": t.qp_denied,
                    "posted_ops": t.posted_ops,
                    "posted_bytes": t.posted_bytes,
                    "denied_ops": t.denied_ops,
                    "denied_bytes": t.denied_bytes,
                    "icm_misses": t.icm_misses,
                    "icm_evictions_inflicted": t.icm_evictions_inflicted,
                    "police_bps": t.police_bps,
                    "quarantined": t.quarantined,
                }
                for t in self.registry
            },
            "nics": {
                name: {"qp_count": s.qp_count, "icm_hits": s.icm.hits,
                       "icm_misses": s.icm.misses,
                       "icm_evictions": s.icm.evictions}
                for name, s in sorted(self._nics.items())
            },
            "actions": list(self.actions),
        }
