"""Tenant identity: who owns which QP, MR, node, and byte.

The registry is pure bookkeeping — no simulated time, no RNG draws —
so it can never perturb determinism. Attribution is decided at object
*creation* time: each node is bound to at most one owning tenant
(``bind_node``) and every QP or MR created from that node is tagged
with its owner; untagged resources belong to the built-in **system**
tenant (tid 0), which is never policed, throttled, or quarantined —
monitoring probes, RUBiS traffic and federation control flows all ride
it unless an experiment says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple


@dataclass
class Tenant:
    """One tenant plus its live accounting and policing state."""

    tid: int
    name: str
    #: max concurrently-live QPs this tenant may hold (0 = unlimited)
    qp_quota: int = 0
    #: sustained post rate in bytes/second (0 = unpoliced)
    rate_bps: int = 0

    # -- live resource accounting ------------------------------------
    qps_active: int = 0
    qp_creates: int = 0
    qp_destroys: int = 0
    qp_denied: int = 0
    posted_ops: int = 0
    posted_bytes: int = 0
    denied_ops: int = 0
    denied_bytes: int = 0
    icm_misses: int = 0
    #: entries this tenant evicted that belonged to *other* tenants
    icm_evictions_inflicted: int = 0

    # -- policing state (token spacing on the post path) -------------
    #: absolute time the next post may enter the NIC
    allowed_at: int = 0
    #: defense-imposed rate cap (0 = none; overrides rate_bps when set)
    police_bps: int = 0

    # -- defense state -----------------------------------------------
    quarantined: bool = False
    strikes: int = 0
    clean: int = 0

    @property
    def is_system(self) -> bool:
        return self.tid == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tenant {self.tid}:{self.name} qps={self.qps_active}>"


class TenantRegistry:
    """Maps tenant ids to :class:`Tenant` and resources to owners."""

    def __init__(self) -> None:
        self._tenants: Dict[int, Tenant] = {}
        self._by_name: Dict[str, Tenant] = {}
        self._node_owners: Dict[str, Tenant] = {}
        self._mr_owners: Dict[Tuple[str, int], Tenant] = {}
        self.system = self.create("system")
        assert self.system.tid == 0

    # ------------------------------------------------------------------
    def create(self, name: str, qp_quota: int = 0, rate_bps: int = 0) -> Tenant:
        if name in self._by_name:
            raise ValueError(f"tenant {name!r} already exists")
        tenant = Tenant(tid=len(self._tenants), name=name,
                        qp_quota=qp_quota, rate_bps=rate_bps)
        self._tenants[tenant.tid] = tenant
        self._by_name[name] = tenant
        return tenant

    def get(self, tid: int) -> Tenant:
        return self._tenants[tid]

    def by_name(self, name: str) -> Tenant:
        return self._by_name[name]

    def __iter__(self) -> Iterator[Tenant]:
        return iter(sorted(self._tenants.values(), key=lambda t: t.tid))

    def __len__(self) -> int:
        return len(self._tenants)

    # ------------------------------------------------------------------
    # attribution
    # ------------------------------------------------------------------
    def bind_node(self, node_name: str, tenant: Tenant) -> None:
        """Every QP/MR subsequently created from ``node_name`` is owned
        by ``tenant`` (unless explicitly re-tagged)."""
        self._node_owners[node_name] = tenant

    def tenant_for_node(self, node_name: str) -> Tenant:
        return self._node_owners.get(node_name, self.system)

    def tag_qp(self, qp, tenant: Tenant) -> None:
        qp.tenant = tenant

    def tag_mr(self, node_name: str, rkey: int, tenant: Tenant) -> None:
        self._mr_owners[(node_name, rkey)] = tenant

    def tenant_for_mr(self, node_name: str, rkey: int) -> Optional[Tenant]:
        return self._mr_owners.get((node_name, rkey))
