"""Load-balancing policies.

The paper evaluates its schemes through "a popular algorithm used by IBM
WebSphere": per-server load indices (CPU, memory, network, connections)
are combined with configured weights into a single score, and requests
go to the least-loaded server (§5.2.1). The extended variant adds the
pending-interrupt pressure that only e-RDMA-Sync reports.

The balancer consults the :class:`~repro.monitoring.frontend.FrontendMonitor`
cache — so its quality is exactly the quality (freshness, accuracy) of
the monitoring scheme feeding it, which is the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.monitoring.loadinfo import LoadInfo


@dataclass
class LoadWeights:
    """WebSphere-style index weights."""

    cpu: float = 0.35
    runq: float = 0.25
    connections: float = 0.25
    memory: float = 0.05
    #: network-rate index (MB/s normalised against NETWORK_FULL_MBPS)
    network: float = 0.10
    #: weight of interrupt pressure (only meaningful with e-RDMA-Sync)
    irq: float = 0.25
    #: dispatcher-local in-flight term. Default 0: any positive weight
    #: moves the dispatcher toward join-shortest-queue, which needs no
    #: monitoring at all and erases the paper's comparison (see the
    #: lb-weights ablation). Near-equal scores are instead broken by
    #: round-robin rotation, as the WebSphere advisor does.
    inflight: float = 0.0


class LeastLoadedBalancer:
    """Weighted least-loaded selection over monitored load info.

    Requests are spread in proportion to each server's *capacity
    headroom* ``1 − score`` (IBM's dispatcher computes per-server weights
    from the load indices and distributes weighted-round-robin — "the
    least loaded servers are chosen", plural). Winner-take-all argmin
    would send every request of a polling window to one server; the
    proportional spread is what makes the *accuracy* of the monitored
    scores, not just their ordering, matter.
    """

    #: headroom floor so no server is ever completely starved of probes
    MIN_WEIGHT = 0.02

    def __init__(
        self,
        num_backends: int,
        weights: Optional[LoadWeights] = None,
        use_irq_pressure: bool = False,
        rng=None,
    ) -> None:
        if num_backends < 1:
            raise ValueError("need at least one back-end")
        self.num_backends = num_backends
        self.weights = weights if weights is not None else LoadWeights()
        self.use_irq_pressure = use_irq_pressure
        import numpy as np

        self.rng = rng if rng is not None else np.random.Generator(np.random.PCG64(0x10AD))
        self._rr = 0
        #: per-backend in-flight counter maintained by the dispatcher as a
        #: fallback signal before the first monitoring report arrives
        self.assigned: List[int] = [0] * num_backends
        #: span tracer + node label, wired by deploy_rubis_cluster; the
        #: dispatcher hands us the request via set_request so the pick
        #: decision can be recorded under the request's trace
        self.tracer = None
        self.trace_node = ""
        self._trace_request = None

    # ------------------------------------------------------------------
    def set_request(self, request) -> None:
        """Dispatcher hook: the request the next ``choose`` decides for."""
        self._trace_request = request

    def _trace_pick(self, choice: int) -> None:
        request, self._trace_request = self._trace_request, None
        tracer = self.tracer
        if (tracer is None or not tracer.enabled or request is None
                or request.trace is None):
            return
        # The decision is instantaneous in sim time: a point span.
        now = tracer.now
        tracer.record("lb.pick", request.trace, now, now,
                      node=self.trace_node, component="balancer",
                      attrs={"choice": choice})

    # ------------------------------------------------------------------
    #: network rate (MB/s) treated as a fully-loaded link for scoring
    NETWORK_FULL_MBPS = 300.0

    def score(self, info: LoadInfo) -> float:
        """The WebSphere average-load score (lower = less loaded).

        The four indices the paper names — CPU, memory, network and
        connection load — plus the run-queue EMA as the fine-grained CPU
        pressure signal; e-RDMA-Sync adds interrupt pressure.
        """
        w = self.weights
        score = (
            w.cpu * info.cpu_util
            + w.runq * min(1.0, info.runq_load / 16.0)
            + w.connections * min(1.0, info.gauges.get("connections", 0.0) / 32.0)
            + w.memory * info.mem_util
            + w.network * min(1.0, info.net_rate_mbps / self.NETWORK_FULL_MBPS)
        )
        if self.use_irq_pressure:
            score += w.irq * min(1.0, info.irq_pressure / 8.0)
        return score

    def server_weights(self, loads: Dict[int, LoadInfo]) -> List[float]:
        """Per-server headroom weights derived from the monitor cache."""
        weights = []
        for i in range(self.num_backends):
            info = loads.get(i)
            score = 0.0 if info is None else self.score(info)
            score += self.weights.inflight * min(1.0, self.assigned[i] / 16.0)
            weights.append(max(self.MIN_WEIGHT, 1.0 - score))
        return weights

    def choose(self, loads: Dict[int, LoadInfo],
               exclude: Optional[Sequence[int]] = None) -> int:
        """Pick a back-end, weighted by monitored capacity headroom.

        With no (or uniformly stale) data every weight ties and the
        spread is uniform; with *wrong* data the proportions are wrong —
        the load the paper's fine-grained monitoring removes.

        ``exclude`` quarantines back-ends (health failover): their weight
        is zeroed so no request lands there. Excluding *everything* falls
        back to the full set — a wrong pick beats no pick. The default
        (no exclusion) draws from the RNG exactly as before, so healthy
        runs stay bit-identical.
        """
        excluded = set(exclude) if exclude else set()
        if len(excluded) >= self.num_backends:
            excluded = set()
        if not loads:
            self._rr = (self._rr + 1) % self.num_backends
            while self._rr in excluded:
                self._rr = (self._rr + 1) % self.num_backends
            self._trace_pick(self._rr)
            return self._rr
        weights = self.server_weights(loads)
        for i in excluded:
            if 0 <= i < self.num_backends:
                weights[i] = 0.0
        total = sum(weights)
        pick = self.rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if w > 0.0 and pick <= acc:
                self._trace_pick(i)
                return i
        # fp guard: last non-excluded backend
        for i in range(self.num_backends - 1, -1, -1):  # pragma: no cover
            if i not in excluded:
                return i
        return self.num_backends - 1  # pragma: no cover

    def note_assigned(self, backend: int) -> None:
        self.assigned[backend] += 1

    def note_completed(self, backend: int) -> None:
        if 0 <= backend < self.num_backends:
            self.assigned[backend] = max(0, self.assigned[backend] - 1)


class TwoLevelBalancer(LeastLoadedBalancer):
    """Shard-then-node selection over a federated monitoring view.

    Stage 1 picks a shard in proportion to its *aggregate* headroom
    (the sum of its members' headroom weights); stage 2 picks a node
    within the shard in proportion to individual headroom. The product
    of the two proportional draws preserves the flat balancer's
    marginal distribution over nodes, while the decision consults the
    current :class:`~repro.federation.topology.ShardTopology` — so
    quarantine-driven rebalances immediately reshape routing.
    """

    def __init__(
        self,
        topology,
        weights: Optional[LoadWeights] = None,
        use_irq_pressure: bool = False,
        rng=None,
    ) -> None:
        super().__init__(topology.num_backends, weights=weights,
                         use_irq_pressure=use_irq_pressure, rng=rng)
        self.topology = topology
        #: stage-1 pick counts per shard (diagnostics)
        self.shard_picks: List[int] = [0] * topology.num_shards

    def choose(self, loads: Dict[int, LoadInfo],
               exclude: Optional[Sequence[int]] = None) -> int:
        excluded = set(exclude) if exclude else set()
        if len(excluded) >= self.num_backends:
            excluded = set()
        if not loads:
            return super().choose(loads, exclude)
        weights = self.server_weights(loads)
        for i in excluded:
            if 0 <= i < self.num_backends:
                weights[i] = 0.0
        shard_members = [
            [g for g in self.topology.members(j) if weights[g] > 0.0]
            for j in range(self.topology.num_shards)
        ]
        shard_weights = [
            sum(weights[g] for g in members) for members in shard_members
        ]
        total = sum(shard_weights)
        if total <= 0.0:
            # every routable member excluded/empty: flat fallback
            return super().choose(loads, exclude)
        pick = self.rng.random() * total
        shard = self.topology.num_shards - 1
        acc = 0.0
        for j, w in enumerate(shard_weights):
            acc += w
            if w > 0.0 and pick <= acc:
                shard = j
                break
        self.shard_picks[shard] += 1
        members = shard_members[shard]
        subtotal = sum(weights[g] for g in members)
        pick = self.rng.random() * subtotal
        acc = 0.0
        for g in members:
            acc += weights[g]
            if pick <= acc:
                self._trace_pick(g)
                return g
        choice = members[-1]  # pragma: no cover - fp guard
        self._trace_pick(choice)
        return choice


class RoundRobinBalancer:
    """Monitoring-free baseline: strict rotation."""

    def __init__(self, num_backends: int) -> None:
        if num_backends < 1:
            raise ValueError("need at least one back-end")
        self.num_backends = num_backends
        self._next = 0

    def score(self, info: LoadInfo) -> float:  # pragma: no cover - interface parity
        return 0.0

    def choose(self, loads: Dict[int, LoadInfo],
               exclude: Optional[Sequence[int]] = None) -> int:
        chosen = self._next
        if exclude:
            excluded = set(exclude)
            if len(excluded) < self.num_backends:
                while chosen in excluded:
                    chosen = (chosen + 1) % self.num_backends
        self._next = (chosen + 1) % self.num_backends
        return chosen

    def note_assigned(self, backend: int) -> None:
        pass

    def note_completed(self, backend: int) -> None:
        pass
