"""Database stage cost model.

The paper's back-ends run MySQL next to Apache/PHP; for the evaluation
what matters is that DB-heavy queries consume more back-end CPU and
occasionally stall on buffer-pool misses. The stage charges the
request's ``db_cpu`` demand (system time — MySQL is another process, but
it contends for the same CPUs, so charging the worker keeps the node's
total demand exact) plus a probabilistic disk stall.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.sim.units import MILLISECOND
from repro.tracing.span import tracer_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext
    from repro.server.request import Request


class DatabaseStage:
    """Per-back-end database cost stage."""

    #: probability a query misses the buffer pool and stalls on disk
    MISS_PROBABILITY = 0.03
    #: disk stall duration on a miss
    MISS_STALL = 4 * MILLISECOND

    def __init__(self, node: "Node", rng: np.random.Generator) -> None:
        self.node = node
        self.rng = rng
        self.queries = 0
        self.misses = 0

    def execute(self, k: "TaskContext", request: "Request", ctx=None) -> Generator:
        """Run the request's DB work in the calling worker's context."""
        self.queries += 1
        tracer = tracer_for(self.node, ctx)
        span = None
        if tracer is not None:
            span = tracer.start_span("db", ctx, node=self.node.name,
                                     component="db",
                                     attrs={"db_cpu": request.db_cpu})
        miss = False
        if request.db_cpu > 0:
            yield k.compute(request.db_cpu, mode="sys")
            if self.rng.random() < self.MISS_PROBABILITY:
                self.misses += 1
                miss = True
                yield k.sleep(self.MISS_STALL)
        if tracer is not None:
            tracer.end(span, attrs={"miss": miss})
        return None
