"""Request records and response-time bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Request:
    """One client request travelling client → dispatcher → back-end → client."""

    rid: int
    #: workload family: "rubis" or "zipf"
    workload: str
    #: query class name (RUBiS) or document id (Zipf)
    query: str
    #: CPU demand at the web tier (PHP), ns
    web_cpu: int
    #: CPU demand at the DB stage, ns
    db_cpu: int
    #: document id for cache-modelled content (None for pure dynamic)
    doc_id: Optional[int] = None
    #: response payload size, bytes
    response_bytes: int = 2048
    #: where the back-end should deliver the response
    reply_node: Any = None
    reply_store: Any = None
    # -- timestamps (ns) ----------------------------------------------------
    created_at: int = 0
    dispatched_at: int = 0
    started_at: int = 0
    completed_at: int = 0
    #: index of the chosen back-end (-1 = rejected by admission control)
    backend: int = -1
    rejected: bool = False
    #: client deadline (ns); 0 = none. A response arriving later counts
    #: as a timeout, not a completion (the revenue-loss case of §1).
    deadline: int = 0
    timed_out: bool = False
    # -- tracing (None unless the span plane sampled this request) ----------
    #: root Span of the request's trace, created by the client
    trace: Any = None

    @property
    def response_time(self) -> int:
        """Client-observed response time (valid once completed)."""
        return self.completed_at - self.created_at

    @property
    def queue_time(self) -> int:
        """Time between dispatch and service start at the back-end."""
        return self.started_at - self.dispatched_at


@dataclass
class RequestStats:
    """Aggregated outcome of a workload run."""

    completed: List[Request] = field(default_factory=list)
    rejected_count: int = 0
    timeout_count: int = 0
    #: called with every recorded request — rejected and timed-out ones
    #: included (a :class:`~repro.workloads.traces.TraceRecorder` hooks
    #: in here to capture the full arrival stream); one attribute check
    #: when unset, so unobserved runs are untouched
    observer: Optional[Any] = None

    def record(self, request: Request) -> None:
        if request.rejected:
            self.rejected_count += 1
        elif request.deadline and request.response_time > request.deadline:
            request.timed_out = True
            self.timeout_count += 1
        else:
            self.completed.append(request)
        if self.observer is not None:
            self.observer(request)

    # ------------------------------------------------------------------
    def count(self) -> int:
        return len(self.completed)

    def response_times(self, query: Optional[str] = None) -> List[int]:
        return [
            r.response_time
            for r in self.completed
            if query is None or r.query == query
        ]

    def mean_response(self, query: Optional[str] = None) -> float:
        times = self.response_times(query)
        return sum(times) / len(times) if times else 0.0

    def max_response(self, query: Optional[str] = None) -> int:
        times = self.response_times(query)
        return max(times) if times else 0

    def throughput(self, duration_ns: int) -> float:
        """Completed (within-deadline) requests per second."""
        return self.count() / (duration_ns / 1e9) if duration_ns > 0 else 0.0

    @property
    def timeout_rate(self) -> float:
        total = len(self.completed) + self.timeout_count
        return self.timeout_count / total if total else 0.0

    def per_backend_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for r in self.completed:
            counts[r.backend] = counts.get(r.backend, 0) + 1
        return counts

    def by_query(self) -> Dict[str, List[int]]:
        out: Dict[str, List[int]] = {}
        for r in self.completed:
            out.setdefault(r.query, []).append(r.response_time)
        return out
