"""Back-end web server: an Apache-prefork-style worker pool.

Each back-end runs ``workers_per_server`` worker tasks pulling requests
from the dispatcher connection. A worker:

1. bumps the node's ``connections`` gauge (kernel-visible, so every
   monitoring scheme can report it — the WebSphere algorithm's
   "connection load" index),
2. burns the request's PHP CPU demand through the kernel scheduler,
3. runs the DB stage,
4. for document requests, consults the node's LRU document cache
   (miss → disk stall — the heterogeneity that makes load balancing
   matter at low Zipf α),
5. pays the TX path to send the response straight back to the client.

All CPU consumption flows through the same scheduler the monitoring
daemons compete in, so monitoring perturbation (the paper's Fig 4/8)
falls out of the model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.server.database import DatabaseStage
from repro.server.request import Request
from repro.sim.resources import Resource, Store
from repro.tracing.span import tracer_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import Task


class LruDocCache:
    """Fixed-size LRU cache of document ids."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, doc_id: int) -> bool:
        """Touch ``doc_id``; returns True on hit."""
        if doc_id in self._entries:
            self._entries.move_to_end(doc_id)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[doc_id] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def __len__(self) -> int:
        return len(self._entries)


class BackendServer:
    """The server processes hosted on one back-end node."""

    def __init__(self, node: "Node", rng: np.random.Generator, workers: Optional[int] = None) -> None:
        self.node = node
        cfg = node.cfg.server
        self.workers = workers if workers is not None else cfg.workers_per_server
        #: requests forwarded by the dispatcher land here (the persistent
        #: dispatcher→server connection's receive buffer)
        self.request_queue: Store = Store(node.env, name=f"reqq:{node.name}")
        self.doc_cache = LruDocCache(cfg.doc_cache_entries)
        #: one disk spindle per server: cache misses queue behind each
        #: other, so a burst of misses makes a server transiently awful —
        #: the placement-sensitive heterogeneity of the Zipf workload
        self.disk = Resource(node.env, capacity=1, name=f"disk:{node.name}")
        self.db = DatabaseStage(node, rng)
        self.served = 0
        self._tasks: List["Task"] = []
        self._stopped = False
        node.gauges.setdefault("connections", 0)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool."""
        if self._tasks:
            raise RuntimeError("server already started")
        for w in range(self.workers):
            self._tasks.append(
                self.node.spawn(f"httpd:{self.node.name}:{w}", self._worker_body,
                                rss_bytes=8 * 1024 * 1024)  # Apache+PHP child
            )

    def stop(self) -> None:
        self._stopped = True

    @property
    def active_connections(self) -> int:
        return int(self.node.gauges.get("connections", 0))

    # ------------------------------------------------------------------
    def _worker_body(self, k):
        node = self.node
        scfg = node.cfg.server
        while not self._stopped:
            request: Request
            request, _nbytes = yield k.wait(self.request_queue.get())
            node.gauges["connections"] = node.gauges.get("connections", 0) + 1
            request.started_at = k.now
            tracer = tracer_for(node, request.trace)
            svc = None
            if tracer is not None:
                # The queue span is retroactive: both boundaries are
                # timestamps the request already carries.
                tracer.record("queue", request.trace,
                              request.dispatched_at, k.now,
                              node=node.name, component="httpd")
                svc = tracer.start_span("service", request.trace,
                                        node=node.name, component="httpd",
                                        attrs={"query": request.query})
            # Accept + parse overhead.
            yield k.syscall(2_000)
            try:
                if request.web_cpu > 0:
                    t_web = k.now
                    yield k.compute(request.web_cpu, mode="user")
                    if tracer is not None:
                        tracer.record("web", svc, t_web, k.now,
                                      node=node.name, component="httpd")
                if request.db_cpu > 0:
                    yield from self.db.execute(k, request, ctx=svc)
                if request.doc_id is not None:
                    t_doc = k.now
                    hit = self.doc_cache.access(request.doc_id)
                    if hit:
                        yield k.compute(scfg.static_serve, mode="user")
                    else:
                        with self.disk.request() as disk_req:
                            yield k.wait(disk_req)
                            yield k.sleep(scfg.disk_fetch)
                        yield k.compute(scfg.static_serve, mode="user")
                    if tracer is not None:
                        tracer.record("doc", svc, t_doc, k.now,
                                      node=node.name, component="httpd",
                                      attrs={"hit": hit})
                # Send the response straight back to the client node.
                request.completed_at_backend = k.now  # type: ignore[attr-defined]
                if request.reply_store is not None and request.reply_node is not None:
                    t_tx = k.now
                    yield from node.netstack.send(
                        k, request.reply_node, request.reply_store,
                        request, request.response_bytes,
                    )
                    if tracer is not None:
                        tracer.record("respond", svc, t_tx, k.now,
                                      node=node.name, component="httpd")
                self.served += 1
                if tracer is not None:
                    tracer.end(svc)
            finally:
                node.gauges["connections"] = node.gauges.get("connections", 0) - 1
