"""Front-end request dispatcher.

Runs on the front-end node. Client requests arrive on the dispatcher's
socket buffer; for each one the dispatcher consults the admission
controller and the load balancer (both fed by the monitoring scheme's
cache) and forwards the request to the chosen back-end over a persistent
connection. Dispatch consumes real front-end CPU — receive syscalls,
the balancing computation, the forward TX path — but the front-end is
deliberately under-loaded, as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.server.request import Request, RequestStats
from repro.server.webserver import BackendServer
from repro.sim.resources import Store
from repro.tracing.span import STATUS_ERROR, STATUS_OK, tracer_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import Task
    from repro.monitoring.frontend import FrontendMonitor


class Dispatcher:
    """The front-end request router."""

    #: CPU cost of one balancing decision
    DECISION_COST = 2_000  # 2 us

    def __init__(
        self,
        frontend: "Node",
        servers: List[BackendServer],
        balancer,
        monitor: Optional["FrontendMonitor"] = None,
        admission=None,
        health=None,
        telemetry=None,
        num_tasks: int = 2,
        request_bytes: int = 512,
    ) -> None:
        """``health``: optional
        :class:`~repro.monitoring.heartbeat.HeartbeatMonitor`; back-ends
        it marks unhealthy are excluded from routing until they recover.

        ``telemetry``: optional
        :class:`~repro.telemetry.pipeline.TelemetryPipeline`; back-ends
        with an active critical shedding alert (overload,
        heartbeat-miss) are routed around while at least one clean
        back-end remains — opt-in alert-aware routing.
        """
        if not servers:
            raise ValueError("dispatcher needs at least one back-end server")
        self.frontend = frontend
        self.servers = servers
        self.balancer = balancer
        self.monitor = monitor
        self.admission = admission
        self.health = health
        self.telemetry = telemetry
        self.rerouted_by_alert = 0
        self.rerouted_by_health = 0
        self.num_tasks = num_tasks
        self.request_bytes = request_bytes
        #: client requests land here (the dispatcher's listening socket)
        self.inbox: Store = Store(frontend.env, name="dispatcher-inbox")
        self.stats = RequestStats()
        self.forwarded = 0
        #: monitoring-view epoch the latest routing decision consulted
        #: (None until a federated / epoch-stamped monitor reports)
        self.last_view_epoch: Optional[int] = None
        self._tasks: List["Task"] = []
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._tasks:
            raise RuntimeError("dispatcher already started")
        for i in range(self.num_tasks):
            self._tasks.append(
                self.frontend.spawn(f"dispatcher:{i}", self._body)
            )

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _loads(self) -> Dict[int, "object"]:
        """The monitoring cache consulted for the next decision.

        Duck-typed: a flat :class:`FrontendMonitor` and a federated
        :class:`~repro.federation.aggregator.FederatedMonitor` both
        expose ``latest`` (global back-end index → LoadInfo) and an
        ``epoch`` stamp, which is recorded for view-age diagnostics.
        """
        if self.monitor is None:
            return {}
        epoch = getattr(self.monitor, "epoch", None)
        if epoch is not None:
            self.last_view_epoch = epoch
        return self.monitor.latest

    def _body(self, k):
        while not self._stopped:
            request: Request
            request, _nbytes = yield k.wait(self.inbox.get())
            tracer = tracer_for(self.frontend, request.trace)
            dspan = None
            if tracer is not None:
                dspan = tracer.start_span(
                    "dispatch", request.trace,
                    node=self.frontend.name, component="dispatcher")
            yield k.syscall(k.copy_cost(self.request_bytes))
            loads = self._loads()
            if self.admission is not None and not self.admission.admit(loads, ctx=dspan):
                request.rejected = True
                request.completed_at = k.now
                self.stats.record(request)
                # Tell the client immediately (tiny error response).
                if request.reply_store is not None:
                    yield from self.frontend.netstack.send(
                        k, request.reply_node, request.reply_store, request, 128
                    )
                if tracer is not None:
                    tracer.end(dspan, status=STATUS_ERROR,
                               attrs={"rejected": True})
                continue
            yield k.compute(self.DECISION_COST)
            set_request = getattr(self.balancer, "set_request", None)
            if set_request is not None:
                set_request(request)
            choice = self.balancer.choose(loads)
            if self.health is not None:
                healthy = self.health.healthy_backends()
                if healthy and choice not in healthy:
                    # Re-pick among live servers only: quarantined
                    # back-ends are excluded until Node.recover() lets
                    # the heartbeat re-mark them ALIVE.
                    quarantined = self.health.quarantined()
                    choice = self.balancer.choose(loads, exclude=quarantined)
                    if choice not in healthy:
                        choice = healthy[self.forwarded % len(healthy)]
                    self.rerouted_by_health += 1
            if self.telemetry is not None:
                shed = self.telemetry.engine.shed_backends()
                if shed and choice in shed and len(shed) < len(self.servers):
                    clean_loads = {
                        i: v for i, v in loads.items() if i not in shed
                    }
                    choice = self.balancer.choose(clean_loads)
                    if choice in shed:
                        clean = [i for i in range(len(self.servers))
                                 if i not in shed]
                        choice = clean[self.forwarded % len(clean)]
                    self.rerouted_by_alert += 1
            request.backend = choice
            request.dispatched_at = k.now
            self.balancer.note_assigned(choice)
            self.forwarded += 1
            server = self.servers[choice]
            yield from self.frontend.netstack.send(
                k, server.node, server.request_queue, request, self.request_bytes
            )
            if tracer is not None:
                tracer.end(dspan, attrs={"backend": choice})

    # ------------------------------------------------------------------
    def on_response(self, request: Request) -> None:
        """Client-side completion hook: records stats and frees the slot."""
        request.completed_at = self.frontend.env.now
        self.balancer.note_completed(request.backend)
        self.stats.record(request)
        if request.trace is not None:
            tracer = getattr(self.frontend, "span_tracer", None)
            if tracer is not None and tracer.enabled:
                status = (STATUS_ERROR if request.rejected or request.timed_out
                          else STATUS_OK)
                tracer.end(request.trace, status=status,
                           attrs={"backend": request.backend})
            request.trace = None  # the trace is closed; guard re-delivery
