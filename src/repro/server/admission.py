"""Admission control driven by monitored load (§1, §5.2.3).

The paper's motivating example: systems like Amazon "rely on the cluster
resource usage information for admission control of requests". The
controller admits a request when the monitor's view says capacity
remains; with coarse or stale monitoring it must either reject work the
cluster could have served or admit work that overloads it — both cost
admitted-request throughput (Fig 9's up-to-25 % claim).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.monitoring.loadinfo import LoadInfo


class AdmissionController:
    """Threshold admission over the monitor cache."""

    def __init__(
        self,
        num_backends: int,
        max_score: float = 0.85,
        balancer=None,
    ) -> None:
        """``max_score``: cluster-average score above which requests are
        rejected. ``balancer``: scoring delegate (LeastLoadedBalancer)."""
        self.num_backends = num_backends
        self.max_score = max_score
        self.balancer = balancer
        self.admitted = 0
        self.rejected = 0

    def admit(self, loads: Dict[int, LoadInfo]) -> bool:
        """Decide on one request given the current monitor cache."""
        if self.balancer is None or not loads:
            self.admitted += 1
            return True
        scores = [
            self.balancer.score(info)
            for info in loads.values()
        ]
        mean_score = sum(scores) / len(scores) if scores else 0.0
        if mean_score > self.max_score:
            self.rejected += 1
            return False
        self.admitted += 1
        return True

    @property
    def rejection_rate(self) -> float:
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0
