"""Admission control driven by monitored load (§1, §5.2.3).

The paper's motivating example: systems like Amazon "rely on the cluster
resource usage information for admission control of requests". The
controller admits a request when the monitor's view says capacity
remains; with coarse or stale monitoring it must either reject work the
cluster could have served or admit work that overloads it — both cost
admitted-request throughput (Fig 9's up-to-25 % claim).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.monitoring.loadinfo import LoadInfo


class AdmissionController:
    """Threshold admission over the monitor cache."""

    def __init__(
        self,
        num_backends: int,
        max_score: float = 0.85,
        balancer=None,
        alert_engine=None,
        shed_fraction: float = 0.5,
    ) -> None:
        """``max_score``: cluster-average score above which requests are
        rejected. ``balancer``: scoring delegate (LeastLoadedBalancer).

        ``alert_engine``: optional
        :class:`~repro.telemetry.alerts.AlertEngine` enabling alert-aware
        shedding — requests are also rejected while at least
        ``shed_fraction`` of the back-ends carry an active critical
        alert from a shedding rule (overload, heartbeat-miss). Unlike
        the mean-score test, this reacts to *trend* conditions the
        telemetry plane detects, not just the freshest sample."""
        self.num_backends = num_backends
        self.max_score = max_score
        self.balancer = balancer
        self.alert_engine = alert_engine
        if not 0.0 < shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")
        self.shed_fraction = shed_fraction
        self.admitted = 0
        self.rejected = 0
        #: rejections attributed to active alerts (subset of ``rejected``)
        self.shed_by_alert = 0
        #: span tracer + node label (wired by deploy_rubis_cluster)
        self.tracer = None
        self.trace_node = ""

    def admit(self, loads: Dict[int, LoadInfo], ctx=None) -> bool:
        """Decide on one request given the current monitor cache."""
        decision = self._decide(loads)
        if ctx is not None and self.tracer is not None and self.tracer.enabled:
            # Point span: the decision consumes no simulated time itself
            # (the dispatcher charges DECISION_COST separately).
            now = self.tracer.now
            self.tracer.record("admission", ctx, now, now,
                               node=self.trace_node, component="admission",
                               attrs={"admitted": decision})
        return decision

    def _decide(self, loads: Dict[int, LoadInfo]) -> bool:
        if self.alert_engine is not None:
            shed = self.alert_engine.shed_backends()
            if len(shed) >= self.shed_fraction * self.num_backends:
                self.rejected += 1
                self.shed_by_alert += 1
                return False
        if self.balancer is None or not loads:
            self.admitted += 1
            return True
        scores = [
            self.balancer.score(info)
            for info in loads.values()
        ]
        mean_score = sum(scores) / len(scores) if scores else 0.0
        if mean_score > self.max_score:
            self.rejected += 1
            return False
        self.admitted += 1
        return True

    @property
    def rejection_rate(self) -> float:
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0
