"""Dynamic server reconfiguration (the paper's §7 future work).

"We plan to extend the knowledge gained in this study to implement a
full-fledged reconfiguration module coupled with accurate resource
monitoring." — this module is that extension, in the style of the
authors' earlier shared-data-center work ([8, 9] in the paper).

Two services share the cluster; each back-end is assigned to one pool.
The :class:`ReconfigurationManager` watches the per-pool load through a
monitoring scheme and migrates a server from the under-loaded pool to
the overloaded one when the imbalance persists. Reaction time — and
therefore how much load a burst dumps on an overwhelmed pool — is
bounded below by the monitoring granularity and staleness, so the
quality of the monitoring scheme is directly measurable as
reconfiguration lag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.monitoring.loadinfo import LoadInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.monitoring.base import MonitoringScheme


def load_score(info) -> float:
    """One back-end's scalar load: run-queue pressure blended with CPU.

    The formula the pool rebalancer has always used, shared with the
    elastic scaler so both reconfiguration policies agree on what
    "loaded" means. ``info`` only needs ``runq_load`` and ``cpu_util``
    (duck-typed — coarse Ganglia-derived views qualify too).
    """
    return min(1.0, info.runq_load / 8.0) * 0.5 + info.cpu_util * 0.5


@dataclass
class ReconfigEvent:
    """One pool-membership change."""

    time: int
    backend: int
    from_pool: str
    to_pool: str
    trigger_load: float


class ReconfigurationManager:
    """Threshold-based pool rebalancer driven by monitored load."""

    def __init__(
        self,
        scheme: "MonitoringScheme",
        pools: Dict[str, List[int]],
        interval: Optional[int] = None,
        high_water: float = 0.75,
        low_water: float = 0.35,
        min_pool_size: int = 1,
        cooldown: int = 0,
    ) -> None:
        """``pools``: initial pool name → list of backend indices.

        A backend migrates from the pool whose mean load is below
        ``low_water`` to one above ``high_water``; ``cooldown`` ns must
        elapse between consecutive migrations.
        """
        if not pools or any(not members for members in pools.values()):
            raise ValueError("every pool needs at least one backend")
        seen: set = set()
        for members in pools.values():
            for b in members:
                if b in seen:
                    raise ValueError(f"backend {b} assigned to two pools")
                seen.add(b)
        if not 0 <= low_water < high_water:
            raise ValueError("need 0 <= low_water < high_water")
        self.scheme = scheme
        self.pools: Dict[str, List[int]] = {k: list(v) for k, v in pools.items()}
        self.interval = interval if interval is not None else scheme.interval
        self.high_water = high_water
        self.low_water = low_water
        self.min_pool_size = min_pool_size
        self.cooldown = cooldown
        self.events: List[ReconfigEvent] = []
        self._last_move = -(10**18)
        self._stopped = False
        scheme.frontend.spawn("reconfig-manager", self._body)

    # ------------------------------------------------------------------
    def pool_of(self, backend: int) -> Optional[str]:
        for name, members in self.pools.items():
            if backend in members:
                return name
        return None

    def members(self, pool: str) -> List[int]:
        return list(self.pools[pool])

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _pool_load(self, infos: Dict[int, LoadInfo], pool: str) -> float:
        members = self.pools[pool]
        loads = [load_score(infos[i]) for i in members if i in infos]
        return sum(loads) / len(loads) if loads else 0.0

    def _body(self, k):
        while not self._stopped:
            infos = yield from self.scheme.query_all(k)
            self._maybe_migrate(k.now, infos)
            yield k.sleep(self.interval)

    def _maybe_migrate(self, now: int, infos: Dict[int, LoadInfo]) -> None:
        if now - self._last_move < self.cooldown:
            return
        loads = {name: self._pool_load(infos, name) for name in self.pools}
        hot = max(loads, key=lambda n: loads[n])
        cold = min(loads, key=lambda n: loads[n])
        if hot == cold:
            return
        if loads[hot] < self.high_water or loads[cold] > self.low_water:
            return
        if len(self.pools[cold]) <= self.min_pool_size:
            return
        # Move the least-loaded member of the cold pool to the hot pool.
        donor = min(
            self.pools[cold],
            key=lambda i: infos[i].cpu_util if i in infos else 0.0,
        )
        self.pools[cold].remove(donor)
        self.pools[hot].append(donor)
        self._last_move = now
        self.events.append(
            ReconfigEvent(now, donor, cold, hot, loads[hot])
        )


@dataclass
class ScaleEvent:
    """One elastic membership change."""

    time: int
    direction: str  # "up" | "down"
    backend: int
    mean_load: float
    active_after: int


class ElasticScaler:
    """Watermark-driven elastic sizing of the serving set.

    The §7 reconfiguration vision, applied to capacity instead of pool
    membership: a reserve of **parked** back-ends is held out of
    dispatch, and the scaler releases them (scale *up*) or returns the
    most recently added server to the reserve (scale *down*) as the
    mean load of the active set crosses the watermarks. Reaction time
    is bounded below by the staleness of the driving view, so the same
    flash crowd measurably separates fine-grained RDMA monitoring from
    gmetad-grade polling (``experiments/elastic_replay.py``).

    ``view`` is duck-typed: anything with a ``latest`` mapping of
    global back-end index → an object with ``runq_load``/``cpu_util``
    qualifies — the flat :class:`~repro.monitoring.frontend.FrontendMonitor`,
    a federated root, or a :class:`~repro.ganglia.view.GangliaLoadView`.

    The scaler implements the dispatcher's health contract
    (``healthy_backends()`` / ``quarantined()``), chaining an optional
    ``health`` provider (the heartbeat monitor), so parked back-ends
    are excluded from routing through the existing recover/quarantine
    machinery rather than a parallel one. With a ``federation``
    deployed, every membership change quarantines/releases the
    back-end in the shard topology — triggering its ``rebalance`` so
    leaves stop (or resume) polling it. Each change emits a
    ``scale:up``/``scale:down`` span and an observer event (telemetry's
    ``scaler.*`` series and the obs collectors hook in there).
    """

    def __init__(
        self,
        sim: "ClusterSim",
        view,
        interval: int,
        high_water: float = 0.75,
        low_water: float = 0.35,
        initial_active: int = 0,
        min_active: int = 1,
        max_active: int = 0,
        up_after: int = 1,
        down_after: int = 3,
        cooldown: int = 0,
        federation=None,
        health=None,
        observer: Optional[Callable[[dict], None]] = None,
    ) -> None:
        n = len(sim.backends)
        if interval <= 0:
            raise ValueError("scaler interval must be positive")
        if not 0 <= low_water < high_water:
            raise ValueError("need 0 <= low_water < high_water")
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        max_active = max_active or n
        if not min_active <= max_active <= n:
            raise ValueError("need min_active <= max_active <= num_backends")
        initial_active = initial_active or n
        if not min_active <= initial_active <= max_active:
            raise ValueError("initial_active must lie within [min, max]_active")
        if up_after < 1 or down_after < 1:
            raise ValueError("up_after/down_after must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.sim = sim
        self.view = view
        self.interval = interval
        self.high_water = high_water
        self.low_water = low_water
        self.min_active = min_active
        self.max_active = max_active
        self.cooldown = cooldown
        self.up_after = up_after
        self.down_after = down_after
        self.federation = federation
        self.health = health
        self.observer = observer
        #: serving set (low indices first, like the static assignment)
        self.active: Set[int] = set(range(initial_active))
        #: the reserve, released lowest-index first
        self.parked: Set[int] = set(range(initial_active, n))
        self.events: List[ScaleEvent] = []
        #: (time, mean active load, active count) per evaluation
        self.samples: List[tuple] = []
        self.evaluations = 0
        self._over = 0
        self._under = 0
        self._last_move = -(10**18)
        self._stopped = False
        if federation is not None:
            # Park the reserve in the shard topology so leaves never
            # poll it; one rebalance covers the whole initial parking.
            for b in sorted(self.parked):
                federation.topology.quarantined.add(b)
            if self.parked and federation.topology.rebalance_on_quarantine:
                federation.topology.rebalance()
        sim.frontend.spawn("elastic-scaler", self._body)

    def stop(self) -> None:
        self._stopped = True

    # -- dispatcher health contract ------------------------------------
    def healthy_backends(self) -> List[int]:
        """Active back-ends, intersected with the chained health view."""
        active = sorted(self.active)
        if self.health is not None:
            alive = set(self.health.healthy_backends())
            active = [b for b in active if b in alive]
        return active

    def quarantined(self) -> List[int]:
        """Parked back-ends plus whatever the chained health holds out."""
        out = set(self.parked)
        if self.health is not None:
            out.update(self.health.quarantined())
        return sorted(out)

    # ------------------------------------------------------------------
    def mean_active_load(self) -> Optional[float]:
        """Mean :func:`load_score` over active members the view covers.

        ``None`` while the view covers *no* active member (cold-start:
        the first Ganglia aggregation cycle has not landed yet) — the
        scaler must not mistake "no data" for "idle" and park half the
        pool before the first real sample arrives.
        """
        infos = self.view.latest
        loads = [load_score(infos[b]) for b in self.active if b in infos]
        return sum(loads) / len(loads) if loads else None

    def _body(self, k):
        while not self._stopped:
            self._evaluate(k.now)
            yield k.sleep(self.interval)

    def _evaluate(self, now: int) -> None:
        mean = self.mean_active_load()
        if mean is None:
            return  # no coverage yet: not an observation of idleness
        self.evaluations += 1
        self.samples.append((now, mean, len(self.active)))
        if self.observer is not None:
            self.observer({"kind": "eval", "t": now, "mean_load": mean,
                           "active": len(self.active)})
        if mean > self.high_water:
            self._over += 1
            self._under = 0
        elif mean < self.low_water:
            self._under += 1
            self._over = 0
        else:
            self._over = self._under = 0
        if now - self._last_move < self.cooldown:
            return
        if self._over >= self.up_after and self.parked \
                and len(self.active) < self.max_active:
            self._scale("up", min(self.parked), mean, now)
        elif self._under >= self.down_after \
                and len(self.active) > self.min_active:
            self._scale("down", max(self.active), mean, now)

    def _scale(self, direction: str, backend: int, mean: float, now: int) -> None:
        if direction == "up":
            self.parked.discard(backend)
            self.active.add(backend)
        else:
            self.active.discard(backend)
            self.parked.add(backend)
        self._over = self._under = 0
        self._last_move = now
        event = ScaleEvent(now, direction, backend, mean, len(self.active))
        self.events.append(event)
        if self.federation is not None:
            topo = self.federation.topology
            if direction == "up":
                topo.release(backend)
            else:
                topo.quarantine(backend)
        tracer = getattr(self.sim, "spans", None)
        if tracer is not None and tracer.enabled:
            span = tracer.start_trace(
                f"scale:{direction}", node=self.sim.frontend.name,
                component="scaler",
                attrs={"backend": backend, "mean_load": round(mean, 4),
                       "active": len(self.active)})
            tracer.end(span)
        if self.observer is not None:
            self.observer({"kind": "scale", "t": now, "direction": direction,
                           "backend": backend, "mean_load": mean,
                           "active": len(self.active)})


class PooledBalancer:
    """Routes each request to its service's pool via an inner balancer.

    Wraps a :class:`~repro.server.loadbalancer.LeastLoadedBalancer`-style
    scorer but restricts candidates to the live members of the service's
    pool as maintained by the :class:`ReconfigurationManager`.
    """

    def __init__(self, inner, manager: ReconfigurationManager, service_of) -> None:
        """``service_of(request) -> pool name``."""
        self.inner = inner
        self.manager = manager
        self.service_of = service_of
        self._current_request = None

    # Dispatcher protocol -------------------------------------------------
    def set_request(self, request) -> None:
        self._current_request = request

    def choose(self, loads: Dict[int, LoadInfo]) -> int:
        request = self._current_request
        pool = self.service_of(request) if request is not None else None
        members = (
            self.manager.members(pool)
            if pool is not None and pool in self.manager.pools
            else None
        )
        if not members:
            return self.inner.choose(loads)
        restricted = {i: info for i, info in loads.items() if i in members}
        if not restricted:
            # No data for this pool yet: rotate within the pool.
            idx = self.inner.choose({})
            return members[idx % len(members)]
        choice = self.inner.choose(restricted)
        if choice not in members:
            # Inner fell back outside the pool: clamp.
            choice = min(
                members,
                key=lambda i: self.inner.score(loads[i]) if i in loads else 0.0,
            )
        return choice

    def score(self, info: LoadInfo) -> float:
        return self.inner.score(info)

    def note_assigned(self, backend: int) -> None:
        self.inner.note_assigned(backend)

    def note_completed(self, backend: int) -> None:
        self.inner.note_completed(backend)
