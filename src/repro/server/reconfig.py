"""Dynamic server reconfiguration (the paper's §7 future work).

"We plan to extend the knowledge gained in this study to implement a
full-fledged reconfiguration module coupled with accurate resource
monitoring." — this module is that extension, in the style of the
authors' earlier shared-data-center work ([8, 9] in the paper).

Two services share the cluster; each back-end is assigned to one pool.
The :class:`ReconfigurationManager` watches the per-pool load through a
monitoring scheme and migrates a server from the under-loaded pool to
the overloaded one when the imbalance persists. Reaction time — and
therefore how much load a burst dumps on an overwhelmed pool — is
bounded below by the monitoring granularity and staleness, so the
quality of the monitoring scheme is directly measurable as
reconfiguration lag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.monitoring.loadinfo import LoadInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.base import MonitoringScheme


@dataclass
class ReconfigEvent:
    """One pool-membership change."""

    time: int
    backend: int
    from_pool: str
    to_pool: str
    trigger_load: float


class ReconfigurationManager:
    """Threshold-based pool rebalancer driven by monitored load."""

    def __init__(
        self,
        scheme: "MonitoringScheme",
        pools: Dict[str, List[int]],
        interval: Optional[int] = None,
        high_water: float = 0.75,
        low_water: float = 0.35,
        min_pool_size: int = 1,
        cooldown: int = 0,
    ) -> None:
        """``pools``: initial pool name → list of backend indices.

        A backend migrates from the pool whose mean load is below
        ``low_water`` to one above ``high_water``; ``cooldown`` ns must
        elapse between consecutive migrations.
        """
        if not pools or any(not members for members in pools.values()):
            raise ValueError("every pool needs at least one backend")
        seen: set = set()
        for members in pools.values():
            for b in members:
                if b in seen:
                    raise ValueError(f"backend {b} assigned to two pools")
                seen.add(b)
        if not 0 <= low_water < high_water:
            raise ValueError("need 0 <= low_water < high_water")
        self.scheme = scheme
        self.pools: Dict[str, List[int]] = {k: list(v) for k, v in pools.items()}
        self.interval = interval if interval is not None else scheme.interval
        self.high_water = high_water
        self.low_water = low_water
        self.min_pool_size = min_pool_size
        self.cooldown = cooldown
        self.events: List[ReconfigEvent] = []
        self._last_move = -(10**18)
        self._stopped = False
        scheme.frontend.spawn("reconfig-manager", self._body)

    # ------------------------------------------------------------------
    def pool_of(self, backend: int) -> Optional[str]:
        for name, members in self.pools.items():
            if backend in members:
                return name
        return None

    def members(self, pool: str) -> List[int]:
        return list(self.pools[pool])

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _pool_load(self, infos: Dict[int, LoadInfo], pool: str) -> float:
        members = self.pools[pool]
        loads = [
            min(1.0, infos[i].runq_load / 8.0) * 0.5 + infos[i].cpu_util * 0.5
            for i in members if i in infos
        ]
        return sum(loads) / len(loads) if loads else 0.0

    def _body(self, k):
        while not self._stopped:
            infos = yield from self.scheme.query_all(k)
            self._maybe_migrate(k.now, infos)
            yield k.sleep(self.interval)

    def _maybe_migrate(self, now: int, infos: Dict[int, LoadInfo]) -> None:
        if now - self._last_move < self.cooldown:
            return
        loads = {name: self._pool_load(infos, name) for name in self.pools}
        hot = max(loads, key=lambda n: loads[n])
        cold = min(loads, key=lambda n: loads[n])
        if hot == cold:
            return
        if loads[hot] < self.high_water or loads[cold] > self.low_water:
            return
        if len(self.pools[cold]) <= self.min_pool_size:
            return
        # Move the least-loaded member of the cold pool to the hot pool.
        donor = min(
            self.pools[cold],
            key=lambda i: infos[i].cpu_util if i in infos else 0.0,
        )
        self.pools[cold].remove(donor)
        self.pools[hot].append(donor)
        self._last_move = now
        self.events.append(
            ReconfigEvent(now, donor, cold, hot, loads[hot])
        )


class PooledBalancer:
    """Routes each request to its service's pool via an inner balancer.

    Wraps a :class:`~repro.server.loadbalancer.LeastLoadedBalancer`-style
    scorer but restricts candidates to the live members of the service's
    pool as maintained by the :class:`ReconfigurationManager`.
    """

    def __init__(self, inner, manager: ReconfigurationManager, service_of) -> None:
        """``service_of(request) -> pool name``."""
        self.inner = inner
        self.manager = manager
        self.service_of = service_of
        self._current_request = None

    # Dispatcher protocol -------------------------------------------------
    def set_request(self, request) -> None:
        self._current_request = request

    def choose(self, loads: Dict[int, LoadInfo]) -> int:
        request = self._current_request
        pool = self.service_of(request) if request is not None else None
        members = (
            self.manager.members(pool)
            if pool is not None and pool in self.manager.pools
            else None
        )
        if not members:
            return self.inner.choose(loads)
        restricted = {i: info for i, info in loads.items() if i in members}
        if not restricted:
            # No data for this pool yet: rotate within the pool.
            idx = self.inner.choose({})
            return members[idx % len(members)]
        choice = self.inner.choose(restricted)
        if choice not in members:
            # Inner fell back outside the pool: clamp.
            choice = min(
                members,
                key=lambda i: self.inner.score(loads[i]) if i in loads else 0.0,
            )
        return choice

    def score(self, info: LoadInfo) -> float:
        return self.inner.score(info)

    def note_assigned(self, backend: int) -> None:
        self.inner.note_assigned(backend)

    def note_completed(self, backend: int) -> None:
        self.inner.note_completed(backend)
