"""Cluster-based server substrate: web servers, LB, admission, dispatch."""

from repro.server.request import Request, RequestStats
from repro.server.database import DatabaseStage
from repro.server.webserver import BackendServer
from repro.server.loadbalancer import LeastLoadedBalancer, RoundRobinBalancer
from repro.server.admission import AdmissionController
from repro.server.dispatcher import Dispatcher

__all__ = [
    "AdmissionController",
    "BackendServer",
    "DatabaseStage",
    "Dispatcher",
    "LeastLoadedBalancer",
    "Request",
    "RequestStats",
    "RoundRobinBalancer",
]
