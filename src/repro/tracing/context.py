"""Trace-context propagation.

A :class:`TraceContext` is the tiny immutable token that travels with a
unit of work — stored on a :class:`~repro.server.request.Request` as it
crosses nodes, or passed down explicit ``ctx=`` parameters into the
transport layer — so that every span created along the way joins the
same causal tree. It carries only identifiers (never the span object
itself): the holder of a context can *parent* new spans under it but
cannot mutate the spans already recorded, mirroring how W3C
traceparent / OpenTelemetry contexts work.

Propagation rules (see docs/TRACING.md):

* a **root** context is minted by :meth:`SpanTracer.start_trace`, which
  also makes the head-based sampling decision — an unsampled trace has
  *no* context (``None``), so every downstream hook short-circuits on a
  single ``is None`` check;
* crossing a node boundary costs nothing: contexts are plain values and
  the simulator is single-process, so attaching one to a request or a
  probe is ordinary attribute assignment;
* any component holding a context may open child spans under it; the
  child's own context is then the parent for deeper work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class TraceContext:
    """Identifies a position in one trace: (trace, parent span)."""

    trace_id: int
    span_id: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceContext trace={self.trace_id} span={self.span_id}>"


#: anything accepted as a parent by SpanTracer.start_span
ParentLike = Union["TraceContext", "object", None]


def ctx_of(span_or_ctx: ParentLike) -> Optional[TraceContext]:
    """The context under ``span_or_ctx`` (None for unsampled work).

    Accepts a :class:`~repro.tracing.span.Span`, a context, or None, so
    instrumentation can write ``ctx_of(span)`` without caring whether
    the span was sampled.
    """
    if span_or_ctx is None:
        return None
    if isinstance(span_or_ctx, TraceContext):
        return span_or_ctx
    context = getattr(span_or_ctx, "context", None)
    return context() if callable(context) else context
