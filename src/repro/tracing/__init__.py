"""repro.tracing — causal span tracing for the simulated cluster.

Layered on (not replacing) the flat :class:`~repro.sim.trace.Tracer`:
where the flat tracer records *that* something happened, the span plane
records *why it took as long as it did* — every request and monitoring
probe becomes a tree of timed spans with one trace id, exportable to
Perfetto and analysable for its critical path. See docs/TRACING.md.
"""

from repro.tracing.analysis import (
    SpanTree,
    analytic_rdma_read_ns,
    component_breakdown,
    critical_path,
    exclusive_times,
    flame,
    format_trace,
    name_breakdown,
    trace_summary,
)
from repro.tracing.context import TraceContext, ctx_of
from repro.tracing.export import (
    chrome_trace_json,
    save_chrome_trace,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.tracing.metrics import SpanMetrics
from repro.tracing.span import Span, SpanTracer, tracer_for

__all__ = [
    "Span",
    "SpanMetrics",
    "SpanTracer",
    "SpanTree",
    "TraceContext",
    "analytic_rdma_read_ns",
    "chrome_trace_json",
    "component_breakdown",
    "critical_path",
    "ctx_of",
    "exclusive_times",
    "flame",
    "format_trace",
    "name_breakdown",
    "save_chrome_trace",
    "to_chrome_trace",
    "to_jsonl",
    "trace_summary",
    "tracer_for",
    "validate_chrome_trace",
]
