"""Causal analysis over span trees.

Answers the drill-down questions the metric plane cannot: *which
segment* of a slow request or monitoring probe actually consumed the
time. Three tools:

* :func:`critical_path` — the chain of leaf spans that determined the
  root's end time (waiting on anything off this path was free);
* :func:`exclusive_times` — per-span self time (duration minus child
  cover), aggregated into the per-component breakdown rendered by
  :func:`flame` as an ASCII flamegraph;
* :func:`analytic_rdma_read_ns` — the closed-form fabric+DMA latency of
  one RDMA read on an idle cluster, against which the verb-level
  segment spans must agree to the nanosecond (the calibration check in
  ``tests/tracing/test_analysis.py``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ascii_chart import ascii_bars
from repro.tracing.span import Span


class SpanTree:
    """Parent/child index over the spans of one trace."""

    def __init__(self, spans: Sequence[Span]) -> None:
        self.spans = [s for s in spans if s.finished]
        self.by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        self.children: Dict[Optional[int], List[Span]] = {}
        for span in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            self.children.setdefault(span.parent_id, []).append(span)

    @property
    def root(self) -> Optional[Span]:
        roots = [s for s in self.spans
                 if s.parent_id is None or s.parent_id not in self.by_id]
        if not roots:
            return None
        return min(roots, key=lambda s: (s.start, s.span_id))

    def children_of(self, span: Span) -> List[Span]:
        return self.children.get(span.span_id, [])

    def walk(self, span: Optional[Span] = None, depth: int = 0):
        """Yield (span, depth) in pre-order from ``span`` (default root)."""
        span = span if span is not None else self.root
        if span is None:
            return
        yield span, depth
        for child in self.children_of(span):
            yield from self.walk(child, depth + 1)


def critical_path(spans: Sequence[Span], root: Optional[Span] = None) -> List[Span]:
    """The leaf spans that determined the root's completion time.

    Standard backwards walk: from a span's end, take the child that
    finishes last (but not after the span itself), jump to that child's
    start, and repeat among the remaining children; recurse into each
    chosen child. A span with no chosen children contributes itself as
    a path leaf. Returned in time order.
    """
    tree = SpanTree(spans)
    root = root if root is not None else tree.root
    if root is None:
        return []
    path: List[Span] = []

    def walk(span: Span) -> None:
        frontier = span.end
        assert frontier is not None
        chosen: List[Span] = []
        for child in sorted(tree.children_of(span),
                            key=lambda c: (c.end, c.span_id), reverse=True):
            if child.end is not None and child.end <= frontier:
                chosen.append(child)
                frontier = child.start
        if not chosen:
            path.append(span)
            return
        for child in reversed(chosen):
            walk(child)

    walk(root)
    return path


def exclusive_times(spans: Sequence[Span]) -> Dict[int, int]:
    """Self time per span id: duration minus the union of child cover.

    Children may overlap each other (posted-in-parallel RDMA reads), so
    the child intervals are merged before subtracting.
    """
    tree = SpanTree(spans)
    out: Dict[int, int] = {}
    for span in tree.spans:
        intervals = sorted(
            (c.start, c.end) for c in tree.children_of(span) if c.end is not None
        )
        covered = 0
        cur_start: Optional[int] = None
        cur_end = 0
        for start, end in intervals:
            start = max(start, span.start)
            end = min(end, span.end if span.end is not None else end)
            if end <= start:
                continue
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                covered += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            covered += cur_end - cur_start
        out[span.span_id] = max(0, span.duration - covered)
    return out


def component_breakdown(spans: Sequence[Span]) -> Dict[str, int]:
    """Exclusive time aggregated by ``node/component`` lane."""
    excl = exclusive_times(spans)
    out: Dict[str, int] = {}
    for span in spans:
        if not span.finished:
            continue
        key = f"{span.node or '?'}/{span.component or 'main'}"
        out[key] = out.get(key, 0) + excl.get(span.span_id, 0)
    return out


def name_breakdown(spans: Sequence[Span]) -> Dict[str, int]:
    """Exclusive time aggregated by span name."""
    excl = exclusive_times(spans)
    out: Dict[str, int] = {}
    for span in spans:
        if span.finished:
            out[span.name] = out.get(span.name, 0) + excl.get(span.span_id, 0)
    return out


def flame(spans: Sequence[Span], by: str = "component", width: int = 48,
          title: str = "exclusive time") -> str:
    """ASCII flamegraph: exclusive-time bars, widest on top."""
    agg = component_breakdown(spans) if by == "component" else name_breakdown(spans)
    rows = sorted(agg.items(), key=lambda kv: (-kv[1], kv[0]))
    return ascii_bars(
        [(label, ns / 1e3) for label, ns in rows],
        width=width, title=title, unit="us",
    )


def format_trace(spans: Sequence[Span]) -> str:
    """Indented one-trace timeline (the request-autopsy print form)."""
    tree = SpanTree(spans)
    root = tree.root
    if root is None:
        return "(empty trace)"
    lines = []
    for span, depth in tree.walk():
        rel = span.start - root.start
        flag = "" if span.status == "ok" else f"  !{span.status}"
        lines.append(
            f"{'  ' * depth}{span.name:<24.24s} +{rel / 1e3:>10.1f}us "
            f"{span.duration / 1e3:>10.1f}us  {span.node}/{span.component}{flag}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# analytic latency model (calibration oracle for the verb-level spans)
# ----------------------------------------------------------------------
def analytic_wire_ns(cfg, nbytes: int, bw_factor: float = 1.0) -> int:
    """One uncontended fabric transit: TX ser + hops + switch + RX ser."""
    net = cfg.net
    ser = max(1, math.ceil(nbytes / (net.link_bytes_per_ns * bw_factor)))
    return 2 * ser + 2 * net.hop_latency + net.switch_latency


def analytic_rdma_read_ns(cfg, nbytes: int) -> int:
    """Post→CQE latency of one RDMA read on an otherwise idle cluster.

    WQE fetch + request flight + target DMA + response flight + CQE —
    exactly the four verb-level span segments, so the critical path of
    an idle probe must sum to this figure with 0 ns error.
    """
    net = cfg.net
    dma = net.nic_dma_service + (nbytes * net.nic_dma_per_kb) // 1024
    return (
        net.nic_wqe_service
        + analytic_wire_ns(cfg, net.rdma_overhead_bytes)
        + dma
        + analytic_wire_ns(cfg, nbytes + net.rdma_overhead_bytes)
        + net.cqe_cost
    )


def verb_segment_sum(path: Sequence[Span], opcode: str = "read") -> int:
    """Total duration of the RDMA segment spans on a critical path."""
    prefix = f"rdma.{opcode}."
    return sum(s.duration for s in path if s.name.startswith(prefix))


def trace_summary(spans: Sequence[Span]) -> Dict[str, object]:
    """Compact stats for one trace (used by the autopsy example)."""
    tree = SpanTree(spans)
    root = tree.root
    if root is None:
        return {}
    path = critical_path(spans, root)
    return {
        "trace_id": root.trace_id,
        "root": root.name,
        "duration_ns": root.duration,
        "spans": len(tree.spans),
        "critical_path": [(s.name, s.duration) for s in path],
        "critical_path_ns": sum(s.duration for s in path),
    }


def percentile_durations(spans: Sequence[Span], name: str,
                         percentiles: Tuple[float, ...] = (0.5, 0.99)) -> Dict[float, float]:
    """Duration percentiles for all finished spans named ``name``."""
    durs = sorted(s.duration for s in spans if s.name == name and s.finished)
    if not durs:
        return {p: 0.0 for p in percentiles}
    out = {}
    for p in percentiles:
        idx = min(len(durs) - 1, max(0, math.ceil(p * len(durs)) - 1))
        out[p] = float(durs[idx])
    return out
