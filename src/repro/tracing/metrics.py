"""Span-derived metrics: the bridge from traces to the telemetry plane.

Every finished span is also a (time, duration) sample. :class:`SpanMetrics`
subscribes to a :class:`~repro.tracing.span.SpanTracer`'s end hook and
feeds

* a :class:`~repro.analysis.collector.TimeSeries` (series name
  ``span.<name>``, value = duration in ns) for windowed reductions,
* one :class:`~repro.telemetry.digest.StreamingDigest` per span name
  for streaming percentiles (p99 probe-span duration without retaining
  the stream), and
* optionally a :class:`~repro.telemetry.alerts.AlertEngine`: spans that
  carry a ``backend`` attribute are surfaced as metric samples, so a
  stock :class:`~repro.telemetry.alerts.ThresholdRule` on e.g.
  ``span.probe:rdma-sync`` fires when probe spans slow down.

Like the rest of the tracing plane this is observer-driven bookkeeping:
zero simulated-time cost, bounded memory (digests are O(compression),
the TimeSeries is optional and owned by the caller).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.telemetry.digest import StreamingDigest
from repro.tracing.span import Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.collector import TimeSeries
    from repro.telemetry.alerts import AlertEngine


class SpanMetrics:
    """Streams span durations into telemetry primitives."""

    def __init__(
        self,
        series: Optional["TimeSeries"] = None,
        engine: Optional["AlertEngine"] = None,
        compression: int = 256,
        prefix: str = "span.",
    ) -> None:
        self.series = series
        self.engine = engine
        self.compression = compression
        self.prefix = prefix
        self._digests: Dict[str, StreamingDigest] = {}
        self.observed = 0

    # ------------------------------------------------------------------
    def attach(self, tracer: SpanTracer) -> "SpanMetrics":
        tracer.on_end(self.observe)
        return self

    def observe(self, span: Span) -> None:
        """End-hook body: one finished span becomes one metric sample."""
        if span.end is None:  # pragma: no cover - hooks only see finished spans
            return
        self.observed += 1
        key = self.prefix + span.name
        duration = float(span.duration)
        if self.series is not None:
            self.series.add(key, span.end, duration)
        digest = self._digests.get(key)
        if digest is None:
            digest = self._digests[key] = StreamingDigest(self.compression)
        digest.update(duration)
        if self.engine is not None:
            backend = span.attrs.get("backend")
            if isinstance(backend, int):
                self.engine.observe(backend, span.end, {key: duration})

    # ------------------------------------------------------------------
    def digest(self, name: str) -> Optional[StreamingDigest]:
        return self._digests.get(self.prefix + name)

    def quantile(self, name: str, q: float) -> float:
        """Streaming duration quantile for span ``name`` (0.0 if unseen)."""
        digest = self.digest(name)
        if digest is None or digest.count == 0:
            return 0.0
        return float(digest.quantile(q))

    def names(self):
        """Span names observed so far (without the series prefix)."""
        n = len(self.prefix)
        return sorted(key[n:] for key in self._digests)
