"""Spans and the bounded span store.

A :class:`Span` is one named, timestamped segment of causal work —
"this RDMA read's target-side DMA", "request #4812 queued at backend2"
— linked to its parent by ids so a whole request or monitoring probe
forms a tree. The :class:`SpanTracer` owns id allocation, the
head-based sampling decision, and a **bounded** finished-span store
with drop counters, so tracing a long run can never grow without
limit.

Design constraints (why this looks the way it does):

* **Zero simulated-time cost.** Starting/ending spans is pure Python
  bookkeeping in the instrumented call sites: no events are scheduled,
  no task CPU is charged. Enabling tracing therefore cannot perturb
  any simulated outcome — the same property the telemetry plane keeps
  (docs/TELEMETRY.md) and the experiments verify bit-for-bit
  (``experiments/trace_overhead.py``).
* **Determinism.** Ids are sequential counters (not random), times are
  simulation nanoseconds, and the sampling RNG is a dedicated named
  stream from :class:`~repro.sim.rng.RngRegistry` — so two runs with
  the same seed produce byte-identical exports.
* **Cheap disabled path.** Every instrumentation hook guards on
  ``tracer.enabled`` (or on a ``None`` context) before doing anything;
  a disabled tracer costs one attribute read and one branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.tracing.context import TraceContext, ctx_of

#: terminal span statuses
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(slots=True)
class Span:
    """One timed segment of causal work.

    Slotted: traced runs allocate one Span per probe hop, so the
    per-instance dict is pure overhead.
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    #: start time, sim-ns
    start: int
    #: end time, sim-ns (None while the span is open)
    end: Optional[int] = None
    #: node the work ran on (exported as the Perfetto *pid* dimension)
    node: str = ""
    #: component within the node (exported as the *tid* dimension)
    component: str = ""
    status: str = STATUS_OK
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Span duration in ns (0 while still open)."""
        return 0 if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def context(self) -> TraceContext:
        """The context for parenting children under this span."""
        return TraceContext(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = self.end if self.end is not None else "…"
        return (f"<Span {self.name} #{self.span_id} trace={self.trace_id} "
                f"[{self.start}, {end}) {self.node}/{self.component}>")


class SpanTracer:
    """Sampling span recorder with a bounded finished-span store.

    Parameters
    ----------
    env:
        The simulation :class:`~repro.sim.engine.Environment`; supplies
        default timestamps so call sites can omit them.
    rng:
        Sampling stream (``sim.rng.stream("tracing")``). Only consulted
        when ``sample_rate < 1``, and never shared with any simulated
        component, so sampling cannot perturb workload draws.
    sample_rate:
        Head-based probability that :meth:`start_trace` admits a new
        trace. The decision is made once at the root; descendants
        inherit it for free because an unsampled root has no context.
    max_spans:
        Finished-span retention bound. Once full, further finished
        spans are counted in :attr:`dropped` and discarded (newest
        dropped — the store keeps the run's *earliest* spans, which is
        what post-mortem analysis of a long run usually wants).
    """

    def __init__(
        self,
        env,
        rng=None,
        sample_rate: float = 1.0,
        max_spans: int = 65536,
        enabled: bool = False,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.env = env
        self.rng = rng
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.enabled = enabled
        #: finished spans, in end-time order (bounded)
        self.spans: List[Span] = []
        #: finished spans discarded by the bound
        self.dropped = 0
        #: root traces declined by the sampler
        self.unsampled = 0
        #: traces admitted by the sampler
        self.traces_started = 0
        self._next_trace = 1
        self._next_span = 1
        self._open = 0
        self._on_end: List[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.env.now

    @property
    def open_spans(self) -> int:
        """Spans started but not yet ended (diagnostics)."""
        return self._open

    def on_end(self, fn: Callable[[Span], None]) -> None:
        """Invoke ``fn`` for every finished span (even ones the bound
        drops) — the hook feeding span-derived telemetry metrics."""
        self._on_end.append(fn)

    # ------------------------------------------------------------------
    def start_trace(
        self,
        name: str,
        node: str = "",
        component: str = "",
        start: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a new root span, applying the head sampling decision.

        Returns None when disabled or when the sampler declines — the
        caller just threads the None through and all descendant hooks
        no-op.
        """
        if not self.enabled:
            return None
        if self.sample_rate <= 0.0:
            self.unsampled += 1
            return None
        if self.sample_rate < 1.0:
            if self.rng is None or self.rng.random() >= self.sample_rate:
                self.unsampled += 1
                return None
        trace_id = self._next_trace
        self._next_trace += 1
        self.traces_started += 1
        return self._open_span(trace_id, None, name, node, component, start, attrs)

    def start_span(
        self,
        name: str,
        parent,
        node: str = "",
        component: str = "",
        start: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a child span under ``parent`` (a Span, context, or None).

        A None parent means the trace was not sampled: returns None.
        """
        if not self.enabled:
            return None
        ctx = ctx_of(parent)
        if ctx is None:
            return None
        return self._open_span(ctx.trace_id, ctx.span_id, name, node, component,
                               start, attrs)

    def end(
        self,
        span: Optional[Span],
        end: Optional[int] = None,
        status: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Finish ``span`` (no-op on None) and commit it to the store."""
        if span is None:
            return
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already ended")
        span.end = self.env.now if end is None else int(end)
        if span.end < span.start:
            raise ValueError(
                f"span {span.name!r} would end before it starts "
                f"({span.end} < {span.start})"
            )
        if status is not None:
            span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._open -= 1
        self._commit(span)

    def record(
        self,
        name: str,
        parent,
        start: int,
        end: int,
        node: str = "",
        component: str = "",
        status: str = STATUS_OK,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Create an already-finished span from known timestamps.

        The retroactive form used where both boundaries are data the
        caller holds anyway (e.g. a back-end queue span from
        ``dispatched_at`` to service start).
        """
        if not self.enabled:
            return None
        ctx = ctx_of(parent)
        if ctx is None:
            return None
        span = self._open_span(ctx.trace_id, ctx.span_id, name, node, component,
                               start, attrs)
        self._open -= 1
        span.end = int(end)
        if span.end < span.start:
            raise ValueError(
                f"span {name!r} would end before it starts ({end} < {start})"
            )
        span.status = status
        self._commit(span)
        return span

    # ------------------------------------------------------------------
    def _open_span(self, trace_id, parent_id, name, node, component, start, attrs) -> Span:
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span,
            parent_id=parent_id,
            name=name,
            start=self.env.now if start is None else int(start),
            node=node,
            component=component,
            attrs=dict(attrs) if attrs else {},
        )
        self._next_span += 1
        self._open += 1
        return span

    def _commit(self, span: Span) -> None:
        for fn in self._on_end:
            fn(span)
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- queries -------------------------------------------------------
    def trace(self, trace_id: int) -> List[Span]:
        """All retained spans of one trace."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[int]:
        """Distinct trace ids, in first-commit order."""
        seen: Dict[int, None] = {}
        for s in self.spans:
            seen.setdefault(s.trace_id, None)
        return list(seen)

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def by_component(self, component: str) -> List[Span]:
        """Retained spans of one component (e.g. ``"federation"``)."""
        return [s for s in self.spans if s.component == component]

    def roots(self) -> List[Span]:
        """Retained root spans (one per fully-retained trace)."""
        return [s for s in self.spans if s.parent_id is None]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SpanTracer enabled={self.enabled} spans={len(self.spans)} "
                f"dropped={self.dropped} open={self._open}>")


def tracer_for(node, ctx) -> Optional[SpanTracer]:
    """The node's span tracer iff tracing is on and ``ctx`` is sampled.

    The one-line guard every transport hook uses: returns None (and
    costs two attribute reads) whenever tracing is off or the work at
    hand belongs to an unsampled trace.
    """
    if ctx is None:
        return None
    tracer = getattr(node, "span_tracer", None)
    if tracer is None or not tracer.enabled:
        return None
    return tracer


def spans_in_order(spans: Iterable[Span]) -> List[Span]:
    """Spans sorted by (start, span_id) — the canonical export order."""
    return sorted(spans, key=lambda s: (s.start, s.span_id))
