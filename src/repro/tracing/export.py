"""Trace export: Chrome trace-event (Perfetto) JSON and JSONL.

The Chrome trace-event format is the lowest-common-denominator timeline
interchange: one JSON object with a ``traceEvents`` list of complete
(``ph: "X"``) events carrying ``ts``/``dur`` in microseconds plus
``pid``/``tid`` lanes. Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` both open it directly, which turns any simulated
run into a zoomable timeline: one *process* row per cluster node, one
*thread* row per component (dispatcher, verbs, httpd, monitor, …).

Everything here is deterministic: spans are emitted in canonical
(start, span_id) order, dict keys are sorted, and all times derive from
the simulation clock — two runs with the same seed export byte-identical
documents (asserted by ``tests/tracing/test_export.py``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.tracing.span import Span, SpanTracer, spans_in_order


def _lanes(spans: List[Span]):
    """Stable pid/tid assignment: nodes and components in first-seen order."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    for span in spans:
        node = span.node or "?"
        if node not in pids:
            pids[node] = len(pids) + 1
        key = (node, span.component or "main")
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == node]) + 1
    return pids, tids


def to_chrome_trace(tracer: SpanTracer, spans: Optional[Iterable[Span]] = None) -> dict:
    """Build a Chrome trace-event document from the retained spans.

    ``spans`` restricts the export (e.g. one trace's spans from
    :meth:`SpanTracer.trace`); default is the whole store.
    """
    ordered = spans_in_order(tracer.spans if spans is None else list(spans))
    pids, tids = _lanes(ordered)
    events: List[dict] = []
    for node, pid in pids.items():
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": node},
        })
    for (node, component), tid in tids.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": pids[node], "tid": tid,
            "args": {"name": component},
        })
    for span in ordered:
        node = span.node or "?"
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
        }
        args.update(span.attrs)
        events.append({
            "ph": "X",
            "name": span.name,
            # trace-event ts/dur are microseconds; sim time is integer ns
            "ts": span.start / 1e3,
            "dur": span.duration / 1e3,
            "pid": pids[node],
            "tid": tids[(node, span.component or "main")],
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.tracing",
            "spans": len(ordered),
            "dropped": tracer.dropped,
            "unsampled": tracer.unsampled,
        },
    }


def chrome_trace_json(tracer: SpanTracer, spans: Optional[Iterable[Span]] = None) -> str:
    """The Chrome trace document serialised deterministically."""
    return json.dumps(to_chrome_trace(tracer, spans), sort_keys=True,
                      separators=(",", ":"))


def save_chrome_trace(tracer: SpanTracer, path, spans: Optional[Iterable[Span]] = None) -> int:
    """Write the Perfetto-loadable JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(tracer, spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
    return len(doc["traceEvents"])


def to_jsonl(tracer: SpanTracer, spans: Optional[Iterable[Span]] = None) -> str:
    """One span per line — the grep/jq-friendly archival form."""
    lines = []
    for span in spans_in_order(tracer.spans if spans is None else list(spans)):
        lines.append(json.dumps({
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "node": span.node,
            "component": span.component,
            "status": span.status,
            "attrs": span.attrs,
        }, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def validate_chrome_trace(doc: dict) -> List[str]:
    """Schema check used by tests and the CI smoke job.

    Returns a list of problems (empty = valid): every event must carry
    ``ph``/``pid``/``tid``/``name``, and complete events additionally
    ``ts``/``dur``.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    for i, ev in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        if ev.get("ph") == "X":
            for key in ("ts", "dur"):
                if key not in ev:
                    problems.append(f"event {i}: complete event missing {key!r}")
            if "args" in ev and "trace_id" not in ev["args"]:
                problems.append(f"event {i}: span event missing args.trace_id")
    return problems
