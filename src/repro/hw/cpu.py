"""CPU descriptor.

The scheduling state machine lives in :mod:`repro.kernel.scheduler`; this
module only describes the hardware (used for documentation, /proc output
and speed scaling hooks).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuModel:
    """Static description of one processor."""

    index: int
    #: model string, surfaced in /proc/cpuinfo-style output
    model_name: str = "Intel(R) Xeon(TM) CPU 2.40GHz"
    mhz: float = 2400.0
    cache_kb: int = 512

    def cpuinfo(self) -> dict:
        """One /proc/cpuinfo record."""
        return {
            "processor": self.index,
            "model name": self.model_name,
            "cpu MHz": self.mhz,
            "cache size": f"{self.cache_kb} KB",
        }
