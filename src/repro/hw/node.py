"""Node composition: CPUs + memory + NIC + kernel services.

A node is the unit the paper monitors: a dual-CPU back-end server (or
the lightly-loaded front-end). ``boot()`` starts the per-CPU timer-tick
loops and ksoftirqd threads and maps the *live* kernel memory regions
(`kern.load`, `kern.irq_stat`) that RDMA-Sync registers for remote reads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, List

from repro.hw.cpu import CpuModel
from repro.hw.memory import Memory
from repro.hw.nic import Nic
from repro.kernel.interrupts import IrqController, IrqVector
from repro.kernel.kmod import KernelModule
from repro.kernel.loadavg import LoadAccounting
from repro.kernel.netstack import NetStack
from repro.kernel.procfs import ProcFs
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import Task
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SimConfig
    from repro.sim.engine import Environment


#: wire sizes of the live kernel regions (bytes) — what an RDMA read moves
KERN_LOAD_BYTES = 128
KERN_IRQSTAT_BYTES = 96


class Node:
    """One cluster node."""

    def __init__(
        self,
        env: "Environment",
        cfg: "SimConfig",
        name: str,
        index: int,
        tracer: Tracer | None = None,
        num_cpus: int | None = None,
    ) -> None:
        self.env = env
        self.cfg = cfg
        self.name = name
        self.index = index
        self.tracer = tracer if tracer is not None else Tracer(enabled=cfg.trace)
        #: causal span tracer (attached by build_cluster; None = untraced)
        self.span_tracer = None
        #: CPUs on this node (the client farm gets more than the servers)
        self.num_cpus = num_cpus if num_cpus is not None else cfg.cpu.num_cpus
        if self.num_cpus < 1:
            raise ValueError("a node needs at least one CPU")

        self.cpu_models: List[CpuModel] = [
            CpuModel(i) for i in range(self.num_cpus)
        ]
        #: kernel-visible application gauges (connection counts, queue
        #: depths) published by servers and exported in load snapshots
        self.gauges: dict = {}
        self.memory = Memory(name)
        self.nic = Nic(f"nic:{name}")
        self.nic.node = self

        self.sched = Scheduler(self)
        self.irq = IrqController(self)
        self.loadacct = LoadAccounting(self)
        self.procfs = ProcFs(self)
        self.kmod = KernelModule(self)
        self.netstack = NetStack(self)

        #: failure state: "up", "hung" (kernel livelocked; NIC alive),
        #: or "crashed" (off the fabric entirely)
        self.failure_mode = "up"
        #: tick-loop generation: bumped by fail()/recover() so a suspended
        #: pre-failure loop can never resume alongside post-recovery loops
        self._tick_gen = 0
        self._booted = False

    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Start timer ticks, ksoftirqd, and map live kernel regions."""
        if self._booted:
            return
        self._booted = True
        self.irq.start_ksoftirqd()
        for cpu_index in range(self.num_cpus):
            self.env.process(self._tick_loop(cpu_index), name=f"tick:{self.name}:{cpu_index}")
        # Live kernel memory — always current, DMA-readable.
        self.memory.alloc_live("kern.load", KERN_LOAD_BYTES, self.loadacct.snapshot)
        self.memory.alloc_live("kern.irq_stat", KERN_IRQSTAT_BYTES, self.irq.irq_stat)

    def _tick_loop(self, cpu_index: int, gen: int = 0) -> Generator:
        tick = self.cfg.cpu.tick
        cost = self.cfg.cpu.timer_irq_cost

        def on_timer(cpu_index: int = cpu_index) -> None:
            self.sched.tick(cpu_index)
            if cpu_index == 0:
                self.loadacct.on_tick()

        while self.failure_mode == "up" and gen == self._tick_gen:
            yield self.env.timeout(tick)
            if gen != self._tick_gen:
                return  # superseded by a fail/recover cycle mid-sleep
            self.irq.raise_irq(cpu_index, IrqVector.TIMER, cost, action=on_timer)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True unless the node has crashed off the fabric."""
        return self.failure_mode != "crashed"

    def fail(self, mode: str = "crashed") -> None:
        """Inject a failure.

        * ``"hung"`` — kernel livelock: the timer dies and no task makes
          progress, but the HCA keeps answering one-sided operations
          against (now-frozen) kernel memory. An RDMA heartbeat sees the
          tick counter stop; a socket monitor just never replies.
        * ``"crashed"`` — the node drops off the fabric: packets and
          RDMA requests are silently lost.
        """
        if mode not in ("hung", "crashed"):
            raise ValueError(f"unknown failure mode {mode!r}")
        self.failure_mode = mode
        self._tick_gen += 1  # retire the running tick loops
        if mode == "hung":
            # Freeze the kernel: deschedule everything so nothing advances.
            for cpu in self.sched.cpus:
                cpu.dispatch_seq += 1  # cancels in-flight burst-end events
                cpu.current = None

    def recover(self) -> None:
        """Undo a failure: restart timer ticks and resume frozen tasks.

        The node reboots *warm* — task state, memory registrations and
        socket buffers survive (the paper's hung-kernel scenario is a
        livelock, not a power cycle). Tasks that were frozen mid-burst
        resume from the start of their interrupted burst; the heartbeat
        monitor re-marks the node ALIVE once its tick counter advances
        again.
        """
        if self.failure_mode == "up":
            return
        self.failure_mode = "up"
        self._tick_gen += 1
        if self._booted:
            gen = self._tick_gen
            for cpu_index in range(self.num_cpus):
                self.env.process(self._tick_loop(cpu_index, gen),
                                 name=f"tick:{self.name}:{cpu_index}:g{gen}")
        # Tasks caught RUNNING at failure time were orphaned (their CPU
        # slot was cleared without a re-queue); make them runnable and
        # restart dispatching on every idle CPU.
        self.sched.requeue_orphans()
        self.sched.kick()
        self.tracer.emit(self.env.now, "node.recover", self.name)

    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        body_factory: Callable[..., Generator],
        nice: int = 0,
        kthread: bool = False,
        rss_bytes: int | None = None,
    ) -> Task:
        """Start a task (thread) on this node."""
        return self.sched.spawn(name, body_factory, nice=nice, kthread=kthread,
                                rss_bytes=rss_bytes)

    # -- convenience views -------------------------------------------------
    def cpu_utilisation(self) -> float:
        """Instantaneous fraction of CPUs executing a task."""
        return self.sched.busy_cpus() / self.num_cpus

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} tasks={self.sched.nr_threads()}>"
