"""Interconnect fabric: links plus a non-blocking crossbar switch.

Models the paper's testbed topology — every node's HCA connects through
one InfiniScale-style completely non-blocking switch — with:

* per-source-port TX serialisation (a NIC can put one message on the
  wire at a time, at link bandwidth),
* cut-through switching with a fixed forwarding latency,
* per-destination-port serialisation (receiver link contention).

Both planes (IPoIB kernel messages and native verbs packets) share the
same physical ports, so heavy socket traffic *can* queue an RDMA packet
— the effect is tiny at monitoring message sizes, which is exactly the
paper's point about RDMA latency being well-conditioned to load.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict

from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import SimConfig
    from repro.hw.nic import Nic
    from repro.sim.engine import Environment


class SwitchPort:
    """Serialisation bookkeeping for one direction of one port."""

    __slots__ = ("free_at", "bytes_moved", "messages")

    def __init__(self) -> None:
        self.free_at = 0
        self.bytes_moved = 0
        self.messages = 0


class Fabric:
    """The cluster interconnect."""

    def __init__(self, env: "Environment", cfg: "SimConfig") -> None:
        self.env = env
        self.cfg = cfg
        self._tx: Dict[str, SwitchPort] = {}
        self._rx: Dict[str, SwitchPort] = {}
        #: optional :class:`~repro.faults.plane.FaultPlane` consulted per
        #: packet (duck-typed; None = the hook costs one attribute check)
        self.faults = None
        #: optional :class:`~repro.congestion.plane.CongestionPlane`; when
        #: installed it takes over unicast delivery after fault verdicts
        #: (None = the hook costs one attribute check)
        self.congestion = None
        #: optional :class:`~repro.tenancy.plane.TenancyPlane`; NICs
        #: attached after installation inherit it (leaf/region nodes)
        self.tenancy = None

    def attach(self, nic: "Nic") -> None:
        """Register a NIC on the switch."""
        if nic.name in self._tx:
            raise ValueError(f"NIC {nic.name!r} already attached")
        self._tx[nic.name] = SwitchPort()
        self._rx[nic.name] = SwitchPort()
        nic.fabric = self
        nic.tenancy = self.tenancy

    def transmit(
        self,
        src: "Nic",
        dst: "Nic",
        nbytes: int,
        on_arrival: Callable[[], None],
        bw_factor: float = 1.0,
        prio: int = 0,
    ) -> int:
        """Move ``nbytes`` from ``src`` to ``dst``; returns arrival time.

        ``on_arrival`` runs at the destination NIC when the last byte
        lands. ``bw_factor`` discounts effective bandwidth (IPoIB runs at
        a fraction of the link rate). ``prio`` is the PFC service level:
        nonzero packets bypass priority-0 pauses under the congestion
        plane (the base fabric has no pauses, so it only threads the
        value through).
        """
        if src.name not in self._tx or dst.name not in self._rx:
            raise ValueError("both NICs must be attached to the fabric")
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        if dst.node is not None and not dst.node.alive:
            # Crashed target: the wire carries the packet into the void.
            return self.env.now
        lat_factor = 1.0
        if self.faults is not None:
            verdict = self.faults.on_transmit(src, dst, nbytes)
            if verdict is not None:
                if verdict.drop:
                    # Lost on the wire (loss or partition): no arrival.
                    return self.env.now
                lat_factor = verdict.latency_factor
                bw_factor *= verdict.bw_factor
        if self.congestion is not None:
            return self.congestion.transmit(
                src, dst, nbytes, on_arrival, bw_factor, lat_factor, prio)
        net = self.cfg.net
        bw = net.link_bytes_per_ns * bw_factor
        q = nbytes / bw
        ser = int(q)
        if ser != q:
            ser += 1
        if ser < 1:
            ser = 1
        env = self.env
        now = env._now

        hop, switch = net.hop_latency, net.switch_latency
        if lat_factor != 1.0:
            hop = int(hop * lat_factor)
            switch = int(switch * lat_factor)

        tx = self._tx[src.name]
        free = tx.free_at
        start = now if now > free else free
        tx.free_at = start + ser
        tx.bytes_moved += nbytes
        tx.messages += 1

        at_switch = start + ser + hop + switch
        rx = self._rx[dst.name]
        free = rx.free_at
        rx_start = at_switch if at_switch > free else free
        rx.free_at = rx_start + ser
        rx.bytes_moved += nbytes
        rx.messages += 1

        arrival = rx_start + ser + hop
        env.call_later(arrival - now, on_arrival,
                       priority=EventPriority.HIGH)
        return arrival

    def multicast(
        self,
        src: "Nic",
        dsts,
        nbytes: int,
        on_arrival: Callable[["Nic"], None],
        bw_factor: float = 1.0,
    ) -> None:
        """Hardware multicast: one TX serialisation, switch replication.

        The source pays for a single wire transmission; the switch fans
        the packet out to every destination port (the §6 discussion's
        scalability feature).
        """
        net = self.cfg.net
        bw = net.link_bytes_per_ns * bw_factor
        ser = max(1, math.ceil(nbytes / bw))
        now = self.env.now
        tx = self._tx[src.name]
        start = max(now, tx.free_at)
        tx.free_at = start + ser
        tx.bytes_moved += nbytes
        tx.messages += 1
        at_switch = start + ser + net.hop_latency + net.switch_latency
        for dst in dsts:
            if dst.name == src.name:
                continue
            hop = net.hop_latency
            dst_at_switch = at_switch
            if self.faults is not None:
                verdict = self.faults.on_transmit(src, dst, nbytes)
                if verdict is not None:
                    if verdict.drop:
                        continue  # replicated copy lost on this port only
                    if verdict.latency_factor != 1.0:
                        hop = int(hop * verdict.latency_factor)
                        dst_at_switch = start + ser + hop + int(
                            net.switch_latency * verdict.latency_factor)
            rx = self._rx[dst.name]
            rx_start = max(dst_at_switch, rx.free_at)
            rx.free_at = rx_start + ser
            rx.bytes_moved += nbytes
            rx.messages += 1
            arrival = rx_start + ser + hop
            self.env.call_later(arrival - now,
                                lambda dst=dst: on_arrival(dst),
                                priority=EventPriority.HIGH)

    def port_stats(self, nic_name: str) -> dict:
        """Traffic counters for one NIC's ports."""
        tx, rx = self._tx[nic_name], self._rx[nic_name]
        return {
            "tx_bytes": tx.bytes_moved,
            "tx_messages": tx.messages,
            "rx_bytes": rx.bytes_moved,
            "rx_messages": rx.messages,
        }
