"""RoCEv2-style congestion bookkeeping for the crossbar switch.

The base :class:`~repro.hw.fabric.Fabric` already serialises traffic at
each destination port through ``rx.free_at`` — an *implicit* egress
queue that drains at link rate but is invisible to the endpoints and
infinitely deep. This module makes that queue explicit and reactive:

* **queue depth** — at any instant the backlog of a port is
  ``(rx.free_at - now) * link_rate`` bytes; :class:`EgressPort` tracks
  its peak and per-packet samples.
* **ECN marking** — WRED-style: no marks below ``ecn_kmin``, marking
  probability rising linearly to ``ecn_pmax`` at ``ecn_kmax``, every
  packet marked above ``ecn_kmax``. Marks ride on the packet to the
  receiver (the RoCEv2 CE codepoint), which is where CNP generation
  happens (see :mod:`repro.congestion.dcqcn`).
* **PFC pause** — when an enqueue pushes the depth past ``pfc_xoff``
  the switch emits a pause frame to the *sending* port, which must stay
  quiet until the queue has drained back to ``pfc_xon``. With PFC off
  the queue is an infinite buffer and congestion is pure delay.

The switch itself never schedules events: every decision is made inside
:meth:`repro.congestion.plane.CongestionPlane.transmit` at times the
simulation produces anyway, keeping the model deterministic and cheap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.config import CongestionConfig


class EgressPort:
    """Congestion counters for one destination port of the switch."""

    __slots__ = ("name", "index", "enqueued", "bytes_enqueued", "ecn_marks",
                 "pauses", "pause_ns", "peak_depth")

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index
        self.enqueued = 0
        self.bytes_enqueued = 0
        self.ecn_marks = 0
        self.pauses = 0
        self.pause_ns = 0
        self.peak_depth = 0

    @property
    def mark_rate(self) -> float:
        """Cumulative fraction of enqueued packets that were ECN-marked."""
        return self.ecn_marks / self.enqueued if self.enqueued else 0.0

    def stats(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "bytes_enqueued": self.bytes_enqueued,
            "ecn_marks": self.ecn_marks,
            "mark_rate": self.mark_rate,
            "pauses": self.pauses,
            "pause_ns": self.pause_ns,
            "peak_depth": self.peak_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EgressPort {self.name} depth_peak={self.peak_depth}>"


class CongestionSwitch:
    """Per-port egress queues with ECN marking and PFC thresholds."""

    def __init__(self, cfg: "CongestionConfig", rng: "np.random.Generator") -> None:
        self.cfg = cfg
        self.rng = rng
        self._ports: Dict[str, EgressPort] = {}

    def port(self, name: str) -> EgressPort:
        """The egress port for NIC ``name`` (created on first touch)."""
        port = self._ports.get(name)
        if port is None:
            port = self._ports[name] = EgressPort(name, len(self._ports))
        return port

    def ports(self) -> Dict[str, EgressPort]:
        return dict(self._ports)

    # ------------------------------------------------------------------
    def enqueue(self, port: EgressPort, depth_before: int,
                nbytes: int) -> Tuple[bool, Optional[int]]:
        """Account one packet landing in ``port``'s egress queue.

        ``depth_before`` is the backlog (bytes) the packet found on
        arrival at the switch. Returns ``(ecn_marked, pause_bytes)``:
        ``pause_bytes`` is how many bytes must drain before the sender
        may resume (``None`` when no pause frame is due).
        """
        cc = self.cfg
        depth = depth_before + nbytes
        port.enqueued += 1
        port.bytes_enqueued += nbytes
        if depth > port.peak_depth:
            port.peak_depth = depth
        marked = False
        if depth > cc.ecn_kmin:
            if depth >= cc.ecn_kmax:
                marked = True
            else:
                ramp = (depth - cc.ecn_kmin) / (cc.ecn_kmax - cc.ecn_kmin)
                marked = bool(self.rng.random() < ramp * cc.ecn_pmax)
            if marked:
                port.ecn_marks += 1
        pause_bytes = None
        if cc.pfc and depth > cc.pfc_xoff:
            # Pause frame to the upstream port: hold until the queue has
            # drained to the resume threshold.
            pause_bytes = depth - cc.pfc_xon
            port.pauses += 1
        return marked, pause_bytes

    def stats(self) -> Dict[str, dict]:
        """Per-port counters, keyed by NIC name."""
        return {name: port.stats() for name, port in self._ports.items()}
