"""Host channel adapter (NIC) model.

Two planes share the physical port:

* **kernel plane** (IPoIB): messages sent by the in-kernel network stack.
  Arrival raises a hardware interrupt on the node's NIC-affinity CPU and
  the packet is processed in softirq context — both *consume target CPU*.
* **verbs plane** (native RDMA): work requests are serviced by the NIC's
  DMA engine. An incoming RDMA read/write is handled *entirely on the
  adapter*: address translation plus DMA against pinned host memory,
  with zero host-CPU involvement and no interrupt on the target. This is
  the one-sidedness the paper's schemes exploit.

The DMA engine is a FIFO resource: concurrent verbs operations queue
behind each other (`dma_service`), so a NIC saturated with RDMA traffic
does slow down — but target CPU load never matters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from repro.kernel.interrupts import IrqVector
from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.fabric import Fabric
    from repro.hw.node import Node


class IcmCache:
    """LRU model of the HCA's on-card context (ICM) cache.

    Real HCAs keep QP/CQ/MR state in host memory (the InfiniHost's ICM)
    and cache the working set on the adapter; a verb whose context is
    not cached stalls on a PCIe refill. Capacity is shared across every
    tenant using the NIC, so one tenant churning through QPs or walking
    a large MR set evicts another tenant's hot entries — the
    noisy-neighbor mechanism the tenancy plane models. Keys are opaque
    tuples (``("qp", node, qpn)`` / ``("mr", node, rkey)``); each entry
    remembers the owning tenant so evictions can be attributed.
    """

    __slots__ = ("entries", "_lru", "hits", "misses", "evictions")

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("ICM cache needs at least one entry")
        self.entries = entries
        self._lru: "OrderedDict[tuple, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def access(self, key: tuple, owner: int) -> Tuple[bool, Optional[Tuple[tuple, int]]]:
        """Touch ``key`` for tenant ``owner``.

        Returns ``(missed, evicted)`` where ``evicted`` is the
        ``(key, owner)`` pair displaced to make room, or ``None``.
        """
        lru = self._lru
        if key in lru:
            lru.move_to_end(key)
            self.hits += 1
            return False, None
        self.misses += 1
        evicted = None
        if len(lru) >= self.entries:
            evicted = lru.popitem(last=False)
            self.evictions += 1
        lru[key] = owner
        return True, evicted

    def invalidate(self, key: tuple) -> None:
        self._lru.pop(key, None)


class Nic:
    """One host channel adapter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.node: Optional["Node"] = None
        self.fabric: Optional["Fabric"] = None
        #: tenancy plane handle (set by :meth:`Fabric.attach` when the
        #: plane is installed); ``None`` keeps every verb on the fast path
        self.tenancy = None
        #: DMA engine occupancy (absolute time the engine frees up)
        self._dma_free = 0
        #: DMA slowdown injected by the fault plane (1.0 = healthy); only
        #: consulted when != 1.0, preserving exact integer timings
        self.fault_dma_factor = 1.0
        #: counters
        self.kernel_rx_packets = 0
        self.kernel_tx_packets = 0
        self.kernel_rx_bytes = 0
        self.kernel_tx_bytes = 0
        self.rdma_ops_serviced = 0
        #: congestion-plane counters (stay zero unless the plane is on)
        self.cc_ecn_marked_rx = 0
        self.cc_cnps_sent = 0
        self.cc_cnps_received = 0
        self.cc_pause_ns = 0
        #: callback invoked for kernel-plane arrivals (set by the netstack)
        self.kernel_rx_handler: Optional[Callable[[Any, int], None]] = None

    # ------------------------------------------------------------------
    @property
    def env(self):
        assert self.node is not None
        return self.node.env

    @property
    def cfg(self):
        assert self.node is not None
        return self.node.cfg

    # ------------------------------------------------------------------
    # kernel (IPoIB) plane
    # ------------------------------------------------------------------
    def kernel_send(self, dst: "Nic", payload: Any, nbytes: int) -> None:
        """Transmit one kernel-plane message (called from the netstack)."""
        assert self.fabric is not None
        total = nbytes + self.cfg.net.tcp_overhead_bytes
        self.kernel_tx_packets += 1
        self.kernel_tx_bytes += total
        self.fabric.transmit(
            self,
            dst,
            total,
            lambda: dst._kernel_rx(payload, nbytes),
            bw_factor=self.cfg.net.ipoib_bw_factor,
        )

    def _kernel_rx(self, payload: Any, nbytes: int) -> None:
        """Packet landed: raise the NIC IRQ; softirq does protocol work."""
        assert self.node is not None
        self.kernel_rx_packets += 1
        self.kernel_rx_bytes += nbytes + self.cfg.net.tcp_overhead_bytes
        node = self.node
        cpu = node.irq.nic_target_cpu()
        irqcfg = node.cfg.irq

        def handler_done() -> None:
            # The hard handler reaped the ring; per-packet protocol
            # processing happens in softirq context.
            node.irq.raise_softirq(
                cpu,
                irqcfg.softirq_per_packet,
                action=lambda: self._deliver(payload, nbytes),
            )

        node.irq.raise_irq(cpu, IrqVector.NIC, irqcfg.nic_irq_cost, action=handler_done)

    def _deliver(self, payload: Any, nbytes: int) -> None:
        if self.kernel_rx_handler is None:
            raise RuntimeError(f"{self.name}: kernel packet arrived but no netstack bound")
        self.kernel_rx_handler(payload, nbytes)

    # ------------------------------------------------------------------
    # verbs plane
    # ------------------------------------------------------------------
    def dma_service(self, duration: int, fn: Callable[[], None]) -> None:
        """Occupy the DMA engine for ``duration`` ns, then run ``fn``.

        FIFO semantics: requests queue behind the engine's current work.
        No host CPU is involved.
        """
        if self.fault_dma_factor != 1.0:
            duration = int(duration * self.fault_dma_factor)
        env = self.node.env
        now = env._now
        free = self._dma_free
        start = now if now > free else free
        self._dma_free = end = start + duration
        self.rdma_ops_serviced += 1
        env.call_later(end - now, fn, priority=EventPriority.HIGH)

    def raise_cq_interrupt(self, fn: Callable[[], None]) -> None:
        """Completion event: interrupt the host (initiator side only)."""
        assert self.node is not None
        node = self.node
        cpu = node.irq.nic_target_cpu()
        node.irq.raise_irq(cpu, IrqVector.CQ, node.cfg.irq.cq_irq_cost, action=fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Nic {self.name}>"
