"""Host memory model.

Memory is *logical*: a region holds a Python value plus a declared wire
size. Two kinds of regions exist:

* **buffer regions** — hold a value written explicitly (user-space
  buffers; the RDMA-Async scheme's registered load buffer). Readers see
  whatever was last stored, so staleness emerges naturally.
* **live regions** — backed by a ``provider`` callable that snapshots
  kernel state at read time. These model kernel data structures
  (``irq_stat``, jiffies counters, ``avenrun``) which in real hardware
  are *always current in physical memory* and therefore readable by a
  DMA engine at any instant without CPU help. This is the mechanism the
  paper's RDMA-Sync scheme exploits.

Regions must be *pinned* before a NIC may DMA them — mirroring verbs
memory-registration semantics — and carry access flags so that a
read-only registration rejects remote writes (the paper's §6 security
note).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional


class MemoryError_(Exception):
    """Raised on invalid memory operations (bad region, access violation)."""


#: leaf types that can never mutate — safe to hand out by identity
_IMMUTABLE_ATOMS = frozenset({int, float, bool, str, bytes, type(None)})


def _deeply_immutable(value: Any) -> bool:
    """True iff ``value`` is a tree of immutable atoms and tuples.

    Deliberately conservative: only types whose *deep* immutability is
    guaranteed by the language qualify. Hashable-but-mutable objects
    (instances with the default hash, frozen dataclasses holding lists,
    ...) fall through to the deep-copy path.
    """
    if type(value) in _IMMUTABLE_ATOMS:
        return True
    if type(value) is tuple:
        return all(
            type(item) in _IMMUTABLE_ATOMS or
            (type(item) is tuple and _deeply_immutable(item))
            for item in value
        )
    return False


class MemRegion:
    """A named region of host memory."""

    def __init__(
        self,
        name: str,
        nbytes: int,
        value: Any = None,
        provider: Optional[Callable[[], Any]] = None,
    ) -> None:
        if nbytes <= 0:
            raise ValueError(f"region size must be positive, got {nbytes}")
        self.name = name
        self.nbytes = nbytes
        self._value = value
        #: classified once per write: immutable contents are handed out
        #: by identity, everything else is deep-copied per read
        self._frozen = provider is None and _deeply_immutable(value)
        self._provider = provider
        self.pinned = False
        #: generation counter bumped on every write (tests/diagnostics)
        self.writes = 0

    @property
    def is_live(self) -> bool:
        """True if backed by a kernel-state provider."""
        return self._provider is not None

    def read(self) -> Any:
        """Snapshot the region's current contents.

        Live regions call their provider; buffer regions return a deep
        copy so that later writes cannot retroactively alter what a
        reader observed (DMA semantics). Values classified as deeply
        immutable at write time (packed snapshot tuples, scalars) are
        returned by identity — observationally identical to the copy,
        without walking the tuple tree on every RDMA read.
        """
        if self._provider is not None:
            return self._provider()
        if self._frozen:
            return self._value
        return copy.deepcopy(self._value)

    def write(self, value: Any, *, frozen: Optional[bool] = None) -> None:
        """Store a value. Only buffer regions are writable.

        ``frozen=True`` asserts the value is a tree of immutable atoms
        and tuples, skipping the classification walk — for hot publish
        paths whose packing layer already guarantees it (e.g.
        ``ShardSnapshot.pack``). ``frozen=False`` forces the deep-copy
        read path; ``None`` (default) classifies by inspection.
        """
        if self._provider is not None:
            raise MemoryError_(f"region {self.name!r} is provider-backed (read-only)")
        self._value = value
        self._frozen = _deeply_immutable(value) if frozen is None else frozen
        self.writes += 1

    def pin(self) -> None:
        """Pin the region for DMA (memory registration prerequisite)."""
        self.pinned = True

    def unpin(self) -> None:
        self.pinned = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "live" if self.is_live else "buf"
        return f"<MemRegion {self.name} {self.nbytes}B {kind}{' pinned' if self.pinned else ''}>"


class Memory:
    """Per-node memory: a namespace of regions."""

    def __init__(self, node_name: str, capacity_bytes: int = 1 << 30) -> None:
        self.node_name = node_name
        self.capacity_bytes = capacity_bytes
        self._regions: Dict[str, MemRegion] = {}
        self._allocated = 0

    def alloc(self, name: str, nbytes: int, value: Any = None) -> MemRegion:
        """Allocate a writable buffer region."""
        return self._add(MemRegion(name, nbytes, value=value))

    def alloc_live(self, name: str, nbytes: int, provider: Callable[[], Any]) -> MemRegion:
        """Map a provider-backed (kernel) region."""
        return self._add(MemRegion(name, nbytes, provider=provider))

    def _add(self, region: MemRegion) -> MemRegion:
        if region.name in self._regions:
            raise MemoryError_(f"region {region.name!r} already exists on {self.node_name}")
        if self._allocated + region.nbytes > self.capacity_bytes:
            raise MemoryError_(
                f"out of memory on {self.node_name}: "
                f"{self._allocated + region.nbytes} > {self.capacity_bytes}"
            )
        self._regions[region.name] = region
        self._allocated += region.nbytes
        return region

    def free(self, name: str) -> None:
        region = self._regions.get(name)
        if region is None:
            raise MemoryError_(f"no region named {name!r} on {self.node_name}")
        if region.pinned:
            raise MemoryError_(f"cannot free pinned region {name!r}")
        del self._regions[name]
        self._allocated -= region.nbytes

    def get(self, name: str) -> MemRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(f"no region named {name!r} on {self.node_name}") from None

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Memory {self.node_name} regions={len(self._regions)}>"
