"""Hardware models: CPUs, memory, NICs, switch/fabric, nodes, cluster."""

from repro.hw.memory import Memory, MemRegion
from repro.hw.node import Node
from repro.hw.cluster import ClusterSim, build_cluster

__all__ = ["ClusterSim", "MemRegion", "Memory", "Node", "build_cluster"]
