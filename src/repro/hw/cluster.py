"""Cluster builder: the paper's testbed in one call.

``build_cluster`` assembles one lightly-loaded front-end node plus N
back-end server nodes, all attached to a single non-blocking switch,
boots every kernel, and returns a :class:`ClusterSim` handle bundling
the environment, config, RNG registry and tracer that every other layer
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import SimConfig
from repro.hw.fabric import Fabric
from repro.hw.node import Node
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.tracing.span import SpanTracer


@dataclass
class ClusterSim:
    """Handle to a built cluster simulation."""

    env: Environment
    cfg: SimConfig
    rng: RngRegistry
    tracer: Tracer
    fabric: Fabric
    frontend: Node
    backends: List[Node] = field(default_factory=list)
    #: the client farm — one wide node standing in for the paper's eight
    #: dedicated client machines (never the bottleneck)
    clients: Node | None = None
    #: causal span tracer shared by every node (see repro.tracing)
    spans: SpanTracer | None = None
    #: fault-injection plane, set by FaultPlane.install() (see repro.faults)
    faults: object | None = None
    #: congestion plane, installed when cfg.congestion.enabled (see
    #: repro.congestion); None keeps the fabric byte-identical to history
    congestion: object | None = None
    #: tenancy plane, installed when cfg.tenancy.enabled (see
    #: repro.tenancy); None keeps verb posting byte-identical to history
    tenancy: object | None = None

    @property
    def nodes(self) -> List[Node]:
        """All nodes, front-end first."""
        out = [self.frontend, *self.backends]
        if self.clients is not None:
            out.append(self.clients)
        return out

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    #: monotonically increasing run-phase counter (names profile phases)
    _run_count: int = 0

    def run(self, until: int) -> None:
        """Advance the simulation to absolute time ``until``.

        With ``cfg.profile.enabled`` the advance is wrapped in its own
        cProfile session and a hotspot table for phase ``run<N>`` is
        printed on completion (see :mod:`repro.profiling`). Simulated
        time and event ordering are unaffected.
        """
        pcfg = self.cfg.profile
        if not pcfg.enabled:
            self.env.run(until=until)
            return
        from repro.profiling import profile_phase

        self._run_count += 1
        with profile_phase(pcfg, f"run{self._run_count}:t={until}"):
            self.env.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClusterSim backends={len(self.backends)} t={self.env.now}>"


def build_cluster(cfg: SimConfig | None = None) -> ClusterSim:
    """Build and boot the simulated cluster described by ``cfg``."""
    cfg = cfg if cfg is not None else SimConfig()
    cfg.validate()
    env = Environment(
        core=cfg.engine.core,
        wheel_bucket_bits=cfg.engine.wheel_bucket_bits,
        wheel_ring_bits=cfg.engine.wheel_ring_bits,
    )
    rng = RngRegistry(cfg.master_seed)
    tracer = Tracer(enabled=cfg.trace)
    spans = SpanTracer(
        env,
        rng=rng.stream("tracing"),
        sample_rate=cfg.tracing.sample_rate,
        max_spans=cfg.tracing.max_spans,
        enabled=cfg.tracing.enabled,
    )
    fabric = Fabric(env, cfg)

    frontend = Node(env, cfg, "frontend", 0, tracer=tracer)
    backends = [
        Node(env, cfg, f"backend{i}", i + 1, tracer=tracer)
        for i in range(cfg.num_backends)
    ]
    clients = Node(env, cfg, "clients", cfg.num_backends + 1, tracer=tracer,
                   num_cpus=cfg.client_cpus)
    for node in [frontend, *backends, clients]:
        fabric.attach(node.nic)
        node.span_tracer = spans
        node.boot()

    congestion = None
    if cfg.congestion.enabled:
        from repro.congestion.plane import CongestionPlane

        congestion = CongestionPlane(
            env, cfg, rng.stream("congestion"), spans=spans).install(fabric)

    tenancy = None
    if cfg.tenancy.enabled:
        from repro.tenancy.plane import TenancyPlane

        tenancy = TenancyPlane(env, cfg, spans=spans).install(
            fabric, [n.nic for n in [frontend, *backends, clients]])

    return ClusterSim(
        env=env,
        cfg=cfg,
        rng=rng,
        tracer=tracer,
        fabric=fabric,
        frontend=frontend,
        backends=backends,
        clients=clients,
        spans=spans,
        congestion=congestion,
        tenancy=tenancy,
    )
