"""Wiring: FrontendMonitor observations → rings, digests, alerts.

:class:`TelemetryPipeline` is a passive observer. Attaching it to a
:class:`~repro.monitoring.frontend.FrontendMonitor` chains onto the
monitor's observer hook (preserving any experiment observer already
installed) so every delivered :class:`LoadInfo` is fanned out to

* the bounded :class:`~repro.telemetry.ringstore.RingStore`
  (per-back-end, per-metric rings, keyed ``b<i>.<metric>``),
* one :class:`~repro.telemetry.digest.StreamingDigest` per key, and
* the :class:`~repro.telemetry.alerts.AlertEngine`.

No simulated events are scheduled and no back-end work is induced: the
pipeline costs zero simulated time by construction, preserving the
paper's one-sided-RDMA non-perturbation property (verified by
``experiments/telemetry_overhead.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.monitoring.loadinfo import LoadInfo
from repro.telemetry.alerts import (
    AlertEngine,
    AnomalyRule,
    FaultRule,
    HeartbeatRule,
    Rule,
    Severity,
    StalenessRule,
    ThresholdRule,
)
from repro.telemetry.digest import StreamingDigest
from repro.telemetry.ringstore import RingStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.frontend import FrontendMonitor
    from repro.monitoring.heartbeat import HeartbeatMonitor

#: LoadInfo fields tracked by default (staleness is derived)
DEFAULT_METRICS: Tuple[str, ...] = (
    "cpu_util",
    "runq_load",
    "nr_running",
    "irq_pressure",
    "mem_util",
    "net_rate_mbps",
    "staleness",
)


def default_rules(
    overload_above: float = 0.95,
    overload_clear: float = 0.80,
    max_staleness: int = 500_000_000,
) -> List[Rule]:
    """Stock rules: overload, run-queue anomaly, staleness, heartbeat, fault."""
    return [
        ThresholdRule(
            "overload", metric="cpu_util", fire_above=overload_above,
            clear_below=overload_clear, severity=Severity.CRITICAL, sheds=True,
        ),
        AnomalyRule("runq-anomaly", metric="runq_load", severity=Severity.WARNING),
        StalenessRule(
            "stale-loadinfo", max_staleness=max_staleness,
            severity=Severity.WARNING, sheds=False,
        ),
        HeartbeatRule(),
        FaultRule(),  # inert unless a FaultPlane is attach_faults()'d
    ]


class TelemetryPipeline:
    """The bounded metric plane for one front-end monitor."""

    def __init__(
        self,
        capacity: int = 1024,
        decimation: int = 10,
        compression: int = 1024,
        metrics: Sequence[str] = DEFAULT_METRICS,
        rules: Optional[List[Rule]] = None,
    ) -> None:
        self.metrics = tuple(metrics)
        self.store = RingStore(capacity=capacity, decimation=decimation)
        self.compression = compression
        self.engine = AlertEngine(rules if rules is not None else default_rules())
        self._digests: Dict[str, StreamingDigest] = {}
        self.observations = 0
        self._monitor: Optional["FrontendMonitor"] = None
        self._heartbeat: Optional["HeartbeatMonitor"] = None

    # ------------------------------------------------------------------
    def attach(self, monitor: "FrontendMonitor") -> "TelemetryPipeline":
        """Chain onto the monitor's observer hook (keeps any existing one)."""
        previous = monitor.observer

        def observer(backend: int, info: LoadInfo) -> None:
            if previous is not None:
                previous(backend, info)
            self.observe(backend, info)

        monitor.observer = observer
        self._monitor = monitor
        return self

    def attach_heartbeat(self, heartbeat: "HeartbeatMonitor") -> "TelemetryPipeline":
        """Surface heartbeat transitions as alerts (keeps any existing hook)."""
        previous = heartbeat.observer

        def observer(record) -> None:
            if previous is not None:
                previous(record)
            self.engine.observe_health(record)

        heartbeat.observer = observer
        self._heartbeat = heartbeat
        return self

    def attach_faults(self, plane) -> "TelemetryPipeline":
        """Surface injected faults as alerts (keeps any existing hook).

        ``plane`` is a :class:`~repro.faults.plane.FaultPlane`; requires a
        :class:`~repro.telemetry.alerts.FaultRule` in the engine's rule
        set to actually raise anything.
        """
        previous = plane.on_event

        def observer(record) -> None:
            if previous is not None:
                previous(record)
            self.engine.observe_fault(record)

        plane.on_event = observer
        return self

    def attach_federation(self, federation) -> "TelemetryPipeline":
        """Shard-level rollups + alerts from a federated root view.

        Chains onto the root monitor's ``round_observer`` (keeps any
        existing hook). Each merge round feeds per-shard aggregates —
        mean cpu_util / runq_load, max staleness, routable member count
        — into rings and digests keyed ``s<j>.<metric>``, and evaluates
        the sample-driven alert rules per shard. Shard alerts are keyed
        ``backend = -(shard + 1)``: negative ids keep them disjoint
        from per-back-end alerts and mean shedding policies (which
        match non-negative back-end indices) never act on them.
        """
        root = federation.root
        topology = federation.topology
        previous = root.round_observer

        def observer(epoch: int, latest) -> None:
            if previous is not None:
                previous(epoch, latest)
            self.observe_shards(topology, root, latest)

        root.round_observer = observer
        return self

    def attach_congestion(self, plane) -> "TelemetryPipeline":
        """Per-port congestion time series from a congestion plane.

        Chains onto the plane's ``on_event`` hook (keeps any existing
        one). Switch enqueues feed egress-queue depth and ECN mark-rate
        rings keyed ``sw<p>.depth`` / ``sw<p>.ecn_rate``; PFC pause
        frames feed ``sw<p>.pause_ns``; delivered CNPs feed the flow's
        post-cut rate under ``sw<p>.rate`` (``p`` is the victim port's
        index on the switch). Pure observation: no events scheduled, no
        simulated time spent.
        """
        previous = plane.on_event

        def observer(event: dict) -> None:
            if previous is not None:
                previous(event)
            self.observe_congestion(plane, event)

        plane.on_event = observer
        return self

    def attach_tenancy(self, plane) -> "TelemetryPipeline":
        """Per-tenant time series + offender alerts from a tenancy plane.

        Chains onto the plane's ``on_event`` hook (keeps any existing
        one). Each defense window feeds per-tenant attempted-rate rings
        keyed ``t<k>.<metric>`` and evaluates a ``tenant-offender``
        threshold rule. Tenant alerts are keyed ``backend =
        -(1000 + k + 1)``: negative ids keep them disjoint from
        per-back-end alerts (and the -1…-999 band shard rollups use),
        and shedding policies never act on them.
        """
        if not any(r.name == "tenant-offender" for r in self.engine.rules):
            self.engine.add_rule(ThresholdRule(
                "tenant-offender", metric="offending", fire_above=0.5,
                severity=Severity.WARNING, sheds=False))
        previous = plane.on_event

        def observer(event: dict) -> None:
            if previous is not None:
                previous(event)
            self.observe_tenancy(event)

        plane.on_event = observer
        return self

    def attach_scaler(self, scaler) -> "TelemetryPipeline":
        """Scaler telemetry: pool-load and active-count time series.

        Chains onto the scaler's ``observer`` hook (keeps any existing
        one). Every evaluation feeds ``scaler.mean_load`` and
        ``scaler.active`` rings/digests; scale moves additionally bump
        ``scaler.moves`` so the decision points are visible next to the
        load signal that triggered them.
        """
        previous = scaler.observer

        def observer(event: dict) -> None:
            if previous is not None:
                previous(event)
            self.observe_scaler(event)

        scaler.observer = observer
        return self

    def observe_scaler(self, event: dict) -> None:
        """Ingest one elastic-scaler event (evaluation or scale move)."""
        t = event["t"]
        if event.get("kind") == "scale":
            self.store.add("scaler.moves", t, 1.0)
            return
        sample = {
            "scaler.mean_load": float(event["mean_load"]),
            "scaler.active": float(event["active"]),
        }
        for key, value in sample.items():
            self.store.add(key, t, value)
            digest = self._digests.get(key)
            if digest is None:
                digest = self._digests[key] = StreamingDigest(self.compression)
            digest.update(value)

    def observe_tenancy(self, event: dict) -> None:
        """Ingest one tenancy-plane event (per-tenant window / action)."""
        if event.get("kind") != "tenant":
            return  # sanction actions carry no samples
        t = event["t"]
        tid = event["tenant"]
        sample = {
            "posted_mbps": float(event["posted_mbps"]),
            "qp_creates": float(event["qp_creates"]),
            "icm_misses": float(event["icm_misses"]),
            "denied": float(event["denied"]),
            "offending": float(event["offending"]),
        }
        for metric, value in sample.items():
            key = f"t{tid}.{metric}"
            self.store.add(key, t, value)
            digest = self._digests.get(key)
            if digest is None:
                digest = self._digests[key] = StreamingDigest(self.compression)
            digest.update(value)
        self.engine.observe(-(1000 + tid + 1), t, sample)

    def observe_congestion(self, plane, event: dict) -> None:
        """Ingest one congestion-plane event (enqueue / pause / cnp)."""
        kind = event["kind"]
        t = event["t"]
        if kind == "enqueue":
            samples = {f"sw{event['port']}.depth": float(event["depth"]),
                       f"sw{event['port']}.ecn_rate": float(event["mark_rate"])}
        elif kind == "pause":
            samples = {f"sw{event['port']}.pause_ns": float(event["pause_ns"])}
        elif kind == "cnp":
            port = plane.switch.port(event["dst"]).index
            samples = {f"sw{port}.rate": float(event["rate"])}
        else:  # pragma: no cover - future event kinds pass through
            return
        for key, value in samples.items():
            self.store.add(key, t, value)
            digest = self._digests.get(key)
            if digest is None:
                digest = self._digests[key] = StreamingDigest(self.compression)
            digest.update(value)

    def observe_shards(self, topology, root, latest) -> None:
        """Ingest one merged root round as per-shard aggregate samples."""
        now = root.sim.env.now
        for j in range(topology.num_shards):
            members = [g for g in topology.members(j) if g in latest]
            if not members:
                continue
            infos = [latest[g] for g in members]
            sample = {
                "cpu_util": sum(i.cpu_util for i in infos) / len(infos),
                "runq_load": sum(i.runq_load for i in infos) / len(infos),
                "staleness": float(max(i.staleness for i in infos)),
                "members": float(len(members)),
            }
            for metric, value in sample.items():
                key = f"s{j}.{metric}"
                self.store.add(key, now, value)
                digest = self._digests.get(key)
                if digest is None:
                    digest = self._digests[key] = StreamingDigest(self.compression)
                digest.update(value)
            self.engine.observe(-(j + 1), now, sample)

    # ------------------------------------------------------------------
    def observe(self, backend: int, info: LoadInfo) -> None:
        """Ingest one delivered load report (the observer body)."""
        self.observations += 1
        now = info.received_at
        sample: Dict[str, float] = {}
        for metric in self.metrics:
            value = float(getattr(info, metric))
            sample[metric] = value
            key = f"b{backend}.{metric}"
            self.store.add(key, now, value)
            digest = self._digests.get(key)
            if digest is None:
                digest = self._digests[key] = StreamingDigest(self.compression)
            digest.update(value)
        self.engine.observe(backend, now, sample)

    # ------------------------------------------------------------------
    def digest(self, backend: int, metric: str) -> Optional[StreamingDigest]:
        return self._digests.get(f"b{backend}.{metric}")

    def digests(self) -> Dict[str, StreamingDigest]:
        """All digests, keyed ``b<i>.<metric>``."""
        return dict(self._digests)

    def backends(self) -> List[int]:
        """Back-end indices observed so far."""
        seen = set()
        for key in self._digests:
            prefix, _, _ = key.partition(".")
            if prefix.startswith("b"):  # shard rollups use s<j>.<metric>
                seen.add(int(prefix[1:]))
        return sorted(seen)

    def memory_bound(self) -> int:
        """Upper bound on retained samples: 3 tiers x capacity x rings."""
        return 3 * self.store.capacity * max(1, len(self.store))

    # Convenience re-exports -------------------------------------------
    def dashboard(self, sparkline_width: int = 48) -> str:
        from repro.telemetry.export import dashboard

        return dashboard(self, sparkline_width=sparkline_width)

    def to_jsonl(self) -> str:
        from repro.telemetry.export import to_jsonl

        return to_jsonl(self)
