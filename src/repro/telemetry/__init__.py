"""Bounded metric plane over the monitoring front-end (beyond the paper).

The paper's front-end keeps only the freshest :class:`LoadInfo` per
back-end (plus an unbounded history list useful for short experiment
runs). Long-horizon deployments need the layer real monitoring planes
add on top: bounded retention with tiered downsampling, streaming
aggregates, anomaly detection, and an alert engine whose output the
control loops (load balancing, admission) can act on.

Everything here runs *on the front end only* and is driven purely by
observer callbacks — it consumes zero simulated time and zero back-end
CPU, preserving the paper's one-sided-RDMA property.

======================= =============================================
Module                  Responsibility
======================= =============================================
:mod:`~.ringstore`      fixed-capacity rings, raw → 10x → 100x tiers
:mod:`~.digest`         streaming quantiles (P² + merge digest)
:mod:`~.anomaly`        EWMA + z-score detectors
:mod:`~.alerts`         declarative rules → timestamped alerts
:mod:`~.pipeline`       wires a FrontendMonitor into all of the above
:mod:`~.export`         deterministic JSONL + ASCII dashboard
======================= =============================================
"""

from repro.telemetry.alerts import (
    Alert,
    AlertEngine,
    AnomalyRule,
    FaultRule,
    HeartbeatRule,
    Severity,
    StalenessRule,
    ThresholdRule,
)
from repro.telemetry.anomaly import AnomalyEvent, EwmaDetector
from repro.telemetry.digest import P2Quantile, QuantileDigest, StreamingDigest
from repro.telemetry.export import dashboard, to_jsonl, write_jsonl
from repro.telemetry.pipeline import TelemetryPipeline, default_rules
from repro.telemetry.ringstore import MetricRing, RingBuffer, RingStore

__all__ = [
    "Alert",
    "AlertEngine",
    "AnomalyEvent",
    "AnomalyRule",
    "EwmaDetector",
    "FaultRule",
    "HeartbeatRule",
    "MetricRing",
    "P2Quantile",
    "QuantileDigest",
    "RingBuffer",
    "RingStore",
    "Severity",
    "StalenessRule",
    "StreamingDigest",
    "TelemetryPipeline",
    "ThresholdRule",
    "dashboard",
    "default_rules",
    "to_jsonl",
    "write_jsonl",
]
