"""Streaming quantile estimation without sample retention.

Two estimators, both O(1)-memory in the stream length:

* :class:`P2Quantile` — the classic Jain & Chlamtac P² algorithm: five
  markers tracking one target quantile by piecewise-parabolic
  interpolation. Cheap, but its error is distribution-dependent.
* :class:`QuantileDigest` — a merge digest: at most ``2 · compression``
  weighted centroids kept sorted; on overflow adjacent centroids merge
  greedily under a weight cap of ``ceil(2n / compression)``. Every
  centroid therefore covers a contiguous rank range of at most that
  cap, and midpoint interpolation between adjacent centroids keeps any
  reported quantile between the exact ``q ± 3/compression`` quantiles —
  a hard rank-error bound (≤ 0.3 % at the default compression of 1024).

:class:`StreamingDigest` bundles a :class:`QuantileDigest` with running
count / mean / min / max and exposes the p50/p95/p99 the dashboard and
alert rules consume.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

import numpy as _np


class P2Quantile:
    """P² estimator for a single quantile ``q`` (Jain & Chlamtac, 1985)."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        # marker heights, positions, desired positions, increments
        self._h: List[float] = []
        self._n: List[float] = []
        self._np: List[float] = []
        self._dn = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def update(self, x: float) -> None:
        self.count += 1
        if self._h == []:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._h = list(self._initial)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                            3.0 + 2.0 * self.q, 5.0]
            return
        h, n, np_, dn = self._h, self._n, self._np, self._dn
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += dn[i]
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                sign = 1.0 if d >= 0 else -1.0
                hp = self._parabolic(i, sign)
                if h[i - 1] < hp < h[i + 1]:
                    h[i] = hp
                else:  # parabolic prediction left the bracket: linear step
                    j = i + int(sign)
                    h[i] = h[i] + sign * (h[j] - h[i]) / (n[j] - n[i])
                n[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, n = self._h, self._n
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    @property
    def value(self) -> float:
        """Current estimate (exact while fewer than five samples seen)."""
        if self.count == 0:
            return 0.0
        if self._h == []:
            ordered = sorted(self._initial)
            idx = min(len(ordered) - 1, int(round(self.q * (len(ordered) - 1))))
            return ordered[idx]
        return self._h[2]


class QuantileDigest:
    """Mergeable weighted-centroid digest with a bounded rank error."""

    def __init__(self, compression: int = 1024) -> None:
        if compression < 8:
            raise ValueError("compression must be >= 8")
        self.compression = compression
        self._vals: List[float] = []  # sorted centroid values
        self._wts: List[int] = []  # aligned weights
        self.count = 0

    def update(self, x: float) -> None:
        i = bisect.bisect_left(self._vals, x)
        self._vals.insert(i, x)
        self._wts.insert(i, 1)
        self.count += 1
        if len(self._vals) > 2 * self.compression:
            self._compact()

    def _compact(self) -> None:
        """Greedy adjacent merging under a weight cap.

        The cap ``ceil(2n / compression)`` bounds every centroid's rank
        span; because any two adjacent surviving groups jointly exceed
        the cap, at most ``compression + 1`` centroids remain.
        """
        cap = max(2, -(-2 * self.count // self.compression))
        vals, wts = self._vals, self._wts
        new_vals: List[float] = [vals[0]]
        new_wts: List[int] = [wts[0]]
        acc_v = vals[0]
        acc_w = wts[0]
        for i in range(1, len(vals)):
            v = vals[i]
            w = wts[i]
            merged = acc_w + w
            if merged <= cap:
                acc_v = (acc_v * acc_w + v * w) / merged
                acc_w = merged
                new_vals[-1] = acc_v
                new_wts[-1] = acc_w
            else:
                new_vals.append(v)
                new_wts.append(w)
                acc_v = v
                acc_w = w
        self._vals, self._wts = new_vals, new_wts

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other``'s centroids into this digest (in place).

        Each incoming centroid lands at its sorted position with its
        weight intact, then the usual compaction cap applies. A single
        merge therefore adds at most one compaction's worth of rank
        error on top of each input's own bound: a two-level merge
        (shards → global) stays within ``2 · 3/compression`` of the
        exact combined-stream quantiles (see docs/FEDERATION.md).

        The merge is a single vectorised sort rather than per-centroid
        ``bisect``+``insert`` (the root re-merges every shard digest
        each round, so this is a hot path). Tie-breaking reproduces the
        sequential ``bisect_left`` replay exactly — incoming centroids
        sort before existing equals, and runs of equal incoming values
        end up in reversed arrival order — so the result is
        byte-identical to the historical loop.
        """
        ov, ow = other._vals, other._wts
        if ov:
            sv, sw = self._vals, self._wts
            n, m = len(sv), len(ov)
            vals = _np.empty(n + m)
            vals[:m] = ov
            vals[m:] = sv
            grp = _np.empty(n + m, dtype=_np.int64)
            grp[:m] = 0
            grp[m:] = 1
            rank = _np.empty(n + m, dtype=_np.int64)
            rank[:m] = -_np.arange(m)
            rank[m:] = _np.arange(n)
            order = _np.lexsort((rank, grp, vals))
            wts = _np.empty(n + m, dtype=_np.int64)
            wts[:m] = ow
            wts[m:] = sw
            self._vals = vals[order].tolist()
            self._wts = wts[order].tolist()
        self.count += other.count
        if len(self._vals) > 2 * self.compression:
            self._compact()
        return self

    def to_state(self) -> tuple:
        """All-immutable snapshot, cheap to ship through a DMA'd buffer.

        Nested tuples of numbers deep-copy by identity, so packing a
        digest into a registered memory region costs O(centroids) once
        at publish time and nothing at read time.
        """
        return (self.compression, self.count,
                tuple(self._vals), tuple(self._wts))

    @classmethod
    def from_state(cls, state: tuple) -> "QuantileDigest":
        compression, count, vals, wts = state
        qd = cls(compression)
        qd.count = count
        qd._vals = list(vals)
        qd._wts = list(wts)
        return qd

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (midpoint-rank interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._vals:
            return 0.0
        target = q * self.count
        cum = 0.0
        prev_mid = None
        prev_val = self._vals[0]
        for v, w in zip(self._vals, self._wts):
            mid = cum + w / 2.0
            if target <= mid:
                if prev_mid is None:
                    return v
                # Interpolate between neighbouring centroid midpoints.
                # The a*(1-f) + b*f form is exact at both endpoints and,
                # with the clamp, keeps estimates inside [prev_val, v] so
                # quantile() stays weakly monotone in q despite rounding.
                frac = (target - prev_mid) / (mid - prev_mid)
                est = prev_val * (1.0 - frac) + v * frac
                return min(max(est, prev_val), v)
            prev_mid, prev_val = mid, v
            cum += w
        return self._vals[-1]

    def __len__(self) -> int:
        return len(self._vals)


class StreamingDigest:
    """Count / mean / min / max plus quantiles, all streaming."""

    __slots__ = ("count", "mean", "lo", "hi", "_m2", "_qd")

    def __init__(self, compression: int = 1024) -> None:
        self.count = 0
        self.mean = 0.0
        self.lo = float("inf")
        self.hi = float("-inf")
        self._m2 = 0.0
        self._qd = QuantileDigest(compression)

    def update(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.lo:
            self.lo = x
        if x > self.hi:
            self.hi = x
        self._qd.update(x)

    def merge(self, other: "StreamingDigest") -> "StreamingDigest":
        """Fold ``other`` into this digest (parallel Welford combine).

        Count/mean/m2 combine exactly (Chan et al.); min/max are exact;
        quantiles inherit :meth:`QuantileDigest.merge`'s bound.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.mean, self._m2 = other.mean, other._m2
        else:
            total = self.count + other.count
            delta = other.mean - self.mean
            self.mean += delta * other.count / total
            self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count += other.count
        self.lo = min(self.lo, other.lo)
        self.hi = max(self.hi, other.hi)
        self._qd.merge(other._qd)
        return self

    def to_state(self) -> tuple:
        """All-immutable snapshot (see :meth:`QuantileDigest.to_state`)."""
        return (self.count, self.mean, self.lo, self.hi, self._m2,
                self._qd.to_state())

    @classmethod
    def from_state(cls, state: tuple) -> "StreamingDigest":
        count, mean, lo, hi, m2, qd_state = state
        sd = cls(qd_state[0])
        sd.count, sd.mean, sd.lo, sd.hi, sd._m2 = count, mean, lo, hi, m2
        sd._qd = QuantileDigest.from_state(qd_state)
        return sd

    def quantile(self, q: float) -> float:
        return self._qd.quantile(q)

    @property
    def p50(self) -> float:
        return self._qd.quantile(0.50)

    @property
    def p95(self) -> float:
        return self._qd.quantile(0.95)

    @property
    def p99(self) -> float:
        return self._qd.quantile(0.99)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return self.variance ** 0.5

    @property
    def maximum(self) -> float:
        return self.hi if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self.lo if self.count else 0.0

    def summary(self) -> dict:
        """Plain-dict summary (stable key order for export)."""
        return {
            "count": self.count,
            "mean": self.mean if self.count else 0.0,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def exact_quantiles(values: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Reference implementation (sort + linear interpolation), for tests."""
    ordered = sorted(values)
    out = []
    n = len(ordered)
    for q in qs:
        if n == 0:
            out.append(0.0)
            continue
        pos = q * (n - 1)
        i = int(pos)
        frac = pos - i
        hi: Optional[float] = ordered[min(i + 1, n - 1)]
        out.append(ordered[i] * (1 - frac) + hi * frac)
    return out
