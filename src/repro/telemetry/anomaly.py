"""EWMA + z-score anomaly detection over monitored metrics.

The detector keeps exponentially-weighted estimates of a metric's mean
and variance (Roberts' EWMA control chart). A sample whose deviation
from the EWMA mean exceeds ``z_threshold`` standard deviations is an
anomaly — the load-plane analogue of "this back-end just left its
recent operating regime", which matters to the balancer long before a
fixed threshold would trip.

Detection is asymmetric-friendly: callers may care only about upward
excursions (overload) — set ``direction="above"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class AnomalyEvent:
    """One detected excursion."""

    time: int
    value: float
    mean: float
    std: float
    zscore: float

    def describe(self) -> str:
        return (f"value {self.value:.4g} deviates {self.zscore:.1f} sigma "
                f"from EWMA mean {self.mean:.4g}")


class EwmaDetector:
    """Streaming z-score detector with EWMA mean/variance tracking."""

    def __init__(
        self,
        alpha: float = 0.1,
        z_threshold: float = 3.0,
        warmup: int = 16,
        min_std: float = 1e-9,
        direction: str = "both",
    ) -> None:
        """``warmup``: samples absorbed before any detection fires.
        ``min_std``: variance floor so a flat-lined metric does not turn
        every later wiggle into an infinite z-score."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if direction not in ("both", "above", "below"):
            raise ValueError("direction must be 'both', 'above' or 'below'")
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.warmup = warmup
        self.min_std = min_std
        self.direction = direction
        self.mean = 0.0
        self.var = 0.0
        self.samples = 0
        self.anomalies = 0

    def update(self, time: int, value: float) -> Optional[AnomalyEvent]:
        """Feed one sample; returns an event when it is anomalous.

        Anomalous samples still update the EWMA (with the same alpha),
        so a *sustained* shift re-baselines within ~1/alpha samples and
        stops firing — the alert layer's hysteresis decides how long the
        condition stays raised.
        """
        self.samples += 1
        if self.samples <= self.warmup:
            # Seed with plain running estimates to avoid cold-start bias.
            delta = value - self.mean
            self.mean += delta / self.samples
            self.var += (delta * (value - self.mean) - self.var) / self.samples
            return None
        std = max(self.min_std, self.var ** 0.5)
        z = (value - self.mean) / std
        event: Optional[AnomalyEvent] = None
        fires = (
            abs(z) >= self.z_threshold
            if self.direction == "both"
            else (z >= self.z_threshold if self.direction == "above" else -z >= self.z_threshold)
        )
        if fires:
            self.anomalies += 1
            event = AnomalyEvent(time=time, value=value, mean=self.mean, std=std, zscore=z)
        diff = value - self.mean
        incr = self.alpha * diff
        self.mean += incr
        self.var = (1.0 - self.alpha) * (self.var + diff * incr)
        return event
