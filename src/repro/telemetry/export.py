"""Deterministic export of the telemetry plane.

Two renderings of one :class:`~repro.telemetry.pipeline.TelemetryPipeline`:

* :func:`to_jsonl` — one JSON object per line (meta, per-metric
  summaries, alert log), keys sorted and ordering fixed by metric name,
  so identical runs produce byte-identical output;
* :func:`dashboard` — the terminal view: per-back-end digest table,
  CPU sparklines from the raw retention tier, and the alert log, built
  on :mod:`repro.analysis.report` like every other figure in the repo.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, List, Sequence

from repro.analysis.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.pipeline import TelemetryPipeline

#: glyph ramp for sparklines (ASCII-only, like the rest of the repo)
SPARK_GLYPHS = " .:-=+*#%@"


def _round(x: float, digits: int = 6) -> float:
    """Stable rounding so JSONL output is platform-independent."""
    return round(float(x), digits)


def to_jsonl(pipeline: "TelemetryPipeline") -> str:
    """Serialise the pipeline state as deterministic JSON lines."""
    lines: List[str] = []

    def emit(obj: dict) -> None:
        lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))

    emit({
        "kind": "meta",
        "observations": pipeline.observations,
        "capacity": pipeline.store.capacity,
        "decimation": pipeline.store.decimation,
        "metrics": sorted(pipeline.metrics),
        "rules": sorted(r.name for r in pipeline.engine.rules),
    })
    digests = pipeline.digests()
    for key in sorted(digests):
        summary = digests[key].summary()
        ring = pipeline.store.get(key)
        emit({
            "kind": "metric",
            "key": key,
            "count": summary["count"],
            "mean": _round(summary["mean"]),
            "min": _round(summary["min"]),
            "max": _round(summary["max"]),
            "p50": _round(summary["p50"]),
            "p95": _round(summary["p95"]),
            "p99": _round(summary["p99"]),
            "retained": len(ring.raw) if ring is not None else 0,
            "dropped": ring.raw.dropped if ring is not None else 0,
        })
    for alert in pipeline.engine.log:
        emit({
            "kind": "alert",
            "time": alert.time,
            "rule": alert.rule,
            "backend": alert.backend,
            "severity": alert.severity.name,
            "metric": alert.metric,
            "value": _round(alert.value),
            "message": alert.message,
            "cleared": alert.cleared,
        })
    return "\n".join(lines) + "\n"


def write_jsonl(pipeline: "TelemetryPipeline", path) -> None:
    with open(path, "w") as fh:
        fh.write(to_jsonl(pipeline))


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render the newest ``width`` values as a one-line ASCII ramp."""
    vals = list(values)[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return SPARK_GLYPHS[0] * len(vals)
    ramp = len(SPARK_GLYPHS) - 1
    return "".join(SPARK_GLYPHS[round((v - lo) / span * ramp)] for v in vals)


def dashboard(pipeline: "TelemetryPipeline", sparkline_width: int = 48) -> str:
    """The terminal dashboard: digests, sparklines, active + logged alerts."""
    sections: List[str] = ["== TELEMETRY DASHBOARD =="]

    rows = []
    for backend in pipeline.backends():
        cpu = pipeline.digest(backend, "cpu_util")
        runq = pipeline.digest(backend, "runq_load")
        stale = pipeline.digest(backend, "staleness")
        active = [a for a in pipeline.engine.active_alerts() if a.backend == backend]
        rows.append([
            f"backend{backend}",
            cpu.count if cpu else 0,
            f"{cpu.p50:.2f}" if cpu else "-",
            f"{cpu.p95:.2f}" if cpu else "-",
            f"{cpu.p99:.2f}" if cpu else "-",
            f"{runq.p95:.1f}" if runq else "-",
            f"{stale.p95 / 1e6:.1f}" if stale else "-",
            ",".join(sorted({a.rule for a in active})) or "-",
        ])
    sections.append(format_table(
        ["backend", "polls", "cpu p50", "cpu p95", "cpu p99",
         "runq p95", "stale p95 ms", "active alerts"],
        rows,
        title="Per-backend load digests",
    ))

    spark_rows = []
    for backend in pipeline.backends():
        ring = pipeline.store.get(f"b{backend}.cpu_util")
        if ring is None:
            continue
        spark_rows.append(
            f"backend{backend} cpu [{sparkline(ring.values(), sparkline_width)}]")
    if spark_rows:
        sections.append("CPU utilisation (raw tier, oldest -> newest):")
        sections.append("\n".join(spark_rows))

    log = pipeline.engine.log
    if log:
        alert_rows = [
            [f"{a.time / 1e9:.3f}s", a.rule, f"backend{a.backend}",
             "cleared" if a.cleared else a.severity.name, a.message]
            for a in log
        ]
        sections.append(format_table(
            ["time", "rule", "backend", "state", "detail"],
            alert_rows,
            title=f"Alert log ({sum(1 for a in log if not a.cleared)} raised)",
        ))
    else:
        sections.append("Alert log: empty")

    counts = pipeline.engine.counts_by_rule()
    if counts:
        sections.append("Raised by rule: " + ", ".join(
            f"{name}={n}" for name, n in sorted(counts.items())))
    return "\n\n".join(sections)
