"""Deterministic export of the telemetry plane.

Two renderings of one :class:`~repro.telemetry.pipeline.TelemetryPipeline`:

* :func:`to_jsonl` — one JSON object per line (meta, per-metric
  summaries, alert log), keys sorted and ordering fixed by metric name,
  so identical runs produce byte-identical output;
* :func:`dashboard` — the terminal view: per-back-end digest table,
  CPU sparklines from the raw retention tier, and the alert log, built
  on :mod:`repro.analysis.report` like every other figure in the repo.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, List, Sequence

from repro.analysis.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.pipeline import TelemetryPipeline

#: glyph ramp for sparklines (ASCII-only, like the rest of the repo)
SPARK_GLYPHS = " .:-=+*#%@"

#: rendering of empty / all-NaN series in the dashboard
NO_DATA = "<no data>"


def _round(x: float, digits: int = 6):
    """Stable rounding so JSONL output is platform-independent.

    Non-finite values round to ``None`` (JSON ``null``): ``json.dumps``
    would otherwise emit bare ``NaN``/``Infinity`` tokens, which are not
    JSON and break downstream parsers.
    """
    x = float(x)
    if math.isnan(x) or math.isinf(x):
        return None
    return round(x, digits)


def to_jsonl(pipeline: "TelemetryPipeline") -> str:
    """Serialise the pipeline state as deterministic JSON lines."""
    lines: List[str] = []

    def emit(obj: dict) -> None:
        lines.append(json.dumps(obj, sort_keys=True, separators=(",", ":")))

    emit({
        "kind": "meta",
        "observations": pipeline.observations,
        "capacity": pipeline.store.capacity,
        "decimation": pipeline.store.decimation,
        "metrics": sorted(pipeline.metrics),
        "rules": sorted(r.name for r in pipeline.engine.rules),
    })
    digests = pipeline.digests()
    for key in sorted(digests):
        summary = digests[key].summary()
        ring = pipeline.store.get(key)
        emit({
            "kind": "metric",
            "key": key,
            "count": summary["count"],
            "mean": _round(summary["mean"]),
            "min": _round(summary["min"]),
            "max": _round(summary["max"]),
            "p50": _round(summary["p50"]),
            "p95": _round(summary["p95"]),
            "p99": _round(summary["p99"]),
            "retained": len(ring.raw) if ring is not None else 0,
            "dropped": ring.raw.dropped if ring is not None else 0,
        })
    for alert in pipeline.engine.log:
        emit({
            "kind": "alert",
            "time": alert.time,
            "rule": alert.rule,
            "backend": alert.backend,
            "severity": alert.severity.name,
            "metric": alert.metric,
            "value": _round(alert.value),
            "message": alert.message,
            "cleared": alert.cleared,
        })
    return "\n".join(lines) + "\n"


def write_jsonl(pipeline: "TelemetryPipeline", path) -> None:
    with open(path, "w") as fh:
        fh.write(to_jsonl(pipeline))


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render the newest ``width`` values as a one-line ASCII ramp.

    Empty and all-NaN windows render as ``<no data>`` rather than an
    empty string (or a ``ValueError`` from rounding NaN); isolated NaN
    samples render as ``?`` so gaps stay visible without distorting the
    scale of the finite neighbours.
    """
    vals = [float(v) for v in list(values)[-width:]]
    finite = [v for v in vals if not (math.isnan(v) or math.isinf(v))]
    if not finite:
        return NO_DATA
    lo, hi = min(finite), max(finite)
    span = hi - lo
    ramp = len(SPARK_GLYPHS) - 1

    def glyph(v: float) -> str:
        if math.isnan(v):
            return "?"
        if math.isinf(v):
            return SPARK_GLYPHS[-1] if v > 0 else SPARK_GLYPHS[0]
        if span <= 0:
            return SPARK_GLYPHS[0]
        return SPARK_GLYPHS[round((v - lo) / span * ramp)]

    return "".join(glyph(v) for v in vals)


def dashboard(pipeline: "TelemetryPipeline", sparkline_width: int = 48) -> str:
    """The terminal dashboard: digests, sparklines, active + logged alerts."""
    sections: List[str] = ["== TELEMETRY DASHBOARD =="]

    def cell(digest, attr: str, fmt: str, scale: float = 1.0) -> str:
        # A digest that exists but has seen no samples would render its
        # 0.0 placeholder quantiles as real measurements — show the
        # explicit marker instead.
        if digest is None or digest.count == 0:
            return NO_DATA
        value = getattr(digest, attr) / scale
        if math.isnan(value) or math.isinf(value):
            return NO_DATA
        return f"{value:{fmt}}"

    rows = []
    for backend in pipeline.backends():
        cpu = pipeline.digest(backend, "cpu_util")
        runq = pipeline.digest(backend, "runq_load")
        stale = pipeline.digest(backend, "staleness")
        active = [a for a in pipeline.engine.active_alerts() if a.backend == backend]
        rows.append([
            f"backend{backend}",
            cpu.count if cpu else 0,
            cell(cpu, "p50", ".2f"),
            cell(cpu, "p95", ".2f"),
            cell(cpu, "p99", ".2f"),
            cell(runq, "p95", ".1f"),
            cell(stale, "p95", ".1f", scale=1e6),
            ",".join(sorted({a.rule for a in active})) or "-",
        ])
    if rows:
        sections.append(format_table(
            ["backend", "polls", "cpu p50", "cpu p95", "cpu p99",
             "runq p95", "stale p95 ms", "active alerts"],
            rows,
            title="Per-backend load digests",
        ))
    else:
        sections.append(f"Per-backend load digests: {NO_DATA}")

    spark_rows = []
    for backend in pipeline.backends():
        ring = pipeline.store.get(f"b{backend}.cpu_util")
        values = ring.values() if ring is not None else []
        spark_rows.append(
            f"backend{backend} cpu [{sparkline(values, sparkline_width)}]")
    if spark_rows:
        sections.append("CPU utilisation (raw tier, oldest -> newest):")
        sections.append("\n".join(spark_rows))

    dropped = sum(pipeline.store.get(n).raw.dropped
                  for n in pipeline.store.names())
    retained = sum(len(pipeline.store.get(n).raw)
                   for n in pipeline.store.names())
    sections.append(
        f"Retention: observations={pipeline.observations} "
        f"retained={retained} dropped={dropped}")

    log = pipeline.engine.log
    if log:
        alert_rows = [
            [f"{a.time / 1e9:.3f}s", a.rule, f"backend{a.backend}",
             "cleared" if a.cleared else a.severity.name, a.message]
            for a in log
        ]
        sections.append(format_table(
            ["time", "rule", "backend", "state", "detail"],
            alert_rows,
            title=f"Alert log ({sum(1 for a in log if not a.cleared)} raised)",
        ))
    else:
        sections.append("Alert log: empty")

    counts = pipeline.engine.counts_by_rule()
    if counts:
        sections.append("Raised by rule: " + ", ".join(
            f"{name}={n}" for name, n in sorted(counts.items())))
    return "\n\n".join(sections)
