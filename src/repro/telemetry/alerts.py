"""Declarative alert rules over the telemetry stream.

Rules are small objects evaluated per (back-end, sample); each decides
whether its *condition* holds and the engine turns condition edges into
timestamped :class:`Alert` records with hysteresis:

* an alert is **raised** once, when the condition first holds;
* it stays **active** — no re-firing, no flapping — until the rule's
  clear condition holds;
* clearing appends a companion record with ``cleared=True``.

Four rule families cover the monitoring plane's needs:

=================== ==================================================
:class:`ThresholdRule`  metric crosses ``fire_above``; clears below
                        ``clear_below`` (the hysteresis band)
:class:`AnomalyRule`    an :class:`~repro.telemetry.anomaly.EwmaDetector`
                        per back-end flags a z-score excursion
:class:`StalenessRule`  delivered load information is older than a bound
:class:`HeartbeatRule`  heartbeat transitions (HUNG / DEAD) from
                        :class:`~repro.monitoring.heartbeat.HeartbeatMonitor`
=================== ==================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.anomaly import EwmaDetector


class Severity(enum.IntEnum):
    """Ordered so comparisons like ``sev >= Severity.WARNING`` work."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2


@dataclass
class Alert:
    """One raised (or cleared) condition on one back-end."""

    time: int
    rule: str
    backend: int
    severity: Severity
    metric: str
    value: float
    message: str
    cleared: bool = False

    def describe(self) -> str:
        state = "cleared" if self.cleared else self.severity.name
        return f"[{state}] backend{self.backend} {self.rule}: {self.message}"


class Rule:
    """Base class: evaluates one sample for one back-end."""

    #: rules whose active alerts should make shedding policies react
    sheds: bool = False

    def __init__(self, name: str, severity: Severity = Severity.WARNING) -> None:
        self.name = name
        self.severity = severity

    def evaluate(self, backend: int, time: int, metrics: Dict[str, float]) -> Tuple[bool, str]:
        """Return (condition_holds, message)."""
        raise NotImplementedError

    def clears(self, backend: int, time: int, metrics: Dict[str, float]) -> bool:
        """Whether an active alert should clear (default: condition gone)."""
        holds, _ = self.evaluate(backend, time, metrics)
        return not holds


class ThresholdRule(Rule):
    """``metric >= fire_above`` raises; ``metric <= clear_below`` clears.

    The gap between the two bounds is the hysteresis band: a metric
    oscillating inside it neither re-raises nor clears.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        fire_above: float,
        clear_below: Optional[float] = None,
        severity: Severity = Severity.WARNING,
        sheds: bool = False,
    ) -> None:
        super().__init__(name, severity)
        self.metric = metric
        self.fire_above = fire_above
        self.clear_below = clear_below if clear_below is not None else fire_above
        if self.clear_below > self.fire_above:
            raise ValueError("clear_below must not exceed fire_above")
        self.sheds = sheds

    def evaluate(self, backend, time, metrics):
        value = metrics.get(self.metric)
        if value is None:
            return False, ""
        return value >= self.fire_above, (
            f"{self.metric}={value:.4g} >= {self.fire_above:.4g}")

    def clears(self, backend, time, metrics):
        value = metrics.get(self.metric)
        if value is None:
            return False
        return value <= self.clear_below


class AnomalyRule(Rule):
    """z-score excursions on one metric, one detector per back-end."""

    def __init__(
        self,
        name: str,
        metric: str,
        severity: Severity = Severity.WARNING,
        detector_factory: Optional[Callable[[], EwmaDetector]] = None,
        clear_after: int = 8,
    ) -> None:
        """``clear_after``: consecutive non-anomalous samples that clear
        an active anomaly alert."""
        super().__init__(name, severity)
        self.metric = metric
        self.detector_factory = detector_factory or EwmaDetector
        self.clear_after = clear_after
        self._detectors: Dict[int, EwmaDetector] = {}
        self._quiet: Dict[int, int] = {}

    def _detector(self, backend: int) -> EwmaDetector:
        det = self._detectors.get(backend)
        if det is None:
            det = self._detectors[backend] = self.detector_factory()
        return det

    def evaluate(self, backend, time, metrics):
        value = metrics.get(self.metric)
        if value is None:
            return False, ""
        event = self._detector(backend).update(time, value)
        if event is None:
            self._quiet[backend] = self._quiet.get(backend, 0) + 1
            return False, ""
        self._quiet[backend] = 0
        return True, f"{self.metric} {event.describe()}"

    def clears(self, backend, time, metrics):
        # evaluate() already ran this sample (engine evaluates first).
        return self._quiet.get(backend, 0) >= self.clear_after


class StalenessRule(Rule):
    """Load information delivered older than ``max_staleness`` ns."""

    def __init__(
        self,
        name: str,
        max_staleness: int,
        severity: Severity = Severity.WARNING,
        sheds: bool = False,
    ) -> None:
        super().__init__(name, severity)
        self.max_staleness = max_staleness
        self.sheds = sheds

    def evaluate(self, backend, time, metrics):
        staleness = metrics.get("staleness")
        if staleness is None:
            return False, ""
        return staleness > self.max_staleness, (
            f"report {staleness / 1e6:.1f} ms old > "
            f"{self.max_staleness / 1e6:.1f} ms bound")


class HeartbeatRule(Rule):
    """Raises on HUNG / DEAD heartbeat transitions, clears on ALIVE.

    Driven by :meth:`AlertEngine.observe_health`, not per-sample
    evaluation — heartbeat state is edge-triggered already.
    """

    def __init__(self, name: str = "heartbeat-miss",
                 severity: Severity = Severity.CRITICAL,
                 sheds: bool = True) -> None:
        super().__init__(name, severity)
        self.sheds = sheds

    def evaluate(self, backend, time, metrics):
        return False, ""  # never sample-driven


class FaultRule(Rule):
    """Mirrors injected faults from the fault plane as alerts.

    Driven by :meth:`AlertEngine.observe_fault` with
    :class:`~repro.faults.plane.FaultRecord` events: a fault targeting a
    specific back-end raises on apply and clears on revoke/recover.
    Cluster-wide faults (partitions, link mods between non-backends)
    carry ``backend == -1`` and are logged but never raised per-backend.
    """

    def __init__(self, name: str = "fault-injected",
                 severity: Severity = Severity.WARNING,
                 sheds: bool = False) -> None:
        super().__init__(name, severity)
        self.sheds = sheds

    def evaluate(self, backend, time, metrics):
        return False, ""  # never sample-driven


class AlertEngine:
    """Evaluates rules and owns the alert log + active set."""

    def __init__(self, rules: Optional[List[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules else []
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError("rule names must be unique")
        #: every raise/clear ever, in time order
        self.log: List[Alert] = []
        self._active: Dict[Tuple[str, int], Alert] = {}

    def add_rule(self, rule: Rule) -> None:
        if any(r.name == rule.name for r in self.rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)

    # ------------------------------------------------------------------
    def observe(self, backend: int, time: int, metrics: Dict[str, float]) -> List[Alert]:
        """Evaluate every sample-driven rule against one observation."""
        raised: List[Alert] = []
        for rule in self.rules:
            if isinstance(rule, (HeartbeatRule, FaultRule)):
                continue  # event-driven: observe_health / observe_fault only
            key = (rule.name, backend)
            # Always evaluate: stateful rules (anomaly detectors) must see
            # every sample even while their alert is active.
            holds, message = rule.evaluate(backend, time, metrics)
            active = self._active.get(key)
            if active is None:
                if holds:
                    alert = Alert(
                        time=time, rule=rule.name, backend=backend,
                        severity=rule.severity, metric=getattr(rule, "metric", ""),
                        value=metrics.get(getattr(rule, "metric", ""), 0.0),
                        message=message,
                    )
                    self._active[key] = alert
                    self.log.append(alert)
                    raised.append(alert)
            elif rule.clears(backend, time, metrics):
                self._clear(key, time)
        return raised

    def observe_health(self, record) -> Optional[Alert]:
        """Feed one heartbeat :class:`HealthRecord` transition."""
        from repro.monitoring.heartbeat import NodeHealth

        for rule in self.rules:
            if not isinstance(rule, HeartbeatRule):
                continue
            key = (rule.name, record.backend)
            if record.state is NodeHealth.ALIVE:
                if key in self._active:
                    self._clear(key, record.time)
                return None
            if key in self._active:
                return None  # already raised (e.g. HUNG escalating to DEAD)
            alert = Alert(
                time=record.time, rule=rule.name, backend=record.backend,
                severity=rule.severity, metric="heartbeat", value=0.0,
                message=f"node reported {record.state.value}",
            )
            self._active[key] = alert
            self.log.append(alert)
            return alert
        return None

    def observe_fault(self, record) -> Optional[Alert]:
        """Feed one fault-plane :class:`~repro.faults.plane.FaultRecord`.

        Applying a fault that targets a back-end raises the
        :class:`FaultRule` alert for it; revoking (or recovering) clears.
        """
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                continue
            if record.backend < 0:
                return None
            key = (rule.name, record.backend)
            if not record.active or record.kind == "recover":
                # Windowed fault revoked, or an explicit recover action
                # undoing a crash/hang: the condition is gone.
                if key in self._active:
                    self._clear(key, record.time)
                return None
            if key in self._active:
                return None  # one alert per backend while any fault holds
            alert = Alert(
                time=record.time, rule=rule.name, backend=record.backend,
                severity=rule.severity, metric="fault", value=0.0,
                message=f"{record.kind} on {record.target}",
            )
            self._active[key] = alert
            self.log.append(alert)
            return alert
        return None

    def _clear(self, key: Tuple[str, int], time: int) -> None:
        active = self._active.pop(key)
        self.log.append(Alert(
            time=time, rule=active.rule, backend=active.backend,
            severity=active.severity, metric=active.metric,
            value=active.value, message=active.message, cleared=True,
        ))

    # ------------------------------------------------------------------
    def active_alerts(self, min_severity: Severity = Severity.INFO) -> List[Alert]:
        return sorted(
            (a for a in self._active.values() if a.severity >= min_severity),
            key=lambda a: (a.time, a.rule, a.backend),
        )

    def is_active(self, rule_name: str, backend: int) -> bool:
        return (rule_name, backend) in self._active

    def shed_backends(self, min_severity: Severity = Severity.CRITICAL) -> List[int]:
        """Back-ends with an active alert from a ``sheds`` rule."""
        shedding_rules = {r.name for r in self.rules if r.sheds}
        return sorted({
            backend for (name, backend), alert in self._active.items()
            if name in shedding_rules and alert.severity >= min_severity
        })

    def counts_by_rule(self) -> Dict[str, int]:
        """Raised (non-cleared) alert counts per rule, for reporting."""
        counts: Dict[str, int] = {}
        for alert in self.log:
            if not alert.cleared:
                counts[alert.rule] = counts.get(alert.rule, 0) + 1
        return counts
