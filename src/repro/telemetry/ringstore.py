"""Fixed-capacity time-series retention with tiered downsampling.

A :class:`MetricRing` keeps three tiers of (time, value) samples:

* **raw** — every sample, newest ``capacity`` retained;
* **mid** — one aggregate per ``decimation`` raw samples (default 10x);
* **coarse** — one aggregate per ``decimation²`` raw samples (100x).

Each tier is a :class:`RingBuffer` of the same capacity, so total
memory is O(3 · capacity) *regardless of run length* while the coarse
tier still spans ``decimation² · capacity`` polls of history — the
classic RRDtool/TSDB retention trade. Aggregates carry the block mean
plus min/max so downsampling never hides a spike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(slots=True)
class Aggregate:
    """One downsampled block: ``time`` is the block's last sample time."""

    time: int
    mean: float
    lo: float
    hi: float
    count: int


class RingBuffer:
    """Preallocated circular buffer of (time, value-like) entries."""

    __slots__ = ("capacity", "_buf", "_head", "_len", "pushed")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._buf: List[object] = [None] * capacity
        self._head = 0  # next write slot
        self._len = 0
        #: total appends ever (monotonic, survives wrap)
        self.pushed = 0

    def append(self, item: object) -> None:
        self._buf[self._head] = item
        self._head = (self._head + 1) % self.capacity
        self._len = min(self._len + 1, self.capacity)
        self.pushed += 1

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[object]:
        """Oldest → newest."""
        start = (self._head - self._len) % self.capacity
        for i in range(self._len):
            yield self._buf[(start + i) % self.capacity]

    def last(self, n: int) -> List[object]:
        """The newest ``n`` entries (fewer if the ring holds fewer)."""
        n = min(n, self._len)
        out = []
        for i in range(n):
            out.append(self._buf[(self._head - n + i) % self.capacity])
        return out

    @property
    def dropped(self) -> int:
        """How many entries have been overwritten by wrap-around."""
        return self.pushed - self._len


class MetricRing:
    """Three-tier bounded retention for one metric."""

    def __init__(self, capacity: int = 1024, decimation: int = 10) -> None:
        if decimation < 2:
            raise ValueError("decimation factor must be >= 2")
        self.capacity = capacity
        self.decimation = decimation
        self.raw = RingBuffer(capacity)
        self.mid = RingBuffer(capacity)
        self.coarse = RingBuffer(capacity)
        self._acc = [_BlockAcc(), _BlockAcc()]  # raw→mid, mid→coarse

    def add(self, time: int, value: float) -> None:
        self.raw.append((time, value))
        agg = self._acc[0].feed(time, value, value, value, 1, self.decimation)
        if agg is not None:
            self.mid.append(agg)
            agg2 = self._acc[1].feed(
                agg.time, agg.mean, agg.lo, agg.hi, agg.count, self.decimation
            )
            if agg2 is not None:
                self.coarse.append(agg2)

    # ------------------------------------------------------------------
    def raw_samples(self) -> List[Tuple[int, float]]:
        return list(self.raw)  # type: ignore[arg-type]

    def values(self) -> List[float]:
        return [v for _, v in self.raw]  # type: ignore[misc]

    def tier(self, name: str) -> RingBuffer:
        try:
            return {"raw": self.raw, "mid": self.mid, "coarse": self.coarse}[name]
        except KeyError:
            raise KeyError(f"unknown tier {name!r}") from None

    def span(self) -> Optional[Tuple[int, int]]:
        """(oldest, newest) data time across all tiers, None when empty."""
        oldest: Optional[int] = None
        for ring in (self.coarse, self.mid, self.raw):
            for entry in ring:
                t = entry.time if isinstance(entry, Aggregate) else entry[0]
                oldest = t if oldest is None else min(oldest, t)
                break
        newest = None
        tail = self.raw.last(1)
        if tail:
            newest = tail[0][0]
        if oldest is None or newest is None:
            return None
        return oldest, newest


class _BlockAcc:
    """Accumulates one decimation block."""

    __slots__ = ("n", "total", "weight", "lo", "hi", "time")

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self.n = 0
        self.total = 0.0
        self.weight = 0
        self.lo = float("inf")
        self.hi = float("-inf")
        self.time = 0

    def feed(
        self, time: int, mean: float, lo: float, hi: float, count: int, factor: int
    ) -> Optional[Aggregate]:
        self.n += 1
        self.total += mean * count
        self.weight += count
        self.lo = min(self.lo, lo)
        self.hi = max(self.hi, hi)
        self.time = time
        if self.n < factor:
            return None
        agg = Aggregate(self.time, self.total / self.weight, self.lo, self.hi, self.weight)
        self._reset()
        return agg


class RingStore:
    """Named collection of :class:`MetricRing` — the TSDB front."""

    def __init__(self, capacity: int = 1024, decimation: int = 10) -> None:
        self.capacity = capacity
        self.decimation = decimation
        self._rings: Dict[str, MetricRing] = {}
        self.total_samples = 0

    def add(self, name: str, time: int, value: float) -> None:
        ring = self._rings.get(name)
        if ring is None:
            ring = self._rings[name] = MetricRing(self.capacity, self.decimation)
        ring.add(time, value)
        self.total_samples += 1

    def ring(self, name: str) -> MetricRing:
        return self._rings[name]

    def get(self, name: str) -> Optional[MetricRing]:
        return self._rings.get(name)

    def names(self) -> List[str]:
        return sorted(self._rings)

    def __contains__(self, name: str) -> bool:
        return name in self._rings

    def __len__(self) -> int:
        return len(self._rings)
