"""Simulated operating-system kernel (Linux-2.4 flavoured).

The kernel mediates all CPU consumption in the simulator: application
work, monitoring daemons, socket protocol processing and interrupt
handling all compete for the same simulated CPUs through
:class:`~repro.kernel.scheduler.Scheduler`. The paper's socket-vs-RDMA
asymmetries *emerge* from this contention rather than being coded in.
"""

from repro.kernel.task import Compute, Sleep, Task, TaskContext, WaitEvent, YieldCpu
from repro.kernel.scheduler import Scheduler
from repro.kernel.interrupts import IrqController, IrqVector
from repro.kernel.loadavg import LoadAccounting
from repro.kernel.procfs import ProcFs
from repro.kernel.kmod import KernelModule

__all__ = [
    "Compute",
    "IrqController",
    "IrqVector",
    "KernelModule",
    "LoadAccounting",
    "ProcFs",
    "Scheduler",
    "Sleep",
    "Task",
    "TaskContext",
    "WaitEvent",
    "YieldCpu",
]
