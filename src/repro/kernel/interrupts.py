"""Interrupt controller and softirq machinery.

Hardware interrupts are delivered to a specific CPU (NIC interrupts
honour an affinity setting — the paper's testbed routes them to the
second CPU, visible in its Fig 6). Handling an interrupt *steals* time
from whatever task is running there: the scheduler pushes the task's
burst completion back by the service time.

The ``irq_stat`` structure — per-CPU counts of *pending* hard interrupts,
pending softirqs and cumulative handled counts — lives in kernel memory
and is exactly what the paper's e-RDMA-Sync scheme reads via RDMA. Its
key property: a user-space sampler only runs *after* the interrupt queues
have drained (the kernel prioritises interrupts over user processes), so
it observes near-zero pending counts; a NIC DMA engine samples it at
arbitrary instants and sees the real backlog.

Softirqs model the deferred half of packet processing: the NIC hard-IRQ
handler enqueues a per-packet work item; items are drained at interrupt
exit up to a budget, with the remainder handed to a per-CPU ``ksoftirqd``
kernel thread (nice +19), as in Linux.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node


class IrqVector(enum.IntEnum):
    """Interrupt sources."""

    TIMER = 0
    NIC = 1
    CQ = 2  # verbs completion-queue events (initiator side)
    IPI = 3


class _CpuIrqState:
    """Per-CPU interrupt bookkeeping."""

    __slots__ = (
        "hard_pending",
        "handled",
        "softirq_queue",
        "bh_executed",
        "in_service",
        "busy_until",
        "ksoftirqd",
        "ksoftirqd_kick",
    )

    def __init__(self) -> None:
        #: vector -> number of raised-but-unserviced hard interrupts
        self.hard_pending: Dict[int, int] = {v: 0 for v in IrqVector}
        #: vector -> cumulative serviced count
        self.handled: Dict[int, int] = {v: 0 for v in IrqVector}
        #: deferred work: (cost_ns, action)
        self.softirq_queue: Deque[Tuple[int, Optional[Callable[[], None]]]] = deque()
        #: cumulative softirq (bottom-half) executions
        self.bh_executed = 0
        self.in_service = False
        #: absolute time until which this CPU is occupied by IRQ work
        self.busy_until = 0
        self.ksoftirqd = None
        self.ksoftirqd_kick = None


class IrqController:
    """Per-node interrupt controller."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.env = node.env
        self.cfg = node.cfg
        self.percpu: List[_CpuIrqState] = [
            _CpuIrqState() for _ in range(node.num_cpus)
        ]
        self._hard_fifo: List[Deque[Tuple[int, int, Optional[Callable[[], None]]]]] = [
            deque() for _ in range(node.num_cpus)
        ]
        self._rr_next = 0

    # ------------------------------------------------------------------
    # raising interrupts
    # ------------------------------------------------------------------
    def nic_target_cpu(self) -> int:
        """CPU receiving NIC interrupts (affinity or round-robin)."""
        affinity = self.cfg.irq.nic_irq_affinity
        ncpu = len(self.percpu)
        if 0 <= affinity < ncpu:
            return affinity
        self._rr_next = (self._rr_next + 1) % ncpu
        return self._rr_next

    def raise_irq(
        self,
        cpu_index: int,
        vector: IrqVector,
        cost: int,
        action: Optional[Callable[[], None]] = None,
    ) -> None:
        """Assert a hardware interrupt on ``cpu_index``.

        ``action`` runs when the handler body completes (e.g. the NIC
        handler enqueuing RX softirq work).
        """
        state = self.percpu[cpu_index]
        state.hard_pending[vector] += 1
        self._hard_fifo[cpu_index].append((int(vector), cost, action))
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.emit(self.env.now, "irq.raise", (cpu_index, vector.name))
        if not state.in_service:
            self._enter_service(cpu_index)

    def raise_softirq(
        self, cpu_index: int, cost: int, action: Optional[Callable[[], None]] = None
    ) -> None:
        """Queue deferred (bottom-half) work on ``cpu_index``."""
        state = self.percpu[cpu_index]
        state.softirq_queue.append((cost, action))
        if not state.in_service:
            self._enter_service(cpu_index)

    # ------------------------------------------------------------------
    # kernel-memory view (RDMA-readable)
    # ------------------------------------------------------------------
    def irq_stat(self) -> dict:
        """Snapshot of the per-CPU irq_stat kernel structure, *now*."""
        return {
            "cpus": [
                {
                    "hard_pending": sum(s.hard_pending.values()),
                    "pending_by_vector": {
                        IrqVector(v).name: n for v, n in s.hard_pending.items() if n
                    },
                    "soft_pending": len(s.softirq_queue),
                    "handled": dict(s.handled),
                    "bh_executed": s.bh_executed,
                }
                for s in self.percpu
            ],
            "time": self.env.now,
        }

    def busy_until(self, cpu_index: int) -> int:
        """Time until which IRQ work occupies ``cpu_index`` (0 if free)."""
        return self.percpu[cpu_index].busy_until

    def total_handled(self, cpu_index: int) -> int:
        return sum(self.percpu[cpu_index].handled.values())

    # ------------------------------------------------------------------
    # service loop (chained timeouts; steals from the running task)
    # ------------------------------------------------------------------
    def _enter_service(self, cpu_index: int) -> None:
        state = self.percpu[cpu_index]
        state.in_service = True
        now = self.env._now
        if state.busy_until < now:
            state.busy_until = now
        self._service_next(cpu_index)

    def _service_next(self, cpu_index: int) -> None:
        state = self.percpu[cpu_index]
        fifo = self._hard_fifo[cpu_index]
        if fifo:
            vector, cost, action = fifo.popleft()
            duration = self.cfg.irq.irq_entry + cost
            self._occupy(cpu_index, duration)

            def _done(vector=vector, action=action):
                state.hard_pending[vector] -= 1
                state.handled[vector] += 1
                if action is not None:
                    action()
                self._service_next(cpu_index)

            self.env.call_later(duration, _done, priority=EventPriority.HIGH)
            return

        # Hard interrupts drained: run softirqs up to the budget.
        self._drain_softirqs(cpu_index, self.cfg.irq.softirq_budget)

    def _drain_softirqs(self, cpu_index: int, budget: int) -> None:
        state = self.percpu[cpu_index]
        if self._hard_fifo[cpu_index]:
            # New hard IRQ arrived mid-drain: service it first.
            self._service_next(cpu_index)
            return
        if not state.softirq_queue or budget <= 0:
            if state.softirq_queue:
                self._kick_ksoftirqd(cpu_index)
            self._exit_service(cpu_index)
            return
        cost, action = state.softirq_queue.popleft()
        self._occupy(cpu_index, cost)

        def _done(action=action, budget=budget):
            state.bh_executed += 1
            if action is not None:
                action()
            self._drain_softirqs(cpu_index, budget - 1)

        self.env.call_later(cost, _done, priority=EventPriority.HIGH)

    def _occupy(self, cpu_index: int, duration: int) -> None:
        state = self.percpu[cpu_index]
        busy, now = state.busy_until, self.env._now
        state.busy_until = (busy if busy > now else now) + duration
        self.node.sched.steal(cpu_index, duration, account="irq")

    def _exit_service(self, cpu_index: int) -> None:
        state = self.percpu[cpu_index]
        state.in_service = False
        self.node.sched.irq_exit_check(cpu_index)

    # ------------------------------------------------------------------
    # ksoftirqd
    # ------------------------------------------------------------------
    def start_ksoftirqd(self) -> None:
        """Spawn one ksoftirqd kernel thread per CPU (call once at boot)."""
        for i in range(len(self.percpu)):
            state = self.percpu[i]
            if state.ksoftirqd is not None:
                continue
            kick = self.env.event(name=f"ksoftirqd-kick:{self.node.name}:{i}")
            state.ksoftirqd_kick = kick
            state.ksoftirqd = self.node.sched.spawn(
                f"ksoftirqd/{i}", self._ksoftirqd_body(i), nice=19, kthread=True
            )

    def _kick_ksoftirqd(self, cpu_index: int) -> None:
        state = self.percpu[cpu_index]
        kick = state.ksoftirqd_kick
        if kick is not None and not kick.triggered:
            kick.succeed()

    def _ksoftirqd_body(self, cpu_index: int):
        state = self.percpu[cpu_index]

        def body(k):
            while True:
                if not state.softirq_queue:
                    kick = self.env.event(name=f"ksoftirqd-kick:{self.node.name}:{cpu_index}")
                    state.ksoftirqd_kick = kick
                    yield k.wait(kick)
                    continue
                cost, action = state.softirq_queue.popleft()
                yield k.compute(cost, mode="sys")
                state.bh_executed += 1
                if action is not None:
                    action()

        return body
