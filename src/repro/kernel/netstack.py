"""In-kernel network stack (TCP-over-IPoIB flavoured).

The socket path is *two-sided*: the sender's CPU runs the transmit path
(syscall, copy, protocol work) and the receiver's CPU runs the interrupt
handler, the per-packet softirq protocol processing and the reader
wakeup. Under load the receiver's monitoring daemon also has to win the
run queue before it can even see the message — the combination produces
the paper's socket-scheme latency growth.

Messages are message-oriented (one send → one delivery); payload sizes
are modelled explicitly for wire costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Tuple

from repro.sim.events import AnyOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext
    from repro.sim.resources import Store


class NetStack:
    """Per-node kernel networking."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        node.nic.kernel_rx_handler = self._on_packet
        #: messages delivered to local sockets
        self.delivered = 0

    # ------------------------------------------------------------------
    # transmit path (runs in the sending task's context)
    # ------------------------------------------------------------------
    def send(
        self, k: "TaskContext", dst_node: "Node", rx_store: "Store", payload: Any, nbytes: int
    ) -> Generator:
        """Composite syscall: send one message to ``rx_store`` on ``dst_node``.

        Charges the full TX path to the calling task, then hands the
        packet to the NIC (wire + remote processing are asynchronous).
        """
        cfg = self.node.cfg.net
        yield k.syscall(0)
        yield k.compute(k.copy_cost(nbytes), mode="sys")
        yield k.compute(cfg.tcp_tx_cost, mode="sys")
        self.node.nic.kernel_send(dst_node.nic, (rx_store, payload), nbytes)
        return None

    # ------------------------------------------------------------------
    # receive path (softirq context on this node)
    # ------------------------------------------------------------------
    def _on_packet(self, wrapped: Tuple["Store", Any], nbytes: int) -> None:
        """Socket-layer delivery, invoked by the NIC softirq action."""
        rx_store, payload = wrapped
        self.delivered += 1
        # Depositing into the store wakes any blocked reader (through the
        # scheduler — the reader still needs CPU time to actually run).
        rx_store.put((payload, nbytes))

    # ------------------------------------------------------------------
    # receive syscall (runs in the reading task's context)
    # ------------------------------------------------------------------
    def recv(
        self, k: "TaskContext", rx_store: "Store", timeout: Optional[int] = None
    ) -> Generator:
        """Composite syscall: block until a message arrives, return payload.

        The wakeup is boosted: packet delivery schedules the blocked
        reader "as early as possible" (paper §3), preempting a running
        task if necessary. With ``timeout`` set (SO_RCVTIMEO), the call
        gives up after that many ns and returns ``None`` — the pending
        read is cancelled so a late packet stays queued for the next
        ``recv``.
        """
        get_event = rx_store.get()
        if timeout is None:
            payload, nbytes = yield k.wait(get_event, boost=True)
        else:
            deadline = self.node.env.timeout(timeout)
            fired = yield k.wait(AnyOf(self.node.env, [get_event, deadline]),
                                 boost=True)
            if get_event not in fired:
                get_event.cancel()
                return None
            payload, nbytes = get_event.value
        yield k.syscall(k.copy_cost(nbytes))
        return payload
