"""Kernel tasks (threads) and the operations they may perform.

A task's behaviour is a generator produced by a *body factory*::

    def body(k: TaskContext):
        yield k.compute(us(500))            # burn CPU (user mode)
        yield k.sleep(ms(50))               # block on a timer
        value = yield k.wait(some_event)    # block on a sim event
        data = yield from k.node.procfs.read_stat(k)  # composite syscall

The generator yields :class:`Op` descriptors; the scheduler interprets
them. Composite kernel services (``/proc`` reads, socket calls, verbs
calls) are sub-generators used via ``yield from`` so their CPU costs run
under this task's identity and priority.

Tasks are *not* sim processes: they only advance while holding a CPU,
which is exactly how a loaded back-end delays its monitoring daemon in
the paper.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node


class TaskState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class Op:
    """Base class of operations a task body may yield."""

    __slots__ = ()


class Compute(Op):
    """Consume ``amount`` ns of CPU time. ``mode`` is 'user' or 'sys'."""

    __slots__ = ("remaining", "mode")

    def __init__(self, amount: int, mode: str = "user") -> None:
        if amount < 0:
            raise ValueError(f"negative compute amount: {amount}")
        if mode not in ("user", "sys"):
            raise ValueError(f"bad compute mode: {mode}")
        self.remaining = int(amount)
        self.mode = mode

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.remaining}ns, {self.mode})"


class Sleep(Op):
    """Block for a fixed duration (interruptible sleep)."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"negative sleep duration: {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Sleep({self.duration}ns)"


class WaitEvent(Op):
    """Block until a simulation event fires; its value is sent back.

    ``boost`` marks waits whose wakeup arrives from the network receive
    path: the kernel "treats it as a high priority packet and tries to
    schedule the resource monitoring process as early as possible"
    (paper §3) — such wakeups get an aggressive preemption check.
    """

    __slots__ = ("event", "boost")

    def __init__(self, event: Event, boost: bool = False) -> None:
        self.event = event
        self.boost = boost

    def __repr__(self) -> str:  # pragma: no cover
        return f"Wait({self.event!r}{', boost' if self.boost else ''})"


class YieldCpu(Op):
    """Voluntarily relinquish the CPU (sched_yield)."""

    __slots__ = ()


class Task:
    """A schedulable kernel thread."""

    _next_tid = [1]

    #: default resident-set size of a task (bytes) — used by the memory
    #: load index; servers override per process type
    DEFAULT_RSS = 2 * 1024 * 1024

    def __init__(
        self,
        node: "Node",
        name: str,
        body_factory: Callable[["TaskContext"], Generator],
        nice: int = 0,
        kthread: bool = False,
        rss_bytes: int | None = None,
    ) -> None:
        if not -20 <= nice <= 19:
            raise ValueError(f"nice must be in [-20, 19], got {nice}")
        self.node = node
        self.name = name
        self.tid = Task._next_tid[0]
        Task._next_tid[0] += 1
        self.nice = nice
        #: kernel thread flag (excluded from some /proc user-thread counts)
        self.kthread = kthread
        #: resident memory attributed to this task (kthreads: none)
        self.rss_bytes = (
            rss_bytes if rss_bytes is not None
            else (0 if kthread else Task.DEFAULT_RSS)
        )
        self.state = TaskState.NEW
        self.ctx = TaskContext(self)
        self.body: Generator = body_factory(self.ctx)
        #: operation currently being executed / waited upon
        self.current_op: Optional[Op] = None
        #: scheduler bookkeeping — remaining timeslice in ticks
        self.counter: int = 0
        #: CPU the task is currently running on (index), or -1
        self.on_cpu: int = -1
        #: CPU the task last ran on — wakeup preemption only targets this
        #: CPU (2.4's ``p->processor`` stickiness), which is what delays a
        #: woken monitoring daemon on a loaded node
        self.last_cpu: int = (self.tid % max(1, node.num_cpus))
        #: statistics
        self.user_ns = 0
        self.sys_ns = 0
        self.wakeups = 0
        self.dispatches = 0
        #: completion event (fires with the body's return value)
        self.done: Event = node.env.event(name=f"task-done:{name}")
        #: value to send into the generator on next advance
        self._send_value: Any = None
        #: pending wakeup callback guard (versioning for sleep/wait races)
        self._wait_version = 0

    # -- priority ----------------------------------------------------------
    @property
    def static_prio_ticks(self) -> int:
        """Timeslice grant in ticks, derived from nice (2.4 style)."""
        base = self.node.cfg.cpu.timeslice_ticks
        # nice -20 → ~2x base; nice +19 → minimum 1 tick
        ticks = round(base * (20 - self.nice) / 20)
        return max(1, ticks)

    def goodness(self) -> int:
        """2.4-style dynamic priority: remaining counter + nice weight."""
        if self.counter <= 0:
            return 0
        return self.counter + (20 - self.nice)

    @property
    def is_runnable(self) -> bool:
        return self.state in (TaskState.READY, TaskState.RUNNING)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name}#{self.tid} {self.state.value} cnt={self.counter}>"


class TaskContext:
    """Capability handle given to a task body.

    Provides op constructors plus access to the owning node's kernel
    services. ``k.now`` reads the simulation clock.
    """

    def __init__(self, task: Task) -> None:
        self.task = task

    @property
    def node(self) -> "Node":
        return self.task.node

    @property
    def env(self):
        return self.task.node.env

    @property
    def now(self) -> int:
        return self.task.node.env.now

    # -- op constructors ------------------------------------------------------
    def compute(self, amount: int, mode: str = "user") -> Compute:
        return Compute(amount, mode)

    def sleep(self, duration: int) -> Sleep:
        return Sleep(duration)

    def wait(self, event: Event, boost: bool = False) -> WaitEvent:
        return WaitEvent(event, boost=boost)

    def yield_cpu(self) -> YieldCpu:
        return YieldCpu()

    # -- composite helpers -----------------------------------------------------
    def syscall(self, extra_cost: int = 0) -> Compute:
        """A bare kernel trap, optionally with extra in-kernel work."""
        return Compute(self.node.cfg.syscall.trap + extra_cost, mode="sys")

    def copy_cost(self, nbytes: int) -> int:
        """Kernel<->user copy cost for ``nbytes``."""
        per_kb = self.node.cfg.syscall.copy_per_kb
        return max(1, (nbytes * per_kb) // 1024)
