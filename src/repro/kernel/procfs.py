"""/proc emulation.

User-space monitoring daemons obtain system statistics by reading /proc
(the paper's §3.1). The cost model captures the two components that make
this expensive on a loaded node:

* a kernel trap plus a fixed assembly cost, and
* an **O(number-of-tasks)** scan of the task list (per-process stats are
  assembled by walking every task struct), so the read itself slows down
  as the node gets busier — one of the mechanisms behind the paper's
  Fig 3 linear latency growth.

``read_stat`` is a composite syscall: a generator to be driven with
``yield from`` inside a task body. The statistics snapshot is taken when
the kernel work *completes*, not when the call was issued.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext


class ProcFs:
    """Per-node /proc interface."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        #: number of /proc stat reads served (diagnostics)
        self.reads = 0

    # ------------------------------------------------------------------
    def scan_cost(self) -> int:
        """CPU cost of assembling the statistics right now."""
        cfg = self.node.cfg.syscall
        return cfg.proc_read_base + cfg.proc_read_per_task * self.node.sched.nr_threads()

    def snapshot(self) -> dict:
        """The statistics themselves (exact, instantaneous)."""
        return self.node.loadacct.snapshot()

    def read_stat(self, k: "TaskContext") -> Generator:
        """Composite syscall: read /proc system statistics.

        Usage inside a task body::

            stats = yield from node.procfs.read_stat(k)
        """
        cost = self.scan_cost()
        yield k.syscall(cost)
        # copy to user space
        yield k.compute(k.copy_cost(512), mode="sys")
        self.reads += 1
        return self.snapshot()
