"""Load accounting: avenrun, run-queue EMAs, utilisation counters.

Mirrors the kernel structures the paper's schemes read:

* ``avenrun`` — the classic 1/5/15-minute exponentially-decayed load
  averages, updated every ``LOAD_FREQ`` (5 s) from the run-queue length.
* a **fast EMA** of the run-queue length updated at every timer tick —
  the fine-grained load signal the monitoring schemes actually use
  (5-second averages are useless at 50 ms polling).
* per-CPU jiffies (via the scheduler) from which CPU utilisation is
  derived by differencing snapshots.

All of these are *live kernel state*: RDMA-Sync registers them as
provider-backed memory regions and reads them without the host CPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node

#: avenrun update period (Linux LOAD_FREQ = 5 s)
LOAD_FREQ_NS = 5_000_000_000

# Fixed-point decay factors for 1/5/15 min at a 5-second update period,
# as in the kernel (FSHIFT=11).
_FSHIFT = 11
_FIXED_1 = 1 << _FSHIFT
_EXP_1 = 1884
_EXP_5 = 2014
_EXP_15 = 2037


class LoadAccounting:
    """Per-node load statistics maintained at timer ticks."""

    #: smoothing factor for the fast run-queue EMA (per tick)
    FAST_EMA_ALPHA = 0.2

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.env = node.env
        #: fixed-point avenrun values (as the kernel stores them)
        self.avenrun: List[int] = [0, 0, 0]
        self._next_calc_load = self.env.now + LOAD_FREQ_NS
        #: fast EMA of nr_running (float, tick-resolution)
        self.runq_ema: float = 0.0
        #: tick counter
        self.ticks = 0

    # ------------------------------------------------------------------
    def on_tick(self) -> None:
        """Called once per node tick (from the CPU0 timer action)."""
        self.ticks += 1
        nr = self.node.sched.nr_running()
        alpha = self.FAST_EMA_ALPHA
        self.runq_ema += alpha * (nr - self.runq_ema)
        now = self.env.now
        if now >= self._next_calc_load:
            self._calc_load(nr)
            self._next_calc_load = now + LOAD_FREQ_NS

    def _calc_load(self, nr_running: int) -> None:
        active = nr_running * _FIXED_1
        for i, exp in enumerate((_EXP_1, _EXP_5, _EXP_15)):
            self.avenrun[i] = (self.avenrun[i] * exp + active * (_FIXED_1 - exp)) >> _FSHIFT

    # ------------------------------------------------------------------
    def loadavg(self) -> tuple:
        """(1min, 5min, 15min) floats, as /proc/loadavg presents them."""
        return tuple(v / _FIXED_1 for v in self.avenrun)

    def fast_load(self) -> float:
        """Tick-resolution run-queue EMA — the fine-grained load signal."""
        return self.runq_ema

    def snapshot(self) -> dict:
        """Live-kernel view (RDMA-readable).

        Built in a single pass over the CPUs (this runs on every RDMA
        read of the region, so the per-CPU accounting is inlined rather
        than going through ``sched.jiffies``/``busy_cpus`` separately —
        field-for-field identical to those helpers).
        """
        node = self.node
        sched = node.sched
        sched.sync()
        now = self.env.now
        elapsed = now - sched._start_time
        jiffies = []
        busy_cpus = 0
        for cpu in sched.cpus:
            user, sys_, irq = cpu.user_ns, cpu.sys_ns, cpu.irq_ns
            idle = elapsed - user - sys_ - irq
            jiffies.append({"user": user, "sys": sys_, "irq": irq,
                            "idle": idle if idle > 0 else 0})
            if cpu.current is not None:
                busy_cpus += 1
        nic = node.nic
        return {
            "time": now,
            "ticks": self.ticks,
            "nr_running": len(sched.runqueue) + busy_cpus,
            "nr_threads": len(sched.tasks),
            "busy_cpus": busy_cpus,
            "runq_ema": self.runq_ema,
            "loadavg": self.loadavg(),
            "jiffies": jiffies,
            "gauges": dict(node.gauges),
            "mem_used_bytes": sched.rss_total(),
            "mem_total_bytes": node.memory.capacity_bytes,
            "net_rx_bytes": nic.kernel_rx_bytes,
            "net_tx_bytes": nic.kernel_tx_bytes,
        }
