"""Linux-2.4-flavoured CPU scheduler.

Design notes
------------
* One **global run queue** per node (as in 2.4), with per-CPU *current*
  tasks. Selection is by *goodness* — remaining timeslice ``counter``
  plus a nice-derived weight — with FIFO tie-breaking.
* A 100 Hz **timer tick** per CPU decrements the running task's counter;
  when every runnable task's counter reaches zero an **epoch
  recalculation** refills all tasks' counters (sleepers accumulate up to
  a cap), at an O(number-of-tasks) CPU cost.
* **Wakeup preemption**: a woken task preempts the lowest-goodness
  running task if its goodness exceeds the victim's by a margin,
  otherwise it waits in the run queue — this is where a loaded node
  delays its monitoring daemon.
* **Interrupt steals**: IRQ/softirq work on a CPU pushes back the
  current task's burst completion (the task makes no progress while the
  CPU is in interrupt context) — see :meth:`Scheduler.steal`.

Accounting is exact at read time: :meth:`Scheduler.sync` charges partial
progress of in-flight bursts so that jiffies counters read via /proc (or
via RDMA from kernel memory) reflect the current instant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from repro.kernel.task import (
    Compute,
    Sleep,
    Task,
    TaskState,
    WaitEvent,
    YieldCpu,
)
from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node


class CpuState:
    """Per-CPU scheduler state."""

    __slots__ = (
        "index",
        "current",
        "run_start",
        "stolen",
        "burst_deadline",
        "dispatch_seq",
        "need_resched",
        "user_ns",
        "sys_ns",
        "irq_ns",
        "ctx_switches",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.current: Optional[Task] = None
        #: when the current dispatch began
        self.run_start = 0
        #: ns stolen from the current burst by interrupts/ctx overhead
        self.stolen = 0
        #: absolute time the current compute op will finish (incl. steals)
        self.burst_deadline = 0
        #: bumped on every dispatch/deschedule; guards stale burst events
        self.dispatch_seq = 0
        self.need_resched = False
        # accounting (ns)
        self.user_ns = 0
        self.sys_ns = 0
        self.irq_ns = 0
        self.ctx_switches = 0

    @property
    def busy(self) -> bool:
        return self.current is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        task = self.current.name if self.current else "idle"
        return f"<CPU{self.index} {task}>"


class Scheduler:
    """The per-node process scheduler."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.env = node.env
        self.cfg = node.cfg
        self.cpus: List[CpuState] = [CpuState(i) for i in range(node.num_cpus)]
        #: global run queue (READY tasks), FIFO order preserved for ties
        self.runqueue: List[Task] = []
        #: all live (non-exited) tasks on this node
        self.tasks: List[Task] = []
        #: cumulative counters
        self.total_epochs = 0
        self.total_wakeups = 0
        self._start_time = self.env.now

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        body_factory: Callable[..., Generator],
        nice: int = 0,
        kthread: bool = False,
        rss_bytes: Optional[int] = None,
    ) -> Task:
        """Create a task and make it runnable."""
        task = Task(self.node, name, body_factory, nice=nice, kthread=kthread,
                    rss_bytes=rss_bytes)
        task.counter = task.static_prio_ticks
        task.state = TaskState.READY
        self.tasks.append(task)
        self.node.tracer.emit(self.env.now, "sched.spawn", task.name)
        self._enqueue(task)
        self._try_preempt_for(task)
        return task

    def wake(
        self,
        task: Task,
        value: Any = None,
        exc: Optional[BaseException] = None,
        boost: bool = False,
    ) -> None:
        """Make a blocked task runnable, delivering ``value`` (or ``exc``).

        ``boost=True`` marks a network-delivery wakeup: the preemption
        check scans every CPU with no goodness margin (the high-priority
        packet path), instead of the sticky-CPU check with margin.
        """
        if task.state == TaskState.EXITED:
            return
        if task.is_runnable:
            return  # spurious wakeup
        task._send_value = exc if exc is not None else value
        task._wake_is_exc = exc is not None  # type: ignore[attr-defined]
        task.state = TaskState.READY
        task.wakeups += 1
        self.total_wakeups += 1
        self._enqueue(task)
        self.node.tracer.emit(self.env.now, "sched.wake", task.name)
        self._try_preempt_for(task, boost=boost)

    def nr_running(self) -> int:
        """Tasks READY or RUNNING (the classic run-queue length)."""
        return len(self.runqueue) + sum(1 for c in self.cpus if c.current is not None)

    def nr_threads(self) -> int:
        """All live tasks on this node."""
        return len(self.tasks)

    def rss_total(self) -> int:
        """Resident memory of all live tasks, bytes."""
        return sum(t.rss_bytes for t in self.tasks)

    def busy_cpus(self) -> int:
        """Instantaneous number of CPUs executing a task."""
        return sum(1 for c in self.cpus if c.current is not None)

    def sync(self) -> None:
        """Charge partial progress of all in-flight bursts up to *now*.

        After this, per-CPU jiffies counters are exact for the current
        instant — required before any /proc or RDMA read of them.
        """
        for cpu in self.cpus:
            self._sync_cpu(cpu)

    def requeue_orphans(self) -> None:
        """Re-queue RUNNING tasks that hold no CPU (recovery path).

        ``Node.fail("hung")`` clears every CPU's current task without a
        re-queue — the frozen kernel forgets who was on-CPU. On recovery
        those tasks are still marked RUNNING but own no CPU slot; flip
        them back to READY so :meth:`kick` can dispatch them.
        """
        on_cpu = {cpu.current for cpu in self.cpus if cpu.current is not None}
        for task in self.tasks:
            if task.state == TaskState.RUNNING and task not in on_cpu:
                task.state = TaskState.READY
                task.on_cpu = -1
                self._enqueue(task)

    def kick(self) -> None:
        """Dispatch onto every idle CPU (no-op while the node is failed)."""
        for cpu in self.cpus:
            if cpu.current is None:
                self._schedule(cpu)

    def jiffies(self, cpu_index: int) -> dict:
        """Per-CPU time accounting in ns: user/sys/irq/idle."""
        cpu = self.cpus[cpu_index]
        elapsed = self.env.now - self._start_time
        busy = cpu.user_ns + cpu.sys_ns + cpu.irq_ns
        return {
            "user": cpu.user_ns,
            "sys": cpu.sys_ns,
            "irq": cpu.irq_ns,
            "idle": max(0, elapsed - busy),
        }

    # ------------------------------------------------------------------
    # hooks for the interrupt controller
    # ------------------------------------------------------------------
    def steal(self, cpu_index: int, duration: int, account: str = "irq") -> None:
        """Interrupt context occupies this CPU for ``duration`` ns.

        The current task's burst completion is pushed back; the time is
        charged to the CPU's irq bucket.
        """
        cpu = self.cpus[cpu_index]
        if cpu.current is not None:
            cpu.stolen += duration
            cpu.burst_deadline += duration
        if account == "irq":
            cpu.irq_ns += duration
        else:
            cpu.sys_ns += duration

    def tick(self, cpu_index: int) -> None:
        """Timer-tick accounting: decrement the running task's counter."""
        cpu = self.cpus[cpu_index]
        task = cpu.current
        if task is None:
            return
        task.counter -= 1
        if task.counter <= 0:
            task.counter = 0
            cpu.need_resched = True

    def irq_exit_check(self, cpu_index: int) -> None:
        """Called at interrupt exit: honour a pending reschedule.

        Only when the interrupted task was in user mode — interrupt
        return into kernel mode does not reschedule (2.4 semantics);
        the op-boundary check in :meth:`_burst_end` catches it instead.
        """
        cpu = self.cpus[cpu_index]
        if not cpu.need_resched:
            return
        task = cpu.current
        if task is not None and self.cfg.cpu.kernel_nonpreemptible:
            op = task.current_op
            if isinstance(op, Compute) and op.mode == "sys":
                return  # defer to the kernel-exit boundary
        cpu.need_resched = False
        self._preempt(cpu)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _enqueue(self, task: Task) -> None:
        self.runqueue.append(task)

    def _try_preempt_for(self, task: Task, boost: bool = False) -> None:
        """Dispatch onto an idle CPU, or preempt a running task.

        Ordinary wakeups are sticky (2.4's ``reschedule_idle`` fast path,
        and the O(1) backport RH9 shipped): the woken task only
        preemption-checks ``p->processor`` with a goodness margin; losing
        means waiting in the run queue for a natural schedule point — on
        a loaded node this is what delays the monitoring daemon.

        Boosted (network-packet) wakeups scan every CPU with no margin —
        the "high priority packet" path (paper §3). The preempted worker
        re-queues with a drained counter behind the rested crowd, which
        is the per-poll perturbation the schemes with back-end threads
        inflict (Table 1's max-response tails, Fig 4/8).
        """
        for cpu in self.cpus:
            if cpu.current is None:
                self._schedule(cpu)
                return
        if boost and self.cfg.cpu.net_wake_boost:
            victim = min(self.cpus, key=lambda c: (c.current.goodness(), c.index))
            margin = 0
        elif self.cfg.cpu.sticky_wakeups:
            victim = self.cpus[task.last_cpu % len(self.cpus)]
            margin = self.cfg.cpu.wake_preempt_margin
        else:
            victim = min(self.cpus, key=lambda c: (c.current.goodness(), c.index))
            margin = self.cfg.cpu.wake_preempt_margin
        assert victim.current is not None
        if task.goodness() > victim.current.goodness() + margin:
            self._preempt_or_defer(victim)

    def _preempt_or_defer(self, cpu: CpuState) -> None:
        """Preempt now, unless the victim is in kernel mode.

        The 2.4 kernel is non-preemptible: a task executing a system-mode
        burst (a /proc scan, DB kernel work, socket TX) runs to the next
        kernel-exit boundary before ``need_resched`` is honoured.
        """
        task = cpu.current
        if task is None:
            self._schedule(cpu)
            return
        op = task.current_op
        if (
            self.cfg.cpu.kernel_nonpreemptible
            and isinstance(op, Compute)
            and op.mode == "sys"
        ):
            cpu.need_resched = True
            return
        self._preempt(cpu)

    def _preempt(self, cpu: CpuState) -> None:
        """Deschedule the current task back to the run queue, reschedule."""
        task = cpu.current
        if task is None:
            self._schedule(cpu)
            return
        self._sync_cpu(cpu)
        cpu.dispatch_seq += 1
        cpu.current = None
        task.on_cpu = -1
        task.state = TaskState.READY
        self._enqueue(task)
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.emit(self.env.now, "sched.preempt", task.name)
        self._schedule(cpu)

    def _sync_cpu(self, cpu: CpuState) -> None:
        """Charge the current burst's progress up to now."""
        task = cpu.current
        if task is None:
            return
        progressed = self.env.now - cpu.run_start - cpu.stolen
        if progressed <= 0:
            # Still inside stolen (interrupt/ctx) time: fold the elapsed
            # wall time into the baseline so later syncs stay exact.
            cpu.stolen -= self.env.now - cpu.run_start
            cpu.run_start = self.env.now
            return
        op = task.current_op
        assert isinstance(op, Compute)
        progressed = min(progressed, op.remaining)
        op.remaining -= progressed
        if op.mode == "user":
            cpu.user_ns += progressed
            task.user_ns += progressed
        else:
            cpu.sys_ns += progressed
            task.sys_ns += progressed
        cpu.run_start = self.env.now
        cpu.stolen = 0

    def _pick_next(self) -> Optional[Task]:
        """Select the best READY task; run epoch recalc if all expired."""
        if not self.runqueue:
            return None
        best = max(self.runqueue, key=lambda t: t.goodness())
        if best.goodness() == 0:
            # Everyone runnable is out of timeslice *including tasks
            # currently running on other CPUs* — 2.4 recalculates when the
            # run queue is exhausted; we approximate with the run queue.
            self._recalc_epoch()
            best = max(self.runqueue, key=lambda t: t.goodness())
        self.runqueue.remove(best)
        return best

    def _recalc_epoch(self) -> int:
        """Refill every task's counter; returns the CPU cost of the scan."""
        self.total_epochs += 1
        cap = self.cfg.cpu.counter_cap_ticks
        for task in self.tasks:
            task.counter = min(cap, task.counter // 2 + task.static_prio_ticks)
        cost = self.cfg.cpu.recalc_base + self.cfg.cpu.recalc_per_task * len(self.tasks)
        self.node.tracer.emit(self.env.now, "sched.epoch", len(self.tasks))
        self._pending_recalc_cost = cost
        return cost

    _pending_recalc_cost: int = 0

    def _schedule(self, cpu: CpuState) -> None:
        """Pick and dispatch the next task on an idle CPU."""
        assert cpu.current is None
        node = self.node
        if node.failure_mode != "up":
            return  # frozen kernel: nothing is ever dispatched again
        task = self._pick_next()
        if task is None:
            return  # CPU goes idle
        overhead = self.cfg.cpu.context_switch + self._pending_recalc_cost
        self._pending_recalc_cost = 0
        # If the CPU is mid-interrupt, the new task only starts once the
        # IRQ work completes (that time is already charged to the irq
        # bucket by the controller — extend the burst without re-charging).
        irq_wait = node.irq.percpu[cpu.index].busy_until - self.env.now
        if irq_wait < 0:
            irq_wait = 0
        cpu.ctx_switches += 1
        cpu.sys_ns += overhead
        cpu.current = task
        cpu.dispatch_seq += 1
        cpu.run_start = self.env.now
        cpu.stolen = overhead + irq_wait
        task.state = TaskState.RUNNING
        task.on_cpu = cpu.index
        task.last_cpu = cpu.index
        task.dispatches += 1
        tracer = self.node.tracer
        if tracer.enabled:
            tracer.emit(self.env.now, "sched.dispatch", task.name)
        self._begin_or_advance(cpu)

    def _begin_or_advance(self, cpu: CpuState) -> None:
        """Start the current op, advancing the generator if needed."""
        task = cpu.current
        assert task is not None
        while True:
            op = task.current_op
            if op is None:
                if not self._advance(task, cpu):
                    return  # task exited or blocked; CPU rescheduled
                continue
            if isinstance(op, Compute):
                if op.remaining <= 0:
                    task.current_op = None
                    continue
                cpu.burst_deadline = cpu.run_start + cpu.stolen + op.remaining
                self._arm_burst_end(cpu)
                return
            raise AssertionError(f"unexpected resident op {op!r}")

    def _arm_burst_end(self, cpu: CpuState) -> None:
        seq = cpu.dispatch_seq
        delay = cpu.burst_deadline - self.env.now
        assert delay >= 0
        self.env.call_later(delay,
                            lambda cpu=cpu, seq=seq: self._burst_end(cpu, seq),
                            priority=EventPriority.NORMAL)

    def _burst_end(self, cpu: CpuState, seq: int) -> None:
        if cpu.dispatch_seq != seq:
            return  # stale: task was descheduled meanwhile
        if self.env.now < cpu.burst_deadline:
            # Interrupt steals extended the burst; re-arm for the new deadline.
            self._arm_burst_end(cpu)
            return
        task = cpu.current
        assert task is not None
        self._sync_cpu(cpu)
        op = task.current_op
        assert isinstance(op, Compute) and op.remaining == 0, (task, op)
        task.current_op = None
        task._send_value = None
        # Kernel-exit boundary: honour a reschedule deferred while this
        # task was in kernel mode.
        if cpu.need_resched:
            cpu.need_resched = False
            task.state = TaskState.READY
            task.on_cpu = -1
            cpu.dispatch_seq += 1
            cpu.current = None
            self._enqueue(task)
            tracer = self.node.tracer
            if tracer.enabled:
                tracer.emit(self.env.now, "sched.preempt", task.name)
            self._schedule(cpu)
            return
        self._begin_or_advance(cpu)

    def _advance(self, task: Task, cpu: CpuState) -> bool:
        """Send the pending value into the body; interpret the next op.

        Returns True if the task is still on this CPU with a new
        ``current_op`` to consider, False if it blocked/exited (in which
        case the CPU has been rescheduled).
        """
        value = task._send_value
        is_exc = getattr(task, "_wake_is_exc", False)
        task._send_value = None
        task._wake_is_exc = False  # type: ignore[attr-defined]
        try:
            if is_exc:
                op = task.body.throw(value)
            else:
                op = task.body.send(value)
        except StopIteration as stop:
            self._exit_task(task, cpu, stop.value, None)
            return False
        except BaseException as exc:  # task body crashed
            self._exit_task(task, cpu, None, exc)
            return False

        if isinstance(op, Compute):
            task.current_op = op
            return True
        if isinstance(op, Sleep):
            self._block(task, cpu)
            version = task._wait_version
            t = self.env.timeout(op.duration)
            assert t.callbacks is not None
            t.callbacks.append(
                lambda _ev, task=task, version=version: self._wake_if_current(task, version)
            )
            return False
        if isinstance(op, WaitEvent):
            event = op.event
            boost = op.boost
            self._block(task, cpu)
            version = task._wait_version
            if event.processed:
                # Resume promptly (still requires a trip through the
                # scheduler, as a real wakeup would).
                if event.ok:
                    self.wake(task, value=event.value, boost=boost)
                else:
                    event.defuse()
                    self.wake(task, exc=event.value, boost=boost)
            else:
                assert event.callbacks is not None

                def _on_fire(ev, task=task, version=version, boost=boost):
                    if task._wait_version != version or task.state != TaskState.BLOCKED:
                        return
                    if ev.ok:
                        self.wake(task, value=ev.value, boost=boost)
                    else:
                        ev.defuse()
                        self.wake(task, exc=ev.value, boost=boost)

                event.callbacks.append(_on_fire)
            return False
        if isinstance(op, YieldCpu):
            task.state = TaskState.READY
            task.on_cpu = -1
            cpu.dispatch_seq += 1
            cpu.current = None
            self._enqueue(task)
            self._schedule(cpu)
            return False
        raise TypeError(f"task {task.name!r} yielded unsupported op {op!r}")

    def _block(self, task: Task, cpu: CpuState) -> None:
        task.state = TaskState.BLOCKED
        task.on_cpu = -1
        task._wait_version += 1
        cpu.dispatch_seq += 1
        cpu.current = None
        self.node.tracer.emit(self.env.now, "sched.block", task.name)
        self._schedule(cpu)

    def _wake_if_current(self, task: Task, version: int) -> None:
        """Timer wake guarded against the task having moved on."""
        if task._wait_version != version or task.state != TaskState.BLOCKED:
            return
        self.wake(task)

    def _exit_task(self, task: Task, cpu: CpuState, value: Any, exc: Optional[BaseException]) -> None:
        task.state = TaskState.EXITED
        task.on_cpu = -1
        task.current_op = None
        try:
            self.tasks.remove(task)
        except ValueError:  # pragma: no cover - defensive
            pass
        cpu.dispatch_seq += 1
        cpu.current = None
        self.node.tracer.emit(self.env.now, "sched.exit", task.name)
        if exc is not None:
            task.done.fail(exc)
        else:
            task.done.succeed(value)
        self._schedule(cpu)
