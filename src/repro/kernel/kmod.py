"""The helper kernel module of the paper's §5.1.3/§5.1.4.

The paper uses a small kernel module for two things:

1. exposing kernel-only structures (``irq_stat``, ``avenrun``,
   ``nr_threads``) to the *user-space* schemes, so they can report the
   same detailed information that RDMA-Sync reads directly; and
2. acting as the fine-grained **ground-truth** reporter in the accuracy
   experiment (Fig 5).

Reading through the module still requires the calling user process to be
scheduled and to trap into the kernel — which is precisely why the
user-space schemes observe drained interrupt queues (Fig 6) and stale
loads (Fig 5) on a busy node. The simulator's ground truth for Fig 5 is
taken by :mod:`repro.analysis.truth` directly from simulator state, which
is what the module's finer-granularity samples approximate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import TaskContext


class KernelModule:
    """ioctl-style access to kernel structures from user space."""

    #: fixed in-kernel cost of copying irq_stat / counters out
    IOCTL_COST = 4_000  # 4 us

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.reads = 0

    def read_irq_stat(self, k: "TaskContext") -> Generator:
        """Composite syscall returning the irq_stat snapshot.

        The snapshot is taken when the kernel work completes — i.e. after
        the calling process has been scheduled and trapped in, by which
        time pending interrupt queues have normally drained.
        """
        yield k.syscall(self.IOCTL_COST)
        self.reads += 1
        return self.node.irq.irq_stat()

    def read_kernel_load(self, k: "TaskContext") -> Generator:
        """Composite syscall returning the live load snapshot."""
        yield k.syscall(self.IOCTL_COST)
        self.reads += 1
        return self.node.loadacct.snapshot()
