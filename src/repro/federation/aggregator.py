"""The aggregation tier: root monitor + federation deployer.

The :class:`FederatedMonitor` runs on the front-end and RDMA-reads each
leaf's exported snapshot region every root period — the paper's
one-sided principle applied recursively: no leaf CPU is involved in
answering, so the root's round time is NIC + fabric only, over
``num_shards`` reads instead of N. Merged shard views land in
``latest`` (keyed by global back-end index), which duck-types the
:class:`~repro.monitoring.frontend.FrontendMonitor` cache the
dispatcher and balancers already consult.

:func:`deploy_federation` builds the whole fabric on an existing
cluster: leaf nodes attached to the fabric, one
:class:`~repro.federation.leaf.LeafMonitor` per shard, the root, and
the quarantine wiring (fault plane + heartbeat → topology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.federation.leaf import LeafMonitor
from repro.federation.snapshot import ShardSnapshot, merge_digest_states
from repro.federation.topology import ShardTopology, auto_shard_count_3level
from repro.hw.node import Node
from repro.monitoring.loadinfo import LoadInfo
from repro.monitoring.registry import scheme_class
from repro.telemetry.digest import StreamingDigest
from repro.transport.verbs import WqeBatch, connect_monitor_qp

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.kernel.task import Task


class FederatedMonitor:
    """Root aggregator: one-sided reads of every leaf's snapshot MR.

    In a three-level fabric the root reads *region* snapshot MRs
    instead (each carrying its leaves' packed shard snapshots plus
    pre-merged digest states), so the fan-in and the digest rebuild
    both scale with ``num_regions`` rather than ``num_shards``.
    """

    def __init__(
        self,
        sim: "ClusterSim",
        topology: ShardTopology,
        leaves: List[LeafMonitor],
        interval: Optional[int] = None,
        name: str = "fed-root",
        regions: Optional[list] = None,
    ) -> None:
        if not leaves:
            raise ValueError("federated monitor needs at least one leaf")
        fed = sim.cfg.federation
        self.sim = sim
        self.topology = topology
        self.leaves = leaves
        self.regions = regions
        self.frontend = sim.frontend
        if interval is None:
            interval = (fed.root_interval or fed.leaf_interval
                        or sim.cfg.monitor.interval)
        if interval <= 0:
            raise ValueError("root interval must be positive")
        self.interval = interval
        self.name = name
        sources = regions if regions else leaves
        self._sources = sources
        self._qps = [connect_monitor_qp(sim.frontend, src.node)[0] for src in sources]
        #: region index → pre-merged digest states (3-level mode only)
        self._region_digest_states: Dict[int, Dict[str, tuple]] = {}
        #: the merged global view — FrontendMonitor-cache compatible
        self.latest: Dict[int, LoadInfo] = {}
        #: freshest snapshot + leaf epoch per shard
        self.shard_snapshots: Dict[int, ShardSnapshot] = {}
        self.shard_epochs: Dict[int, int] = {}
        #: merged global per-metric digests (rebuilt each root round)
        self.digests: Dict[str, StreamingDigest] = {}
        #: root merge-round counter (the global view's epoch stamp)
        self.epoch = 0
        self.polls = 0
        #: per-round wall time (fan-out reads + merges), ns
        self.rounds: List[int] = []
        self.read_failures = 0
        #: fired once per merge round with ``(epoch, latest)`` — the
        #: telemetry shard-rollup hook (chain, don't replace)
        self.round_observer = None
        self._stopped = False
        self._task: Optional["Task"] = None

    # ------------------------------------------------------------------
    def start(self) -> "Task":
        if self._task is not None:
            raise RuntimeError("federated monitor already started")
        self._task = self.frontend.spawn(self.name, self._body)
        return self._task

    def stop(self) -> None:
        self._stopped = True

    # FrontendMonitor cache parity --------------------------------------
    def load_of(self, backend_index: int) -> Optional[LoadInfo]:
        return self.latest.get(backend_index)

    def snapshot(self) -> Dict[int, LoadInfo]:
        return dict(self.latest)

    # ------------------------------------------------------------------
    def _body(self, k):
        net = self.sim.cfg.net
        fed = self.sim.cfg.federation
        spans = self.sim.spans
        three_level = bool(self.regions)
        while not self._stopped:
            t0 = k.now
            span = None
            if spans is not None and spans.enabled:
                span = spans.start_trace(
                    "fed.aggregate", node=self.frontend.name,
                    component="federation", attrs={"shards": len(self.leaves)})
            # Batched fan-out, like a leaf's shard round: post every
            # snapshot read, ring the doorbell once, then drain.
            batch = WqeBatch(net=net)
            events = [
                batch.post_read(qp, src.mr.rkey, src.mr.nbytes, ctx=span)
                for qp, src in zip(self._qps, self._sources)
            ]
            yield from batch.ring(k)
            snaps: List[ShardSnapshot] = []
            for ev in events:
                wc = yield k.wait(ev)
                if not wc.ok:
                    self.read_failures += 1
                    continue
                if three_level:
                    from repro.federation.region import RegionSnapshot

                    rsnap = RegionSnapshot.unpack(wc.value)
                    # One merge charge per region view: the shard
                    # records inside pass through by identity, so the
                    # root's CPU work scales with its fan-in, not N.
                    yield k.compute(fed.root_merge_cost)
                    self._region_digest_states[rsnap.region] = rsnap.digests
                    # Re-stamp delivery with the root's read instant so
                    # staleness accumulates across all hops.
                    snaps.extend(
                        ShardSnapshot.unpack(packed, received_at=k.now)
                        for packed in rsnap.shards
                    )
                else:
                    snaps.append(ShardSnapshot.unpack(wc.value, received_at=k.now))
            for snap in snaps:
                if not three_level:
                    yield k.compute(fed.root_merge_cost)
                self.shard_snapshots[snap.shard] = snap
                self.shard_epochs[snap.shard] = snap.epoch
                for g, info in snap.nodes.items():
                    self.latest[g] = info
            # Quarantined members linger in old snapshots; keep the
            # serving view to what the topology considers routable.
            for b in list(self.latest):
                if b in self.topology.quarantined:
                    del self.latest[b]
            self._rebuild_digests()
            self.epoch += 1
            self.polls += 1
            self.rounds.append(k.now - t0)
            if span is not None:
                spans.end(span, attrs={"epoch": self.epoch,
                                       "merged": len(snaps)})
            if self.round_observer is not None:
                self.round_observer(self.epoch, dict(self.latest))
            yield k.sleep(self.interval)

    def _rebuild_digests(self) -> None:
        states: Dict[str, list] = {}
        if self.regions:
            # Three-level: the regions already pre-merged their leaves'
            # digests, so the root folds num_regions states per metric.
            for region_states in self._region_digest_states.values():
                for metric, state in region_states.items():
                    states.setdefault(metric, []).append(state)
        else:
            for snap in self.shard_snapshots.values():
                for metric, state in snap.digests.items():
                    states.setdefault(metric, []).append(state)
        self.digests = {
            metric: merged
            for metric, sts in states.items()
            if (merged := merge_digest_states(sts)) is not None
        }

    # ------------------------------------------------------------------
    def max_epoch_lag(self) -> int:
        """Largest gap between any two shard epochs in the merged view."""
        if not self.shard_epochs:
            return 0
        return max(self.shard_epochs.values()) - min(self.shard_epochs.values())


@dataclass
class Federation:
    """Handles for one deployed monitoring fabric (two or three tiers)."""

    sim: "ClusterSim"
    topology: ShardTopology
    leaves: List[LeafMonitor]
    root: FederatedMonitor
    leaf_nodes: List[Node] = field(default_factory=list)
    #: region aggregators (empty in the historical two-level fabric)
    regions: List = field(default_factory=list)
    region_nodes: List[Node] = field(default_factory=list)

    def stop(self) -> None:
        for leaf in self.leaves:
            leaf.stop()
        for region in self.regions:
            region.stop()
        self.root.stop()

    # quarantine wiring -------------------------------------------------
    def on_fault(self, record) -> None:
        """Fault-plane listener: crash/hang quarantines, recover releases."""
        if record.backend < 0 or record.kind not in ("crash", "hang", "recover"):
            return
        if record.kind in ("crash", "hang") and record.active:
            self.topology.quarantine(record.backend)
        else:
            self.topology.release(record.backend)

    def on_health(self, record) -> None:
        """Heartbeat listener: HUNG/DEAD quarantines, ALIVE releases."""
        from repro.monitoring.heartbeat import NodeHealth

        if record.state is NodeHealth.ALIVE:
            self.topology.release(record.backend)
        else:
            self.topology.quarantine(record.backend)

    def attach_faults(self, plane) -> "Federation":
        """Subscribe quarantine handling to a fault plane."""
        plane.subscribe(self.on_fault)
        return self

    def attach_heartbeat(self, heartbeat) -> "Federation":
        """Chain quarantine handling onto a heartbeat monitor."""
        previous = heartbeat.observer

        def observer(record) -> None:
            if previous is not None:
                previous(record)
            self.on_health(record)

        heartbeat.observer = observer
        return self


def deploy_federation(
    sim: "ClusterSim",
    scheme_name: Optional[str] = None,
    heartbeat=None,
    num_shards: Optional[int] = None,
) -> Federation:
    """Build the two-level monitoring fabric on a built cluster.

    Creates one leaf node per shard (attached to the same fabric,
    booted, span-traced), deploys a :class:`LeafMonitor` per shard and
    the root :class:`FederatedMonitor`, starts everything, and — when a
    fault plane is already installed or a heartbeat monitor is passed —
    wires quarantine-driven rebalancing. Install the fault plane
    *before* calling this (or use :meth:`Federation.attach_faults`).
    """
    fed = sim.cfg.federation
    if fed.levels not in (2, 3):
        raise ValueError(f"federation.levels must be 2 or 3, got {fed.levels}")
    name = scheme_name if scheme_name is not None else fed.scheme
    cls = scheme_class(name)
    # Rebalancing migrates members between shards, which only a scheme
    # deployable over the whole cluster without per-member back-end
    # state can follow; others pin the static assignment.
    can_rebalance = (fed.rebalance_on_quarantine and cls.one_sided
                     and cls.backend_threads == 0)
    shards = num_shards if num_shards is not None else fed.num_shards
    if not shards and fed.levels == 3:
        # Three tiers balance near N^(1/3) fan-outs, not sqrt(N).
        shards = auto_shard_count_3level(len(sim.backends))
    topology = ShardTopology(
        len(sim.backends),
        shards,
        rebalance_on_quarantine=can_rebalance,
    )
    leaf_nodes: List[Node] = []
    base_index = sim.cfg.num_backends + 2  # after frontend/backends/clients
    for j in range(topology.num_shards):
        node = Node(sim.env, sim.cfg, f"leaf{j}", base_index + j, tracer=sim.tracer)
        sim.fabric.attach(node.nic)
        node.span_tracer = sim.spans
        node.boot()
        leaf_nodes.append(node)
    leaves = [
        LeafMonitor(sim, topology, j, leaf_nodes[j], scheme_name=name)
        for j in range(topology.num_shards)
    ]
    regions: List = []
    region_nodes: List[Node] = []
    if fed.levels == 3:
        from repro.federation.region import RegionAggregator
        from repro.federation.topology import auto_region_count

        nregions = fed.num_regions or auto_region_count(topology.num_shards)
        if nregions > topology.num_shards:
            raise ValueError("num_regions must not exceed num_shards")
        groups = ShardTopology._split(list(range(topology.num_shards)), nregions)
        rbase = base_index + topology.num_shards
        for r, leaf_idx in enumerate(groups):
            node = Node(sim.env, sim.cfg, f"region{r}", rbase + r,
                        tracer=sim.tracer)
            sim.fabric.attach(node.nic)
            node.span_tracer = sim.spans
            node.boot()
            region_nodes.append(node)
            regions.append(RegionAggregator(
                sim, r, [leaves[j] for j in leaf_idx], node))
    root = FederatedMonitor(sim, topology, leaves,
                            regions=regions if regions else None)
    for leaf in leaves:
        leaf.start()
    for region in regions:
        region.start()
    root.start()
    federation = Federation(sim=sim, topology=topology, leaves=leaves,
                            root=root, leaf_nodes=leaf_nodes,
                            regions=regions, region_nodes=region_nodes)
    faults = getattr(sim, "faults", None)
    if faults is not None:
        federation.attach_faults(faults)
    if heartbeat is not None:
        federation.attach_heartbeat(heartbeat)
    return federation
