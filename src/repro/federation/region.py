"""The middle tier of a three-level federation: region aggregators.

A :class:`RegionAggregator` is the root's principle applied one level
down: it RDMA-reads the exported snapshot region of every leaf in its
group each region period, folds the packed leaf snapshots into a
:class:`RegionSnapshot`, and writes the packed form into its *own*
exported memory region for the root's one-sided read. No leaf CPU is
involved in answering the region and no region CPU is involved in
answering the root.

Two properties make the tier scale:

* **Pass-through member records.** The region keeps each leaf's packed
  shard snapshot verbatim inside its own packed snapshot. Nested tuples
  of immutables deep-copy by identity, so the region's publish and the
  root's read both cost O(1) Python work per shard regardless of shard
  size — only the final consumer unpacks member records.
* **Pre-merged digests.** The region merges its leaves' per-metric
  digest states into one state per metric, so the root's digest rebuild
  is O(num_regions) instead of O(num_shards) per round.

Staleness still accumulates across all three hops: ``collected_at``
stays the back-end data timestamp end-to-end, and the root re-stamps
``received_at`` with its read instant when it unpacks the shard records
(see :mod:`repro.federation.snapshot`), so a member's apparent age
covers leaf poll lag + snapshot age on the region + snapshot age on
the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.federation.leaf import LeafMonitor
from repro.federation.snapshot import merge_digest_states
from repro.telemetry.digest import StreamingDigest
from repro.transport.verbs import AccessFlags, ProtectionDomain, WqeBatch, connect_monitor_qp

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import Task


@dataclass
class RegionSnapshot:
    """One region's merged view at one region epoch."""

    region: int
    #: the region's monotonic aggregation-round counter at publish time
    epoch: int
    #: region clock when the snapshot was composed
    published_at: int
    #: the freshest *packed* ShardSnapshot per leaf, in shard order
    shards: Tuple[tuple, ...] = ()
    #: metric → digest state pre-merged across the region's leaves
    digests: Dict[str, tuple] = field(default_factory=dict)

    def pack(self) -> tuple:
        """Nested tuples of immutables — the exported-MR wire format.

        The contained shard snapshots are already packed (they arrived
        that way from the leaves), so this is O(num_leaves) regardless
        of member count.
        """
        return (
            self.region,
            self.epoch,
            self.published_at,
            tuple(self.shards),
            tuple(sorted(self.digests.items())),
        )

    @staticmethod
    def unpack(packed: tuple) -> "RegionSnapshot":
        region, epoch, published_at, shards, digests = packed
        return RegionSnapshot(region=region, epoch=epoch,
                              published_at=published_at,
                              shards=tuple(shards), digests=dict(digests))


class RegionAggregator:
    """One region's leaf-snapshot reader + snapshot publisher."""

    def __init__(
        self,
        sim: "ClusterSim",
        region: int,
        leaves: List[LeafMonitor],
        node: "Node",
        interval: Optional[int] = None,
    ) -> None:
        if not leaves:
            raise ValueError("region aggregator needs at least one leaf")
        fed = sim.cfg.federation
        self.sim = sim
        self.region = region
        self.leaves = leaves
        self.node = node
        if interval is None:
            interval = (fed.region_interval or fed.leaf_interval
                        or sim.cfg.monitor.interval)
        if interval <= 0:
            raise ValueError("region interval must be positive")
        self.interval = interval
        self._qps = [connect_monitor_qp(node, leaf.node)[0] for leaf in leaves]
        #: freshest packed shard snapshot per leaf (keyed by shard index)
        self.shard_packed: Dict[int, tuple] = {}
        self.epoch = 0
        self.published = 0
        #: per-round wall time (fan-in reads + merge + publish), ns
        self.rounds: List[int] = []
        self.read_failures = 0
        self._stopped = False
        self._task: Optional["Task"] = None
        # The exported region MR, sized for every member a full set of
        # leaf snapshots can carry.
        capacity = sum(
            len(leaf.topology.static_assignment[leaf.shard]) for leaf in leaves
        )
        nbytes = fed.snapshot_base_bytes + fed.snapshot_bytes_per_node * max(
            1, capacity)
        self.mr_region = node.memory.alloc(
            f"fed.region:{region}", nbytes,
            value=RegionSnapshot(region, 0, 0).pack(),
        )
        self.mr = ProtectionDomain.for_node(node).register(
            self.mr_region, AccessFlags.REMOTE_READ)

    # ------------------------------------------------------------------
    def start(self) -> "Task":
        if self._task is not None:
            raise RuntimeError("region aggregator already started")
        self._task = self.node.spawn(f"fed-region:{self.region}", self._body)
        return self._task

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _body(self, k):
        net = self.sim.cfg.net
        fed = self.sim.cfg.federation
        spans = self.sim.spans
        while not self._stopped:
            t0 = k.now
            span = None
            if spans is not None and spans.enabled:
                span = spans.start_trace(
                    f"fed.region:{self.region}", node=self.node.name,
                    component="federation",
                    attrs={"region": self.region, "leaves": len(self.leaves)})
            # Batched fan-in, exactly like the root over its leaves:
            # post every leaf-snapshot read, one doorbell, then drain.
            batch = WqeBatch(net=net)
            events = [
                batch.post_read(qp, leaf.mr.rkey, leaf.mr.nbytes, ctx=span)
                for qp, leaf in zip(self._qps, self.leaves)
            ]
            yield from batch.ring(k)
            for ev in events:
                wc = yield k.wait(ev)
                if wc.ok:
                    packed = wc.value
                    yield k.compute(fed.region_merge_cost)
                    # packed[0] is the shard index — keep the tuple
                    # verbatim so the root's read stays identity-copy.
                    self.shard_packed[packed[0]] = packed
                else:
                    self.read_failures += 1
            self.epoch += 1
            snap = RegionSnapshot(
                region=self.region,
                epoch=self.epoch,
                published_at=k.now,
                shards=tuple(
                    self.shard_packed[s] for s in sorted(self.shard_packed)),
                digests=self._merged_digest_states(),
            )
            yield k.compute(fed.region_publish_cost)
            # pack() passes through already-immutable leaf tuples, so
            # skip the O(snapshot-size) classification walk on publish.
            self.mr_region.write(snap.pack(), frozen=True)
            self.published += 1
            self.rounds.append(k.now - t0)
            if span is not None:
                spans.end(span, attrs={"epoch": self.epoch,
                                       "shards": len(self.shard_packed)})
            yield k.sleep(self.interval)

    def _merged_digest_states(self) -> Dict[str, tuple]:
        """One pre-merged digest state per metric across held leaves."""
        states: Dict[str, list] = {}
        for packed in self.shard_packed.values():
            # packed ShardSnapshot layout: (..., nodes, digests) with
            # digests as a tuple of (metric, state) pairs.
            for metric, state in packed[5]:
                states.setdefault(metric, []).append(state)
        out: Dict[str, tuple] = {}
        for metric, sts in states.items():
            merged: Optional[StreamingDigest] = merge_digest_states(sts)
            if merged is not None:
                out[metric] = merged.to_state()
        return out
