"""Leaf monitors: one per-shard poller on a dedicated leaf node.

A :class:`LeafMonitor` is the shard-scale analogue of the
:class:`~repro.monitoring.frontend.FrontendMonitor`: it runs any of the
registered monitoring schemes, restricted to its shard, on its own leaf
node. The scheme is built against a :class:`ShardView` — a
``ClusterSim``-shaped facade whose ``frontend`` is the leaf node and
whose ``backends`` are the shard's members — so every scheme works
unmodified. RDMA schemes additionally get the batched fan-out
(`query_many`): the whole shard round is posted first and the doorbell
rings once.

After each round the leaf folds the results into a mergeable
:class:`~repro.federation.snapshot.ShardSnapshot` and writes its packed
form into a registered, remotely-readable memory region — the same
one-sided principle the paper applies to kernel counters, applied
recursively: the root learns the shard's state by DMA, never by asking
a leaf CPU.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.federation.snapshot import SNAPSHOT_METRICS, ShardSnapshot
from repro.federation.topology import ShardTopology
from repro.monitoring.loadinfo import LoadInfo
from repro.monitoring.registry import create_scheme, scheme_class
from repro.telemetry.digest import StreamingDigest
from repro.transport.verbs import AccessFlags, ProtectionDomain

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import Task


class ShardView:
    """A ``ClusterSim``-shaped facade scoping a scheme to one shard.

    Monitoring schemes only touch ``env / cfg / rng / tracer / spans /
    faults / frontend / backends``; presenting the leaf node as the
    front-end and the shard members as the cluster lets every registered
    scheme deploy against a shard without modification.
    """

    def __init__(self, sim: "ClusterSim", leaf_node: "Node", backends: List["Node"]) -> None:
        self.env = sim.env
        self.cfg = sim.cfg
        self.rng = sim.rng
        self.tracer = sim.tracer
        self.spans = sim.spans
        self.faults = getattr(sim, "faults", None)
        self.frontend = leaf_node
        self.backends = list(backends)


class LeafMonitor:
    """One shard's poller + snapshot publisher."""

    def __init__(
        self,
        sim: "ClusterSim",
        topology: ShardTopology,
        shard: int,
        node: "Node",
        scheme_name: Optional[str] = None,
        interval: Optional[int] = None,
        metrics=SNAPSHOT_METRICS,
    ) -> None:
        fed = sim.cfg.federation
        self.sim = sim
        self.topology = topology
        self.shard = shard
        self.node = node
        self.scheme_name = scheme_name if scheme_name is not None else fed.scheme
        if interval is None:
            interval = fed.leaf_interval or sim.cfg.monitor.interval
        self.interval = interval
        # One-sided schemes with no back-end agent can safely be
        # deployed over the whole cluster (a registration + QP per
        # member costs the members nothing), which lets quarantine
        # rebalancing migrate members between shards. Schemes that run
        # per-member threads or buffers stay scoped to the static shard
        # so deploying a leaf never perturbs back-ends outside it.
        cls = scheme_class(self.scheme_name)
        self._full_universe = (
            topology.rebalance_on_quarantine
            and cls.one_sided
            and cls.backend_threads == 0
        )
        if self._full_universe:
            universe = list(range(topology.num_backends))
        else:
            universe = list(topology.static_assignment[shard])
        self._universe = universe
        self._local_of = {g: li for li, g in enumerate(universe)}
        view = ShardView(sim, node, [sim.backends[g] for g in universe])
        self.scheme = create_scheme(self.scheme_name, view, interval=interval)
        self.metrics = tuple(metrics)
        #: freshest report per member, keyed by *global* back-end index
        self.latest: Dict[int, LoadInfo] = {}
        #: cumulative per-metric merge digests over the shard's stream
        self.digests: Dict[str, StreamingDigest] = {
            m: StreamingDigest(fed.digest_compression) for m in self.metrics
        }
        self.epoch = 0
        self.published = 0
        #: per-round wall time (poll + merge + publish), ns
        self.rounds: List[int] = []
        self._stopped = False
        self._task: Optional["Task"] = None
        # The exported snapshot MR, sized for the largest assignment a
        # rebalance can hand this shard.
        capacity = -(-topology.num_backends // topology.num_shards)
        nbytes = fed.snapshot_base_bytes + fed.snapshot_bytes_per_node * capacity
        self.region = node.memory.alloc(
            f"fed.snapshot:{shard}", nbytes,
            value=ShardSnapshot(shard, 0, topology.generation, 0).pack(),
        )
        self.mr = ProtectionDomain.for_node(node).register(
            self.region, AccessFlags.REMOTE_READ)

    # ------------------------------------------------------------------
    def start(self) -> "Task":
        if self._task is not None:
            raise RuntimeError("leaf monitor already started")
        self._task = self.node.spawn(f"fed-leaf:{self.shard}", self._body)
        return self._task

    def stop(self) -> None:
        self._stopped = True
        self.scheme.stop()

    def members(self) -> List[int]:
        """Global indices this leaf polls right now."""
        return [g for g in self.topology.members(self.shard)
                if g in self._local_of]

    # ------------------------------------------------------------------
    def _body(self, k):
        fed = self.sim.cfg.federation
        spans = self.sim.spans
        while not self._stopped:
            t0 = k.now
            members = self.members()
            span = None
            if spans is not None and spans.enabled:
                span = spans.start_trace(
                    f"fed.leaf:{self.shard}", node=self.node.name,
                    component="federation",
                    attrs={"shard": self.shard, "members": len(members)})
            infos: Dict[int, LoadInfo] = {}
            if members:
                locals_ = [self._local_of[g] for g in members]
                infos = yield from self.scheme.query_many(k, locals_)
            for li, info in infos.items():
                g = self._universe[li]
                self.latest[g] = info
                for m, digest in self.digests.items():
                    digest.update(float(getattr(info, m)))
            self.epoch += 1
            # Fold the round into the mergeable snapshot and publish it
            # into the exported region for the root's one-sided read.
            yield k.compute(fed.merge_cost)
            snap = ShardSnapshot(
                shard=self.shard,
                epoch=self.epoch,
                generation=self.topology.generation,
                published_at=k.now,
                nodes={g: self.latest[g] for g in members if g in self.latest},
                digests={m: d.to_state() for m, d in self.digests.items()},
            )
            yield k.compute(fed.publish_cost)
            # pack() guarantees nested tuples of immutables, so skip the
            # O(snapshot-size) classification walk on every publish.
            self.region.write(snap.pack(), frozen=True)
            self.published += 1
            self.rounds.append(k.now - t0)
            if span is not None:
                spans.end(span, attrs={"epoch": self.epoch})
            yield k.sleep(self.interval)
