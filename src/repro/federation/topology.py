"""Shard topology: who monitors whom.

Partitions N back-ends into shards with a deterministic, seed-stable
assignment (contiguous blocks of the index order — no RNG draw, so
installing the federation can never perturb any other component's
stream). Quarantine events from the fault plane / heartbeat shrink a
shard's *active* member set; with ``rebalance_on_quarantine`` the
surviving members are re-split evenly across the shards and the
``generation`` counter is bumped so stale shard views are identifiable
downstream.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set


def auto_shard_count(num_backends: int) -> int:
    """Default shard count: ceil(sqrt(N)) balances the two fan-outs.

    The root polls ``num_shards`` leaves and each leaf polls
    ``N / num_shards`` members; sqrt(N) keeps both tiers' rounds at
    O(sqrt(N)) instead of the flat front-end's O(N).
    """
    return max(1, math.isqrt(max(1, num_backends - 1)) + 1) \
        if num_backends > 1 else 1


def auto_shard_count_3level(num_backends: int) -> int:
    """Default shard count for a three-tier fabric: ceil(N / cbrt(N)).

    With a region tier between leaves and root, balancing all three
    fan-outs means ~N^(1/3) members per leaf, ~N^(1/3) leaves per
    region and ~N^(1/3) regions under the root. Computed via the
    rounded integer cube root so exact cubes land exactly (N=4096 →
    256 shards of 16, not a float-fuzz 257).
    """
    if num_backends <= 1:
        return 1
    k = max(1, round(num_backends ** (1.0 / 3.0)))
    return -(-num_backends // k)


def auto_region_count(num_shards: int) -> int:
    """Default region count: ceil(sqrt(num_shards)).

    Splits the leaf fan-in evenly between the region tier and the
    root, mirroring :func:`auto_shard_count` one level up.
    """
    return auto_shard_count(num_shards)


class ShardTopology:
    """Deterministic back-end → shard assignment with quarantine."""

    def __init__(
        self,
        num_backends: int,
        num_shards: int = 0,
        rebalance_on_quarantine: bool = True,
    ) -> None:
        if num_backends < 1:
            raise ValueError("need at least one back-end")
        if num_shards < 0:
            raise ValueError("num_shards must be >= 0 (0 = auto)")
        if num_shards > num_backends:
            raise ValueError("num_shards must not exceed num_backends")
        self.num_backends = num_backends
        self.num_shards = num_shards if num_shards else auto_shard_count(num_backends)
        self.rebalance_on_quarantine = rebalance_on_quarantine
        #: the immutable deploy-time assignment (leaf schemes that need
        #: per-member state — sockets, push buffers — deploy over this)
        self.static_assignment: List[List[int]] = self._split(
            list(range(num_backends)), self.num_shards)
        #: the current assignment consulted every poll round
        self.assignment: List[List[int]] = [list(s) for s in self.static_assignment]
        #: bumped on every re-split; stamped into shard snapshots so the
        #: root can tell which layout a view was collected under
        self.generation = 0
        self.quarantined: Set[int] = set()
        #: rebalance count (diagnostics)
        self.rebalances = 0

    @staticmethod
    def _split(members: Sequence[int], shards: int) -> List[List[int]]:
        """Contiguous near-even blocks: first ``N % shards`` get one extra."""
        n = len(members)
        base, extra = divmod(n, shards)
        out: List[List[int]] = []
        start = 0
        for j in range(shards):
            size = base + (1 if j < extra else 0)
            out.append(list(members[start:start + size]))
            start += size
        return out

    # ------------------------------------------------------------------
    def members(self, shard: int) -> List[int]:
        """Active (non-quarantined) members a leaf should poll now."""
        return [b for b in self.assignment[shard] if b not in self.quarantined]

    def shard_of(self, backend: int) -> int:
        for j, shard in enumerate(self.assignment):
            if backend in shard:
                return j
        raise KeyError(f"backend {backend} not in any shard")

    def active_backends(self) -> List[int]:
        return [b for b in range(self.num_backends) if b not in self.quarantined]

    # ------------------------------------------------------------------
    def quarantine(self, backend: int) -> bool:
        """Remove a back-end from the polled set; returns True on change."""
        if backend < 0 or backend >= self.num_backends or backend in self.quarantined:
            return False
        self.quarantined.add(backend)
        if self.rebalance_on_quarantine:
            self.rebalance()
        return True

    def release(self, backend: int) -> bool:
        """Re-admit a recovered back-end; returns True on change."""
        if backend not in self.quarantined:
            return False
        self.quarantined.discard(backend)
        if self.rebalance_on_quarantine:
            self.rebalance()
        return True

    def rebalance(self) -> None:
        """Re-split the surviving members evenly; bump the generation.

        Deterministic: members stay in index order and the split is the
        same contiguous-blocks rule as at deploy time, so two same-seed
        runs quarantining the same back-ends agree on every assignment.
        """
        self.assignment = self._split(self.active_backends(), self.num_shards)
        self.generation += 1
        self.rebalances += 1

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "num_backends": self.num_backends,
            "num_shards": self.num_shards,
            "generation": self.generation,
            "assignment": [list(s) for s in self.assignment],
            "quarantined": sorted(self.quarantined),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ShardTopology {self.num_backends} backends / "
                f"{self.num_shards} shards gen={self.generation}>")
