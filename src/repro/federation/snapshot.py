"""Mergeable epoch snapshots: the leaf ⇄ root exchange format.

A leaf folds each completed shard round into a :class:`ShardSnapshot`:
the freshest :class:`~repro.monitoring.loadinfo.LoadInfo` per member,
stamped with the leaf's monotonic epoch and the topology generation it
was collected under, plus one mergeable
:class:`~repro.telemetry.digest.StreamingDigest` state per tracked
metric. The snapshot is *packed* into nested tuples of immutables
before being written to the leaf's exported memory region — crucial,
because buffer-region DMA reads deep-copy their value and
``copy.deepcopy`` returns immutables by identity, so a root read of a
packed snapshot costs O(1) Python work regardless of shard size.

**Staleness propagation**: ``collected_at`` is always the back-end data
timestamp. The packed record carries the leaf's delivery time; on
unpack the root re-stamps ``received_at`` with *its* read time, so a
node's apparent staleness accumulates across both hops (leaf poll lag +
snapshot age on the root) instead of being reset by the aggregation
tier — exactly what the paper's Fig 5-style accuracy analysis must see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.monitoring.loadinfo import LoadInfo
from repro.telemetry.digest import StreamingDigest

#: LoadInfo metrics digested at the leaves and merged at the root
SNAPSHOT_METRICS: Tuple[str, ...] = (
    "cpu_util",
    "runq_load",
    "nr_running",
    "staleness",
)


def pack_info(backend_index: int, info: LoadInfo) -> tuple:
    """One member's load record as an all-immutable tuple."""
    return (
        backend_index,
        info.backend,
        info.collected_at,
        info.received_at,
        info.nr_threads,
        info.nr_running,
        info.runq_load,
        info.cpu_util,
        info.busy_cpus,
        info.loadavg1,
        info.mem_util,
        info.net_rate_mbps,
        tuple(sorted(info.gauges.items())),
        None if info.irq_pending is None else tuple(info.irq_pending),
        None if info.irq_handled is None else tuple(info.irq_handled),
    )


def unpack_info(packed: tuple, received_at: Optional[int] = None) -> Tuple[int, LoadInfo]:
    """Rebuild ``(backend_index, LoadInfo)``.

    ``received_at`` re-stamps the delivery time (the root passes its
    read instant so staleness keeps growing through the merge); None
    keeps the leaf's delivery time.
    """
    (index, backend, collected_at, leaf_received_at, nr_threads, nr_running,
     runq_load, cpu_util, busy_cpus, loadavg1, mem_util, net_rate_mbps,
     gauges, irq_pending, irq_handled) = packed
    # Positional construction in LoadInfo field order — the root
    # re-materialises every member record each round, so skip the
    # keyword-call overhead on this hot path.
    info = LoadInfo(
        backend,
        collected_at,
        leaf_received_at if received_at is None else received_at,
        nr_threads,
        nr_running,
        runq_load,
        cpu_util,
        busy_cpus,
        loadavg1,
        mem_util,
        net_rate_mbps,
        dict(gauges),
        None if irq_pending is None else list(irq_pending),
        None if irq_handled is None else list(irq_handled),
    )
    return index, info


@dataclass
class ShardSnapshot:
    """One shard's merged view at one leaf epoch."""

    shard: int
    #: the leaf's monotonic poll-round counter at publish time
    epoch: int
    #: topology generation the round was collected under
    generation: int
    #: leaf clock when the snapshot was composed
    published_at: int
    #: freshest report per member, keyed by *global* back-end index
    nodes: Dict[int, LoadInfo] = field(default_factory=dict)
    #: metric → StreamingDigest state tuple (cumulative over the shard)
    digests: Dict[str, tuple] = field(default_factory=dict)

    def pack(self) -> tuple:
        """Nested tuples of immutables — the exported-MR wire format."""
        return (
            self.shard,
            self.epoch,
            self.generation,
            self.published_at,
            tuple(pack_info(i, info) for i, info in sorted(self.nodes.items())),
            tuple(sorted(self.digests.items())),
        )

    @staticmethod
    def unpack(packed: tuple, received_at: Optional[int] = None) -> "ShardSnapshot":
        shard, epoch, generation, published_at, nodes, digests = packed
        snap = ShardSnapshot(shard=shard, epoch=epoch, generation=generation,
                             published_at=published_at)
        for rec in nodes:
            index, info = unpack_info(rec, received_at=received_at)
            snap.nodes[index] = info
        snap.digests = dict(digests)
        return snap

    def wire_bytes(self, base_bytes: int, per_node_bytes: int) -> int:
        """Declared wire size under the configured sizing model."""
        return base_bytes + per_node_bytes * max(1, len(self.nodes))


def merge_digest_states(states: Sequence[tuple]) -> Optional[StreamingDigest]:
    """Merge shard digest states into one global digest (None if empty)."""
    merged: Optional[StreamingDigest] = None
    for state in states:
        sd = StreamingDigest.from_state(state)
        if merged is None:
            merged = sd
        else:
            merged.merge(sd)
    return merged
