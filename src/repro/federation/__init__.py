"""repro.federation — hierarchical sharded monitoring fabric.

Scales the paper's single front-end monitor past its 8-node testbed:
a deterministic sharding layer (:mod:`~repro.federation.topology`),
per-shard leaf monitors with batched RDMA fan-out
(:mod:`~repro.federation.leaf`), mergeable epoch snapshots
(:mod:`~repro.federation.snapshot`), and a root aggregator that
RDMA-reads each leaf's exported snapshot region
(:mod:`~repro.federation.aggregator`). With ``cfg.federation.levels=3``
a region tier (:mod:`~repro.federation.region`) sits between leaves and
root so every fan-out stays near N^(1/3) — the regime that holds
N=4096 inside a 1 ms period. Default-off via
``cfg.federation.enabled`` — see docs/FEDERATION.md.
"""

from repro.federation.aggregator import (
    FederatedMonitor,
    Federation,
    deploy_federation,
)
from repro.federation.leaf import LeafMonitor, ShardView
from repro.federation.region import RegionAggregator, RegionSnapshot
from repro.federation.snapshot import (
    SNAPSHOT_METRICS,
    ShardSnapshot,
    merge_digest_states,
    pack_info,
    unpack_info,
)
from repro.federation.topology import (
    ShardTopology,
    auto_region_count,
    auto_shard_count,
    auto_shard_count_3level,
)

__all__ = [
    "SNAPSHOT_METRICS",
    "FederatedMonitor",
    "Federation",
    "LeafMonitor",
    "RegionAggregator",
    "RegionSnapshot",
    "ShardSnapshot",
    "ShardTopology",
    "ShardView",
    "auto_region_count",
    "auto_shard_count",
    "auto_shard_count_3level",
    "deploy_federation",
    "merge_digest_states",
    "pack_info",
    "unpack_info",
]
