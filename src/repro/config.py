"""Central calibration constants for the simulated cluster.

Every timing constant in the simulator lives here, in one dataclass, so
that calibration is auditable and experiments can perturb a single knob.
Values are chosen to be representative of the paper's 2006 testbed
(dual 2.4 GHz Xeon nodes, Mellanox InfiniHost 4x HCAs, RedHat 9 /
Linux 2.4, IPoIB for the socket path) — see DESIGN.md §2/§6. Absolute
numbers are *plausible magnitudes*, not measurements; the experiments
compare schemes against each other, which is what the paper reports.

All times are integer nanoseconds (see :mod:`repro.sim.units`).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from difflib import get_close_matches

from repro.sim.units import MICROSECOND as US
from repro.sim.units import MILLISECOND as MS
from repro.sim.units import SECOND as S


def _unknown_key_error(cls, name: str) -> str:
    matches = get_close_matches(name, cls.__dataclass_fields__, n=1, cutoff=0.6)
    hint = f" — did you mean {matches[0]!r}?" if matches else ""
    return (
        f"unknown config key {cls.__name__}.{name}{hint} "
        f"(valid keys: {', '.join(sorted(cls.__dataclass_fields__))})"
    )


def audited(cls):
    """Schema-audit a config dataclass: unknown keys raise, with a hint.

    A mistyped knob (``cfg.monitor.intervall = ...``, or
    ``MonitorConfig(intervall=...)``) used to be silently accepted as a
    stray attribute / swallowed as a bare TypeError, leaving the real
    knob at its default and the experiment subtly wrong. With the
    audit, both construction and assignment of a name that is not a
    declared field raise immediately with a did-you-mean suggestion.
    """
    orig_init = cls.__init__
    fields = cls.__dataclass_fields__

    def __init__(self, *args, **kwargs):
        for key in kwargs:
            if key not in fields:
                raise TypeError(_unknown_key_error(cls, key))
        orig_init(self, *args, **kwargs)

    def __setattr__(self, name, value):
        if name not in fields:
            raise AttributeError(_unknown_key_error(cls, name))
        object.__setattr__(self, name, value)

    __init__.__wrapped__ = orig_init
    cls.__init__ = __init__
    cls.__setattr__ = __setattr__
    return cls


@audited
@dataclass
class EngineConfig:
    """Discrete-event scheduler core (see :mod:`repro.sim.wheel`).

    The default bucketed timing wheel gives O(1) insert/cancel for every
    event inside its horizon (``2**(wheel_bucket_bits + wheel_ring_bits)``
    ns ≈ 33.6 ms at the defaults) with an overflow heap beyond it; the
    pre-wheel global binary heap remains selectable as the reference
    core. Both dispatch in the identical ``(time, priority, seq)`` order
    — enforced by ``tests/sim/test_core_differential.py`` — so this
    choice never changes simulation results, only wall-clock.
    """

    #: scheduler core: "wheel" (bucketed timing wheel, default) or
    #: "heap" (the single global binary heap of PR 6)
    core: str = "wheel"
    #: log2 of the wheel bucket width in ns (12 -> 4.096 us buckets)
    wheel_bucket_bits: int = 12
    #: log2 of the wheel ring length in buckets (13 -> 8192 buckets)
    wheel_ring_bits: int = 13


@audited
@dataclass
class CpuConfig:
    """Per-node CPU and scheduler parameters (Linux-2.4 flavoured)."""

    #: number of CPUs per node (the paper's nodes are dual Xeon)
    num_cpus: int = 2
    #: timer tick period — 100 Hz, as in Linux 2.4
    tick: int = 10 * MS
    #: base timeslice granted at each epoch recalculation, in ticks
    timeslice_ticks: int = 6
    #: maximum counter a sleeping task can accumulate, in ticks
    counter_cap_ticks: int = 12
    #: direct cost of a context switch (register/TLB/cache effects folded in)
    context_switch: int = 3 * US
    #: cost of the timer interrupt handler itself
    timer_irq_cost: int = 1 * US
    #: scheduler epoch recalculation: fixed + per-task cost (O(n) scan)
    recalc_base: int = 2 * US
    recalc_per_task: int = 150  # 150 ns per task
    #: margin by which a woken task's goodness must beat the running
    #: task's before wakeup preemption fires (2.4's preemption_goodness)
    wake_preempt_margin: int = 1
    #: ordinary wakeups only preemption-check the task's last CPU
    #: (2.4 ``p->processor`` stickiness); False = scan all CPUs (ablation)
    sticky_wakeups: bool = True
    #: network-delivery wakeups use the aggressive (no-margin, all-CPU)
    #: preemption path; False disables the boost (ablation)
    net_wake_boost: bool = True
    #: system-mode bursts are non-preemptible (2.4 kernel semantics);
    #: False allows preemption anywhere (ablation)
    kernel_nonpreemptible: bool = True


@audited
@dataclass
class IrqConfig:
    """Interrupt and softirq costs."""

    #: interrupt entry/exit overhead (mode switch, ack)
    irq_entry: int = 1500  # 1.5 us
    #: NIC receive interrupt handler body (ring buffer reap, schedule softirq)
    nic_irq_cost: int = 4 * US
    #: per-packet network-RX softirq processing (IP + TCP receive path)
    softirq_per_packet: int = 8 * US
    #: maximum packets drained per softirq invocation before deferring to
    #: ksoftirqd (netdev_max_backlog-style budget)
    softirq_budget: int = 16
    #: which CPU NIC interrupts are routed to (the paper's Fig 6 shows the
    #: second CPU taking the interrupt load); -1 = round-robin
    nic_irq_affinity: int = 1
    #: CQ completion interrupt handler cost (verbs plane, initiator side)
    cq_irq_cost: int = 2 * US


@audited
@dataclass
class SyscallConfig:
    """Kernel entry and /proc costs."""

    #: bare syscall trap cost
    trap: int = 1 * US
    #: fixed cost of assembling /proc system statistics
    proc_read_base: int = 10 * US
    #: per-task cost of scanning the task list for /proc statistics —
    #: a monitoring daemon walks /proc/<pid>/stat for every process
    #: (an open + read + parse each, ~tens of µs apiece on 2003-era
    #: hardware), which dominates on busy nodes and drives both the
    #: paper's Fig 3 linear latency growth and the back-end perturbation
    #: of Figs 4/8
    proc_read_per_task: int = 30 * US
    #: copy cost per KB between kernel and user space
    copy_per_kb: int = 300


@audited
@dataclass
class NetConfig:
    """Fabric, IPoIB (sockets) and verbs (RDMA) parameters."""

    #: one-way wire propagation per hop (NIC->switch or switch->NIC)
    hop_latency: int = 200
    #: switch forwarding latency (cut-through, non-blocking crossbar)
    switch_latency: int = 300
    #: link data bandwidth in bytes/ns — 4x IB ≈ 1 GB/s effective
    link_bytes_per_ns: float = 1.0
    #: IPoIB effective bandwidth fraction (protocol overhead)
    ipoib_bw_factor: float = 0.35

    # -- sockets (IPoIB) path -------------------------------------------
    #: CPU cost of the TCP/IP transmit path per message (send syscall
    #: excluded; copies excluded — added per KB)
    tcp_tx_cost: int = 12 * US
    #: CPU cost in softirq context per received message is in IrqConfig
    #: (softirq_per_packet); this is the extra socket-layer delivery cost
    socket_deliver_cost: int = 3 * US
    #: TCP/IP header + IPoIB encapsulation overhead per message, bytes
    tcp_overhead_bytes: int = 94

    # -- verbs (native RDMA) path -----------------------------------------
    #: CPU cost of ringing the doorbell and building a WQE (initiator)
    doorbell_cost: int = 700
    #: NIC processing per work request (initiator side: WQE fetch, DMA)
    nic_wqe_service: int = 2500
    #: NIC processing at the *target* of an RDMA read/write: address
    #: translation + DMA — performed entirely by the HCA, no host CPU
    nic_dma_service: int = 3 * US
    #: DMA cost per KB moved on the target side
    nic_dma_per_kb: int = 250
    #: completion-queue entry generation cost (initiator NIC)
    cqe_cost: int = 500
    #: RDMA message header overhead, bytes
    rdma_overhead_bytes: int = 30
    #: verbs send/recv (channel semantics) receive-side CPU cost — used by
    #: the hardware-multicast ablation; still needs a posted recv + event
    channel_recv_cost: int = 5 * US


@audited
@dataclass
class ServerConfig:
    """Web-server / RUBiS / workload-side parameters."""

    #: worker processes per web server node (Apache prefork style)
    workers_per_server: int = 8
    #: accept-queue depth
    accept_backlog: int = 128
    #: per-node document cache entries for the Zipf workload (LRU)
    doc_cache_entries: int = 400
    #: number of distinct documents in the Zipf trace
    zipf_documents: int = 4000
    #: disk service time for one document-cache miss (misses queue on
    #: the server's single spindle)
    disk_fetch: int = 3 * MS
    #: cached static document service CPU cost
    static_serve: int = 400 * US


@audited
@dataclass
class MonitorConfig:
    """Monitoring-scheme parameters."""

    #: default polling interval T (the paper uses 50 ms unless stated)
    interval: int = 50 * MS
    #: wire size of a load-information record, bytes
    loadinfo_bytes: int = 64
    #: wire size of a load request message, bytes
    request_bytes: int = 16
    #: extended (e-RDMA-Sync) record with irq_stat, bytes
    extended_bytes: int = 128
    #: CPU cost for the back-end to compose a LoadInfo from /proc output
    compose_cost: int = 2 * US
    #: FrontendMonitor history bound, entries (0 = unbounded, as the
    #: paper's short experiment runs want; long-horizon runs set this
    #: and keep full statistics in repro.telemetry instead)
    history_limit: int = 0
    #: per-probe timeout, ns (0 disables the whole retry machinery and
    #: keeps every scheme on its historical unbounded-wait code path)
    probe_timeout: int = 0
    #: retransmissions after the first attempt before a probe is failed
    probe_retries: int = 2
    #: base retry backoff, ns (attempt n sleeps backoff * factor**(n-1))
    probe_backoff: int = 1 * MS
    probe_backoff_factor: float = 2.0
    #: backoff ceiling, ns
    probe_backoff_max: int = 50 * MS


@audited
@dataclass
class FederationConfig:
    """Hierarchical sharded monitoring (see :mod:`repro.federation`).

    Default-off: with ``enabled=False`` nothing in the federation
    package is constructed and every historical run stays byte-identical
    (property-tested, like the faults plane).
    """

    #: master switch for the two-level monitoring fabric
    enabled: bool = False
    #: tiers in the fabric: 2 = leaf → root (historical), 3 = leaf →
    #: region → root; three tiers keep every fan-out near N^(1/3), the
    #: regime that holds an N=4096 deployment inside a 1 ms period
    levels: int = 2
    #: number of shards (leaf monitors); 0 = auto — ceil(sqrt(N)) at
    #: two levels, ceil(N / round(N^(1/3))) at three
    num_shards: int = 0
    #: number of region aggregators (3-level only); 0 = auto,
    #: ceil(sqrt(num_shards))
    num_regions: int = 0
    #: scheme each leaf runs over its shard (any registered name)
    scheme: str = "rdma-sync"
    #: leaf poll period over shard members; 0 = cfg.monitor.interval
    leaf_interval: int = 0
    #: root aggregation period (RDMA-reads every leaf snapshot MR);
    #: 0 = the leaf interval
    root_interval: int = 0
    #: region aggregation period (3-level only); 0 = the leaf interval
    region_interval: int = 0
    #: exported snapshot MR sizing: fixed header + per-node record
    snapshot_base_bytes: int = 64
    snapshot_bytes_per_node: int = 96
    #: per-metric merge-digest compression at the leaves (the merged
    #: global rank error is bounded by 2 x 3/compression — FEDERATION.md)
    digest_compression: int = 64
    #: re-split shards over the surviving members when the fault plane /
    #: heartbeat quarantines a back-end (False: quarantine only shrinks
    #: the afflicted shard's polled set)
    rebalance_on_quarantine: bool = True
    #: leaf CPU to fold a shard round into the mergeable snapshot
    merge_cost: int = 3 * US
    #: leaf CPU to serialise + write the snapshot into its exported MR
    publish_cost: int = 1 * US
    #: root CPU to merge one shard snapshot into the global view
    root_merge_cost: int = 2 * US
    #: region CPU to fold one leaf snapshot into its region view
    region_merge_cost: int = 2 * US
    #: region CPU to serialise + write its snapshot into its exported MR
    region_publish_cost: int = 1 * US


@audited
@dataclass
class CongestionConfig:
    """Congestion-realistic fabric (see :mod:`repro.congestion`).

    Default-off: with ``enabled=False`` the fabric keeps its historical
    infinite-buffer, congestion-oblivious path and every run stays
    byte-identical (property-tested, like the faults and federation
    planes). When on, every unicast packet passes a RoCEv2-style egress
    queue at its destination port: depth above ``ecn_kmin`` starts
    WRED-style ECN marking, ``pfc_xoff`` emits a PFC pause to the
    sending port, and marked arrivals make the receiver NIC generate
    CNPs that drive a per-flow DCQCN rate controller at the sender.
    All sizes are bytes, all times nanoseconds; docs/FABRIC.md has the
    model's derivation and ground rules.
    """

    #: master switch for the whole congestion plane
    enabled: bool = False
    #: DCQCN rate control (CNP generation + sender rate state); with it
    #: off, ECN marks are still counted but nobody reacts — the
    #: "uncontrolled" incast arm of the experiments
    dcqcn: bool = True
    #: PFC pause frames (lossless flow control); with it off the egress
    #: queue is an infinite buffer and congestion shows up purely as
    #: queueing delay (bufferbloat)
    pfc: bool = True
    #: nominal per-port egress buffering, for validation/documentation
    queue_capacity: int = 256 * 1024
    #: ECN marking ramp: no marks below kmin, probability rising
    #: linearly to ``ecn_pmax`` at kmax, every packet marked above kmax
    ecn_kmin: int = 64 * 1024
    ecn_kmax: int = 192 * 1024
    ecn_pmax: float = 0.2
    #: PFC thresholds: pause the sender when the egress queue passes
    #: xoff, let it resume once the queue has drained to xon
    pfc_xoff: int = 224 * 1024
    pfc_xon: int = 128 * 1024
    #: minimum gap between CNPs the receiver generates per flow (the
    #: CNP coalescing timer of real HCAs)
    cnp_interval: int = 50 * US
    #: DCQCN alpha gain g: alpha <- (1-g)*alpha + g on each CNP, and
    #: decays by (1-g) each recovery period without one
    alpha_g: float = 0.0625
    #: additive-increase step (fraction of line rate) per ``ai_timer``
    ai_factor: float = 0.02
    #: rate-increase timer (DCQCN's K), ns
    ai_timer: int = 55 * US
    #: floor on a flow's rate factor — a paced flow never fully stalls
    min_rate: float = 0.01
    #: monitoring/control QPs ride PFC service level 1: their flows keep
    #: draining while the port's priority-0 traffic is paused, so tenant
    #: floods (and tenancy throttling) can never stall probe responses.
    #: Off by default — priority-0 flow keys stay byte-identical.
    monitor_priority: bool = False


@audited
@dataclass
class TenancyConfig:
    """Multi-tenant NIC resource model (see :mod:`repro.tenancy`).

    Default-off: with ``enabled=False`` no plane is constructed, every
    NIC's ``tenancy`` hook stays ``None`` (one attribute check on the
    verbs hot path) and every historical run is byte-identical
    (property-tested, like the faults/federation/congestion planes).
    When on, every QP and MR is attributed to a tenant, the NIC's
    bounded QP table and shared ICM/context cache are modeled, verb
    posts are policed against per-tenant quotas and rates, and an
    optional closed defense loop throttles/quarantines offenders.
    docs/TENANCY.md has the model's derivation and attack taxonomy.
    """

    #: master switch for the whole tenancy plane
    enabled: bool = False
    #: bounded per-NIC QP table — creating a QP past it raises
    qp_table_size: int = 256
    #: per-NIC ICM/context cache entries (QP + MR state), LRU, shared
    #: across every tenant — one tenant's churn evicts another's state
    icm_entries: int = 64
    #: PCIe refill penalty paid by a verb whose QP/MR context missed
    #: the ICM cache, ns (charged on the NIC that took the miss)
    icm_miss_penalty: int = 2 * US
    #: per-tenant active-QP quota (0 = unlimited)
    default_qp_quota: int = 0
    #: per-tenant posted-bytes policing rate, bytes/s (0 = unpoliced);
    #: the system tenant (monitoring/infrastructure) is never policed
    default_rate_bps: int = 0
    #: closed defense loop: detect offenders per window, throttle, then
    #: quarantine after repeated strikes, release after clean windows
    defense: bool = False
    #: defense/telemetry window length, ns
    defense_interval: int = 5 * MS
    #: offender thresholds, per window (attempted rates: denied traffic
    #: counts, so a quarantined attacker keeps registering as offending)
    offend_mbps: float = 500.0
    offend_qp_creates: int = 64
    offend_icm_misses: int = 128
    #: throttle an offender to ``observed_rate * throttle_factor``
    throttle_factor: float = 0.1
    #: consecutive offending windows before quarantine
    quarantine_after: int = 3
    #: consecutive clean windows before throttles/quarantine lift
    release_after: int = 2


@audited
@dataclass
class ObsConfig:
    """Observability surface (see :mod:`repro.obs`).

    Default-off: with ``enabled=False`` nothing in the obs package is
    imported or constructed and every historical run stays
    byte-identical (the surface is pure observer bookkeeping even when
    on — property-tested like telemetry). When on, the cluster handle
    carries an :class:`~repro.obs.surface.Observability` with the
    metric registry wired to every deployed plane; the remaining knobs
    choose the consumers (per-epoch ``.prom`` snapshots, a live
    ``/metrics`` HTTP endpoint) and the metric naming.
    """

    #: master switch — implies the telemetry pipeline (the registry's
    #: richest source) when the builder wires the surface
    enabled: bool = False
    #: metric-name prefix for every exported family
    namespace: str = "repro"
    #: quantiles each summary family exposes
    quantiles: tuple = (0.5, 0.95, 0.99)
    #: directory for per-epoch exposition snapshots ("" = no snapshots)
    snapshot_dir: str = ""
    #: monitoring epochs between snapshots
    snapshot_every: int = 1
    #: serve a live /metrics scrape endpoint (wall-clock only)
    http: bool = False
    http_host: str = "127.0.0.1"
    #: TCP port for the endpoint; 0 = ephemeral (query it at runtime)
    http_port: int = 0


@audited
@dataclass
class TracingConfig:
    """Causal span-tracing parameters (see :mod:`repro.tracing`)."""

    #: master switch — when False every tracing hook is a single attribute
    #: check and the simulation is bit-identical to an untraced run
    enabled: bool = False
    #: head-based sampling probability: the keep/drop decision is made
    #: once per trace at the root; 1.0 never draws from the RNG stream
    sample_rate: float = 1.0
    #: span-store bound; spans finished past this are counted as dropped
    max_spans: int = 65536


@audited
@dataclass
class ReplayConfig:
    """Trace replay defaults (see :mod:`repro.workloads.traces`).

    Default-inert: nothing reads these knobs unless a
    :class:`~repro.workloads.traces.TraceReplayer` is constructed
    through the workload registry (``builder.workload("replay", ...)``),
    so every historical run stays byte-identical (property-tested, like
    the other planes). The knobs are the replayer's constructor defaults
    — explicit keyword arguments always win.
    """

    #: replay clock factor: < 1 compresses time (stress), > 1 stretches
    time_scale: float = 1.0
    #: arrival amplification: 2.0 doubles every arrival, 0.5 thins the
    #: trace to half — fractional parts are resolved on the dedicated
    #: ``replay:load-scale`` RNG stream
    load_scale: float = 1.0
    #: client tasks the trace is round-robined across
    injectors: int = 16
    #: per-injector patience when draining straggler responses, ns
    drain_timeout: int = 200 * MS


@audited
@dataclass
class ScalerConfig:
    """Elastic autoscaling (see :class:`repro.server.reconfig.ElasticScaler`).

    Default-off: with ``enabled=False`` no scaler is constructed, the
    dispatcher's health chain is untouched and every historical run
    stays byte-identical (property-tested). When on, a reserve of
    parked back-ends is held out of dispatch and the scaler
    releases/parks them as the monitored mean load crosses the
    watermarks, triggering a federation ``rebalance`` on every
    membership change when the fabric is deployed.
    """

    #: master switch for the elastic scaler
    enabled: bool = False
    #: evaluation period, ns; 0 = cfg.monitor.interval
    interval: int = 0
    #: scale up when mean active load exceeds this ...
    high_water: float = 0.75
    #: ... and down when it falls below this
    low_water: float = 0.35
    #: back-ends serving at t=0; 0 = all (no reserve)
    initial_active: int = 0
    #: floor on the active set
    min_active: int = 1
    #: ceiling on the active set; 0 = num_backends
    max_active: int = 0
    #: consecutive over-watermark evaluations before scaling up
    up_after: int = 1
    #: consecutive under-watermark evaluations before scaling down
    down_after: int = 3
    #: minimum gap between membership changes, ns
    cooldown: int = 0


@audited
@dataclass
class ProfileConfig:
    """Opt-in cProfile instrumentation (see :mod:`repro.profiling`).

    Default-off: with ``enabled=False`` the run loop takes the ordinary
    uninstrumented path and pays a single attribute check. When on, each
    profiled phase (deploy, run) is wrapped in its own ``cProfile``
    session and a per-phase hotspot table is printed (and optionally
    dumped as ``.pstats`` files for ``snakeviz``/``pstats`` digging).
    Profiling never perturbs simulated time — only wall-clock.
    """

    #: master switch
    enabled: bool = False
    #: rows per hotspot table
    top: int = 15
    #: pstats sort key ("tottime", "cumulative", "calls", ...)
    sort: str = "tottime"
    #: directory for raw .pstats dumps ("" = don't dump)
    dump_dir: str = ""


#: the historical default master seed (every archived golden uses it)
_DEFAULT_MASTER_SEED = 0xC1057E12


def set_default_master_seed(seed: int) -> int:
    """Override the default ``SimConfig.master_seed`` process-wide.

    The multiprocess experiment runner fans (experiment, seed) jobs
    across worker processes; experiments build ``SimConfig(...)``
    without threading a seed parameter through every signature, so the
    worker applies its job's seed here before running. Explicit
    ``SimConfig(master_seed=...)`` arguments are unaffected. Returns
    the previous default so callers can restore it.
    """
    global _DEFAULT_MASTER_SEED
    previous = _DEFAULT_MASTER_SEED
    _DEFAULT_MASTER_SEED = int(seed)
    return previous


@audited
@dataclass
class SimConfig:
    """Top-level simulation configuration."""

    num_backends: int = 8
    #: CPUs on the client-farm node (sized so clients never bottleneck;
    #: the paper uses 8 dedicated dual-CPU client nodes)
    client_cpus: int = 8
    master_seed: int = field(default_factory=lambda: _DEFAULT_MASTER_SEED)
    trace: bool = False
    engine: EngineConfig = field(default_factory=EngineConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    irq: IrqConfig = field(default_factory=IrqConfig)
    syscall: SyscallConfig = field(default_factory=SyscallConfig)
    net: NetConfig = field(default_factory=NetConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    tracing: TracingConfig = field(default_factory=TracingConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    federation: FederationConfig = field(default_factory=FederationConfig)
    congestion: CongestionConfig = field(default_factory=CongestionConfig)
    tenancy: TenancyConfig = field(default_factory=TenancyConfig)
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    scaler: ScalerConfig = field(default_factory=ScalerConfig)
    profile: ProfileConfig = field(default_factory=ProfileConfig)

    def replace(self, **kwargs) -> "SimConfig":
        """Shallow functional update of top-level fields."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> None:
        """Sanity-check cross-field constraints; raise ValueError on nonsense."""
        if self.num_backends < 1:
            raise ValueError("need at least one back-end node")
        eng = self.engine
        if eng.core not in ("wheel", "heap"):
            raise ValueError(f"unknown engine core {eng.core!r} "
                             "(choose 'wheel' or 'heap')")
        if not 4 <= eng.wheel_bucket_bits <= 24:
            raise ValueError("engine wheel_bucket_bits must be in [4, 24]")
        if not 4 <= eng.wheel_ring_bits <= 20:
            raise ValueError("engine wheel_ring_bits must be in [4, 20]")
        if self.cpu.num_cpus < 1:
            raise ValueError("nodes need at least one CPU")
        if self.cpu.tick <= 0:
            raise ValueError("tick must be positive")
        if self.cpu.timeslice_ticks < 1:
            raise ValueError("timeslice must be at least one tick")
        if not 0 < self.net.ipoib_bw_factor <= 1:
            raise ValueError("ipoib_bw_factor must be in (0, 1]")
        if self.irq.softirq_budget < 1:
            raise ValueError("softirq budget must be >= 1")
        if self.monitor.interval <= 0:
            raise ValueError("monitoring interval must be positive")
        if self.monitor.history_limit < 0:
            raise ValueError("history_limit must be >= 0 (0 = unbounded)")
        if self.monitor.probe_timeout < 0:
            raise ValueError("probe_timeout must be >= 0 (0 = disabled)")
        if self.monitor.probe_retries < 0:
            raise ValueError("probe_retries must be >= 0")
        if self.monitor.probe_backoff <= 0:
            raise ValueError("probe_backoff must be positive")
        if self.monitor.probe_backoff_factor < 1.0:
            raise ValueError("probe_backoff_factor must be >= 1")
        if self.monitor.probe_backoff_max < self.monitor.probe_backoff:
            raise ValueError("probe_backoff_max must be >= probe_backoff")
        if not 0.0 <= self.tracing.sample_rate <= 1.0:
            raise ValueError("tracing sample_rate must be in [0, 1]")
        if self.tracing.max_spans < 1:
            raise ValueError("tracing max_spans must be >= 1")
        fed = self.federation
        if fed.num_shards < 0:
            raise ValueError("federation num_shards must be >= 0 (0 = auto)")
        if fed.num_shards > self.num_backends:
            raise ValueError("federation num_shards must not exceed num_backends")
        if fed.leaf_interval < 0 or fed.root_interval < 0:
            raise ValueError("federation intervals must be >= 0 (0 = default)")
        if fed.snapshot_base_bytes <= 0 or fed.snapshot_bytes_per_node <= 0:
            raise ValueError("federation snapshot sizes must be positive")
        if fed.digest_compression < 8:
            raise ValueError("federation digest_compression must be >= 8")
        if min(fed.merge_cost, fed.publish_cost, fed.root_merge_cost) < 0:
            raise ValueError("federation costs must be >= 0")
        cc = self.congestion
        if cc.ecn_kmin <= 0 or cc.ecn_kmax < cc.ecn_kmin:
            raise ValueError("need 0 < ecn_kmin <= ecn_kmax")
        if not 0.0 < cc.ecn_pmax <= 1.0:
            raise ValueError("ecn_pmax must be in (0, 1]")
        if cc.pfc_xon <= 0 or cc.pfc_xoff <= cc.pfc_xon:
            raise ValueError("need 0 < pfc_xon < pfc_xoff")
        if cc.queue_capacity < cc.pfc_xoff:
            raise ValueError("queue_capacity must be >= pfc_xoff")
        if cc.cnp_interval <= 0 or cc.ai_timer <= 0:
            raise ValueError("cnp_interval and ai_timer must be positive")
        if not 0.0 < cc.alpha_g <= 1.0:
            raise ValueError("alpha_g must be in (0, 1]")
        if not 0.0 < cc.ai_factor <= 1.0:
            raise ValueError("ai_factor must be in (0, 1]")
        if not 0.0 < cc.min_rate <= 1.0:
            raise ValueError("min_rate must be in (0, 1]")
        tn = self.tenancy
        if tn.qp_table_size < 1:
            raise ValueError("tenancy.qp_table_size must be >= 1")
        if tn.icm_entries < 1:
            raise ValueError("tenancy.icm_entries must be >= 1")
        if tn.icm_miss_penalty < 0:
            raise ValueError("tenancy.icm_miss_penalty must be >= 0")
        if tn.default_qp_quota < 0 or tn.default_rate_bps < 0:
            raise ValueError("tenancy quotas must be >= 0 (0 = unlimited)")
        if tn.defense_interval <= 0:
            raise ValueError("tenancy.defense_interval must be positive")
        if tn.offend_mbps <= 0 or tn.offend_qp_creates < 1 \
                or tn.offend_icm_misses < 1:
            raise ValueError("tenancy offender thresholds must be positive")
        if not 0.0 < tn.throttle_factor <= 1.0:
            raise ValueError("tenancy.throttle_factor must be in (0, 1]")
        if tn.quarantine_after < 1 or tn.release_after < 1:
            raise ValueError("tenancy strike/release windows must be >= 1")
        rp = self.replay
        if rp.time_scale <= 0 or rp.load_scale <= 0:
            raise ValueError("replay time_scale and load_scale must be positive")
        if rp.injectors < 1:
            raise ValueError("replay.injectors must be >= 1")
        if rp.drain_timeout <= 0:
            raise ValueError("replay.drain_timeout must be positive")
        sc = self.scaler
        if sc.interval < 0:
            raise ValueError("scaler.interval must be >= 0 (0 = monitor interval)")
        if not 0 <= sc.low_water < sc.high_water:
            raise ValueError("need 0 <= scaler.low_water < scaler.high_water")
        if sc.initial_active < 0 or sc.max_active < 0:
            raise ValueError("scaler active bounds must be >= 0 (0 = all)")
        if sc.min_active < 1:
            raise ValueError("scaler.min_active must be >= 1")
        if sc.max_active and sc.max_active < sc.min_active:
            raise ValueError("scaler.max_active must be >= min_active (or 0)")
        if sc.initial_active > self.num_backends:
            raise ValueError("scaler.initial_active must not exceed num_backends")
        if sc.up_after < 1 or sc.down_after < 1:
            raise ValueError("scaler up_after/down_after must be >= 1")
        if sc.cooldown < 0:
            raise ValueError("scaler.cooldown must be >= 0")
        obs = self.obs
        if not re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z", obs.namespace):
            raise ValueError(f"obs.namespace {obs.namespace!r} is not a "
                             "legal metric-name prefix")
        if not obs.quantiles or not all(0.0 <= q <= 1.0 for q in obs.quantiles):
            raise ValueError("obs.quantiles must be a non-empty tuple in [0, 1]")
        if obs.snapshot_every < 1:
            raise ValueError("obs.snapshot_every must be >= 1")
        if not 0 <= obs.http_port <= 65535:
            raise ValueError("obs.http_port must be in [0, 65535]")
        if self.profile.top < 1:
            raise ValueError("profile.top must be >= 1")
        if self.profile.sort not in (
                "tottime", "cumulative", "calls", "ncalls", "time", "pcalls"):
            raise ValueError(f"unknown profile.sort {self.profile.sort!r}")


#: default polling interval alias used across experiments
DEFAULT_POLL_INTERVAL = 50 * MS

__all__ = [
    "CongestionConfig",
    "CpuConfig",
    "DEFAULT_POLL_INTERVAL",
    "EngineConfig",
    "FederationConfig",
    "IrqConfig",
    "MonitorConfig",
    "NetConfig",
    "ObsConfig",
    "ProfileConfig",
    "ReplayConfig",
    "ScalerConfig",
    "ServerConfig",
    "SimConfig",
    "SyscallConfig",
    "TenancyConfig",
    "TracingConfig",
]
