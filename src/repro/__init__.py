"""repro — reproduction of the CLUSTER 2006 RDMA resource-monitoring paper.

The package simulates a cluster-based server environment in enough detail
(CPU scheduler, interrupts, sockets stack, InfiniBand-style verbs) for the
paper's five monitoring schemes — Socket-Async, Socket-Sync, RDMA-Async,
RDMA-Sync and e-RDMA-Sync — to be compared mechanistically.

See ``examples/quickstart.py`` for a complete runnable tour, and
``DESIGN.md`` for the system inventory and experiment index.
"""

from repro._version import __version__


def __getattr__(name):
    # Lazy: keep `import repro` light; the builder pulls in the full stack.
    if name == "ClusterBuilder":
        from repro.api import ClusterBuilder
        return ClusterBuilder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = ["ClusterBuilder", "__version__"]
