"""Background load for the micro-benchmarks (the paper's §5.1.1).

"We emulate the loaded conditions by performing background computation
and communication operations on the server." Each unit of background
load is one **compute thread** (a CPU hog) plus, for every second unit,
one **communication pair**: a partner task on a neighbouring node sends
messages to an echo thread on the loaded server — generating the NIC
interrupts and softirq processing that two-sided monitoring must queue
behind.

:func:`spawn_incast_tenants` is the congestion experiments' heavy
tenant: *open-loop* one-sided RDMA writes from many sources converging
on one port — the classic incast pattern that fills the victim's egress
queue regardless of how slowly the victim drains it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.sim.units import MICROSECOND, MILLISECOND
from repro.transport.sockets import socket_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import Task


def spawn_background_load(
    sim: "ClusterSim",
    node: "Node",
    threads: int,
    comm_fraction: float = 0.5,
    compute_chunk: int = 1 * MILLISECOND,
    message_interval: int = 5 * MILLISECOND,
    message_bytes: int = 1024,
    burst: int = 1,
) -> List["Task"]:
    """Load ``node`` with ``threads`` background threads.

    ``comm_fraction`` of them are communication echo threads (each with a
    partner task on another node that keeps traffic flowing); the rest
    are pure compute hogs. ``burst`` > 1 makes each partner send that
    many back-to-back messages per round — piling interrupts up on the
    NIC-affinity CPU (used by the Fig 6 experiment). Returns the tasks
    created on ``node``.
    """
    if threads < 0:
        raise ValueError("thread count must be non-negative")
    tasks: List["Task"] = []
    n_comm = int(round(threads * comm_fraction))
    n_comp = threads - n_comm

    def hog_body(k):
        while True:
            yield k.compute(compute_chunk)

    for i in range(n_comp):
        tasks.append(node.spawn(f"bg-comp:{node.name}:{i}", hog_body))

    peers = [n for n in sim.backends if n is not node] or [sim.frontend]
    for i in range(n_comm):
        peer = peers[i % len(peers)]
        local_end, peer_end = socket_pair(node, peer, label=f"bg:{node.name}:{i}")

        def echo_body(k, end=local_end):
            while True:
                msg = yield from end.recv(k)
                # A little processing per message, then echo back.
                yield k.compute(200 * MICROSECOND)
                yield from end.send(k, msg, message_bytes)

        def pump_body(k, end=peer_end, salt=i):
            rng = sim.rng.stream(f"bg-pump:{node.name}:{salt}")
            yield k.sleep(int(rng.integers(0, max(1, message_interval))))
            while True:
                for _ in range(max(1, burst)):
                    yield from end.send(k, "bg", message_bytes)
                for _ in range(max(1, burst)):
                    yield from end.recv(k)
                yield k.sleep(int(rng.exponential(message_interval)) + 1)

        tasks.append(node.spawn(f"bg-comm:{node.name}:{i}", echo_body))
        peer.spawn(f"bg-pump:{peer.name}:{node.name}:{i}", pump_body)
    return tasks


def spawn_incast_tenants(
    sim: "ClusterSim",
    target: "Node",
    sources: "Sequence[Node]",
    flows_per_source: int = 1,
    message_bytes: int = 8192,
    interval: int = 50 * MICROSECOND,
    label: str = "incast",
) -> List["Task"]:
    """Blast ``target`` with open-loop one-sided writes from ``sources``.

    Each flow posts a ``message_bytes`` RDMA write every ``interval`` ns
    (jittered per-flow) *without waiting for completions* — an open loop,
    so offered load is ``len(sources) * flows_per_source *
    message_bytes / interval`` regardless of congestion. Once that
    exceeds the target's link rate its egress queue grows without bound
    unless PFC or DCQCN pushes back: exactly the incast the congestion
    experiments measure. Returns the sender tasks.
    """
    # Deferred: keep the verbs import off this module's socket-only path.
    from repro.transport.verbs import AccessFlags, ProtectionDomain, connect_qp

    if flows_per_source <= 0:
        raise ValueError("flows_per_source must be positive")
    region_name = f"{label}:sink"
    if region_name not in target.memory:
        target.memory.alloc(region_name, message_bytes)
    mr = ProtectionDomain.for_node(target).register(
        target.memory.get(region_name), AccessFlags.REMOTE_WRITE)
    doorbell = sim.cfg.net.doorbell_cost
    tasks: List["Task"] = []
    for src in sources:
        for f in range(flows_per_source):
            qp, _ = connect_qp(src, target)

            def blast_body(k, qp=qp, salt=f, src_name=src.name):
                rng = sim.rng.stream(f"{label}:{src_name}:{salt}")
                yield k.sleep(int(rng.integers(0, max(1, interval))))
                start = k.now
                sent = 0
                while True:
                    # Open loop in *time*, not in wakeups: post however
                    # many intervals have elapsed (catch-up), so a
                    # CPU-starved sender still offers the configured
                    # load — one doorbell covers the whole batch.
                    due = (k.now - start) // interval + 1
                    while sent < due:
                        # Fire and forget: nobody waits on completions.
                        qp._post_write(mr.rkey, "tenant", message_bytes)
                        sent += 1
                    yield k.compute(doorbell, mode="user")
                    yield k.sleep(max(1, start + sent * interval - k.now))

            tasks.append(src.spawn(f"{label}:{src.name}:{f}", blast_body))
    return tasks
