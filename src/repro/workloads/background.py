"""Background load for the micro-benchmarks (the paper's §5.1.1).

"We emulate the loaded conditions by performing background computation
and communication operations on the server." Each unit of background
load is one **compute thread** (a CPU hog) plus, for every second unit,
one **communication pair**: a partner task on a neighbouring node sends
messages to an echo thread on the loaded server — generating the NIC
interrupts and softirq processing that two-sided monitoring must queue
behind.

Tenant-shaped RDMA load (the incast tenant and the noisy-neighbor
attacks) lives in :mod:`repro.workloads.tenants`;
``spawn_incast_tenants`` is re-exported here for compatibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sim.units import MICROSECOND, MILLISECOND
from repro.transport.sockets import socket_pair
from repro.workloads.tenants import spawn_incast_tenants  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import Task


def spawn_background_load(
    sim: "ClusterSim",
    node: "Node",
    threads: int,
    comm_fraction: float = 0.5,
    compute_chunk: int = 1 * MILLISECOND,
    message_interval: int = 5 * MILLISECOND,
    message_bytes: int = 1024,
    burst: int = 1,
) -> List["Task"]:
    """Load ``node`` with ``threads`` background threads.

    ``comm_fraction`` of them are communication echo threads (each with a
    partner task on another node that keeps traffic flowing); the rest
    are pure compute hogs. ``burst`` > 1 makes each partner send that
    many back-to-back messages per round — piling interrupts up on the
    NIC-affinity CPU (used by the Fig 6 experiment). Returns the tasks
    created on ``node``.

    Shim over the workload registry (``create_workload("background",
    ...)``); fingerprint-identical to the pre-registry helper.
    """
    from repro.workloads import create_workload

    return create_workload(
        "background", sim, node=node, threads=threads,
        comm_fraction=comm_fraction, compute_chunk=compute_chunk,
        message_interval=message_interval, message_bytes=message_bytes,
        burst=burst)


def _spawn_background_load(
    sim: "ClusterSim",
    node: "Node",
    threads: int,
    comm_fraction: float = 0.5,
    compute_chunk: int = 1 * MILLISECOND,
    message_interval: int = 5 * MILLISECOND,
    message_bytes: int = 1024,
    burst: int = 1,
) -> List["Task"]:
    """The implementation behind the ``"background"`` registry entry."""
    if threads < 0:
        raise ValueError("thread count must be non-negative")
    tasks: List["Task"] = []
    n_comm = int(round(threads * comm_fraction))
    n_comp = threads - n_comm

    def hog_body(k):
        while True:
            yield k.compute(compute_chunk)

    for i in range(n_comp):
        tasks.append(node.spawn(f"bg-comp:{node.name}:{i}", hog_body))

    peers = [n for n in sim.backends if n is not node] or [sim.frontend]
    for i in range(n_comm):
        peer = peers[i % len(peers)]
        local_end, peer_end = socket_pair(node, peer, label=f"bg:{node.name}:{i}")

        def echo_body(k, end=local_end):
            while True:
                msg = yield from end.recv(k)
                # A little processing per message, then echo back.
                yield k.compute(200 * MICROSECOND)
                yield from end.send(k, msg, message_bytes)

        def pump_body(k, end=peer_end, salt=i):
            rng = sim.rng.stream(f"bg-pump:{node.name}:{salt}")
            yield k.sleep(int(rng.integers(0, max(1, message_interval))))
            while True:
                for _ in range(max(1, burst)):
                    yield from end.send(k, "bg", message_bytes)
                for _ in range(max(1, burst)):
                    yield from end.recv(k)
                yield k.sleep(int(rng.exponential(message_interval)) + 1)

        tasks.append(node.spawn(f"bg-comm:{node.name}:{i}", echo_body))
        peer.spawn(f"bg-pump:{peer.name}:{node.name}:{i}", pump_body)
    return tasks
