"""Request-trace recording and replay.

Capacity studies and regression comparisons want *identical* request
streams across runs. A :class:`TraceRecorder` snapshots the request
stream of any run — either after the fact from the dispatcher's
statistics, or live via :meth:`TraceRecorder.attach` (which chains onto
the :class:`~repro.server.request.RequestStats` observer hook, so
rejected and timed-out arrivals are captured too). Traces persist in a
**versioned JSON-Lines format**: line 1 is a schema header, every
further line one entry, both serialised deterministically so that
record → dump → load → dump is byte-identical (tested).

:class:`TraceReplayer` fires a recorded trace open-loop at the original
timing, optionally **time-scaled** (``time_scale`` < 1 compresses the
clock — stress) and **load-scaled** (``load_scale`` = 2 doubles every
arrival; fractional parts are resolved on the dedicated
``replay:load-scale`` RNG stream, so no other component's draws are
perturbed). Two schemes can thus be compared on byte-identical input,
or on a deterministic ×k amplification of a production trace.

Synthetic non-stationary traces (diurnal cycles, flash crowds) come
from :mod:`repro.workloads.synth`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.server.request import Request
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.server.dispatcher import Dispatcher

#: the trace-file schema this build writes and the versions it reads
TRACE_SCHEMA_VERSION = 1
SUPPORTED_SCHEMA_VERSIONS = (1,)

#: header `kind` tag — guards against feeding arbitrary JSONL to loads()
_TRACE_KIND = "repro-request-trace"


class TraceFormatError(ValueError):
    """A trace file/string that violates the schema, with its line number."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        super().__init__(
            f"trace line {line}: {message}" if line is not None else message)


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request."""

    offset_ns: int
    workload: str
    query: str
    web_cpu: int
    db_cpu: int
    doc_id: Optional[int]
    response_bytes: int
    deadline: int

    def to_dict(self) -> dict:
        return {
            "offset_ns": self.offset_ns, "workload": self.workload,
            "query": self.query, "web_cpu": self.web_cpu,
            "db_cpu": self.db_cpu, "doc_id": self.doc_id,
            "response_bytes": self.response_bytes, "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEntry":
        fields = cls.__dataclass_fields__
        unknown = set(d) - set(fields)
        if unknown:
            raise TraceFormatError(
                f"unknown entry key(s): {', '.join(sorted(unknown))}")
        missing = set(fields) - set(d)
        if missing:
            raise TraceFormatError(
                f"missing entry key(s): {', '.join(sorted(missing))}")
        return cls(**d)


def _sort_key(entry: TraceEntry) -> tuple:
    """Deterministic total order — arrival time first, then content."""
    return (entry.offset_ns, entry.workload, entry.query, entry.web_cpu,
            entry.db_cpu, entry.doc_id if entry.doc_id is not None else -1,
            entry.response_bytes, entry.deadline)


class TraceRecorder:
    """Builds a trace from completed/observed requests."""

    def __init__(self, start_time: int = 0) -> None:
        self.start_time = start_time
        self.entries: List[TraceEntry] = []

    def record(self, request: Request) -> None:
        """Capture one request (call from a dispatcher/stats hook)."""
        self.entries.append(TraceEntry(
            offset_ns=max(0, request.created_at - self.start_time),
            workload=request.workload,
            query=request.query,
            web_cpu=request.web_cpu,
            db_cpu=request.db_cpu,
            doc_id=request.doc_id,
            response_bytes=request.response_bytes,
            deadline=request.deadline,
        ))

    def record_stats(self, stats) -> None:
        """Capture every completed request from a RequestStats."""
        for request in stats.completed:
            self.record(request)

    def attach(self, dispatcher: "Dispatcher") -> "TraceRecorder":
        """Record live from the dispatcher's statistics hook.

        Chains onto ``dispatcher.stats.observer`` (keeping any existing
        one), so every arrival — completed, rejected, or timed-out — is
        captured the moment the dispatcher accounts for it. Unlike
        :meth:`record_stats`, this sees the *full* arrival stream, not
        just within-deadline completions.
        """
        previous: Optional[Callable] = dispatcher.stats.observer

        def observer(request: Request) -> None:
            if previous is not None:
                previous(request)
            self.record(request)

        dispatcher.stats.observer = observer
        return self

    # -- persistence ---------------------------------------------------------
    def dumps(self) -> str:
        """Serialise to the versioned JSONL format, deterministically.

        Entries are emitted in their canonical sort order with sorted
        keys and canonical separators, so the same logical trace always
        produces the same bytes (record → dump → load → dump is
        byte-identical; tested).
        """
        ordered = sorted(self.entries, key=_sort_key)
        header = {"kind": _TRACE_KIND,
                  "schema_version": TRACE_SCHEMA_VERSION,
                  "entries": len(ordered)}
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines += [json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
                  for e in ordered]
        return "\n".join(lines) + "\n"

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())

    @staticmethod
    def loads(text: str) -> List[TraceEntry]:
        """Parse a versioned trace; schema violations carry line numbers."""
        lines = text.splitlines()
        if not lines or not lines[0].strip():
            raise TraceFormatError("empty trace (missing schema header)", line=1)
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"malformed header JSON: {exc}", line=1)
        if isinstance(header, list):
            raise TraceFormatError(
                "bare JSON list (the pre-versioned format); re-record the "
                "trace or wrap it with a schema_version header", line=1)
        if not isinstance(header, dict) or header.get("kind") != _TRACE_KIND:
            raise TraceFormatError(
                f"not a {_TRACE_KIND} header: {lines[0][:80]!r}", line=1)
        version = header.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise TraceFormatError(
                f"unsupported schema_version {version!r} (supported: "
                f"{', '.join(map(str, SUPPORTED_SCHEMA_VERSIONS))})", line=1)
        entries: List[TraceEntry] = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"malformed entry JSON: {exc}",
                                       line=lineno)
            if not isinstance(d, dict):
                raise TraceFormatError(
                    f"entry must be a JSON object, got {type(d).__name__}",
                    line=lineno)
            try:
                entries.append(TraceEntry.from_dict(d))
            except TraceFormatError as exc:
                raise TraceFormatError(str(exc), line=lineno)
        declared = header.get("entries")
        if declared is not None and declared != len(entries):
            raise TraceFormatError(
                f"header declares {declared} entries, found {len(entries)}",
                line=1)
        return entries

    @staticmethod
    def load(path) -> List[TraceEntry]:
        with open(path) as fh:
            return TraceRecorder.loads(fh.read())


class TraceReplayer:
    """Replays a trace open-loop with the original inter-arrival times."""

    def __init__(
        self,
        sim: "ClusterSim",
        dispatcher: "Dispatcher",
        trace: List[TraceEntry],
        time_scale: Optional[float] = None,
        load_scale: Optional[float] = None,
        injectors: Optional[int] = None,
        drain_timeout: Optional[int] = None,
    ) -> None:
        """``time_scale`` < 1 replays faster (stress), > 1 slower.

        ``load_scale`` amplifies the arrival stream: every entry is
        replayed ``floor(load_scale)`` times, plus once more with the
        fractional probability, duplicates jittered by up to 50 µs —
        all decided on the dedicated ``replay:load-scale`` RNG stream
        at :meth:`start`, so replays stay deterministic and no other
        stream is perturbed. ``load_scale`` < 1 thins the trace.

        Unset knobs fall back to ``sim.cfg.replay`` defaults.
        """
        rp = sim.cfg.replay
        time_scale = rp.time_scale if time_scale is None else time_scale
        load_scale = rp.load_scale if load_scale is None else load_scale
        injectors = rp.injectors if injectors is None else injectors
        drain_timeout = rp.drain_timeout if drain_timeout is None else drain_timeout
        if not trace:
            raise ValueError("cannot replay an empty trace")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if load_scale <= 0:
            raise ValueError("load_scale must be positive")
        if injectors < 1:
            raise ValueError("need at least one injector")
        if drain_timeout <= 0:
            raise ValueError("drain_timeout must be positive")
        self.sim = sim
        self.dispatcher = dispatcher
        self.trace = sorted(trace, key=_sort_key)
        self.time_scale = time_scale
        self.load_scale = load_scale
        self.injectors = injectors
        self.drain_timeout = drain_timeout
        self.issued = 0
        self.completed_inline = 0
        self._next_rid = [5_000_000]

    # ------------------------------------------------------------------
    def _scaled_trace(self) -> List[TraceEntry]:
        """The load-scaled arrival stream (identity at load_scale=1)."""
        if self.load_scale == 1.0:
            return self.trace
        import dataclasses

        rng = self.sim.rng.stream("replay:load-scale")
        whole = int(self.load_scale)
        frac = self.load_scale - whole
        out: List[TraceEntry] = []
        for entry in self.trace:
            copies = whole + (1 if frac > 0 and rng.random() < frac else 0)
            for c in range(copies):
                if c == 0:
                    out.append(entry)
                else:
                    jitter = int(rng.integers(1, 50_000))
                    out.append(dataclasses.replace(
                        entry, offset_ns=entry.offset_ns + jitter))
        out.sort(key=_sort_key)
        return out

    def start(self) -> None:
        assert self.sim.clients is not None
        # Round-robin the (load-scaled) trace across injector tasks;
        # each fires its share at the scheduled offsets.
        stream = self._scaled_trace()
        shards: List[List[TraceEntry]] = [[] for _ in range(self.injectors)]
        for i, entry in enumerate(stream):
            shards[i % self.injectors].append(entry)
        for i, shard in enumerate(shards):
            if shard:
                self.sim.clients.spawn(f"replay:{i}", self._injector_body(i, shard))

    def _injector_body(self, index: int, shard: List[TraceEntry]):
        clients = self.sim.clients
        assert clients is not None
        frontend = self.dispatcher.frontend
        inbox = self.dispatcher.inbox
        reply_store = Store(clients.env, name=f"replay-replies:{index}")
        base = clients.env.now

        def body(k):
            from repro.sim.events import AnyOf

            got = 0
            for entry in shard:
                due = base + int(entry.offset_ns * self.time_scale)
                if due > k.now:
                    yield k.sleep(due - k.now)
                self._next_rid[0] += 1
                request = Request(
                    rid=self._next_rid[0],
                    workload=entry.workload,
                    query=entry.query,
                    web_cpu=entry.web_cpu,
                    db_cpu=entry.db_cpu,
                    doc_id=entry.doc_id,
                    response_bytes=entry.response_bytes,
                    deadline=entry.deadline,
                    reply_node=clients,
                    reply_store=reply_store,
                )
                request.created_at = k.now
                self.issued += 1
                yield from clients.netstack.send(
                    k, frontend, inbox, request, self.dispatcher.request_bytes
                )
                # Collect any responses that have landed (non-blocking).
                while True:
                    ok, item = reply_store.try_get()
                    if not ok:
                        break
                    self.dispatcher.on_response(item[0])
                    got += 1
                    self.completed_inline += 1
            # Shard exhausted: drain the stragglers (bounded patience).
            while got < len(shard):
                get_ev = reply_store.get()
                deadline = k.env.timeout(self.drain_timeout)
                fired = yield k.wait(AnyOf(k.env, [get_ev, deadline]))
                if get_ev not in fired:
                    get_ev.cancel()
                    break
                self.dispatcher.on_response(get_ev.value[0])
                got += 1
                self.completed_inline += 1

        return body
