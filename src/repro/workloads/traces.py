"""Request-trace recording and replay.

Capacity studies and regression comparisons want *identical* request
streams across runs. A :class:`TraceRecorder` snapshots the request
stream of any run (arrival times, query classes, exact demands) into a
plain list of dicts (JSON-serialisable); :class:`TraceReplayer` fires a
recorded trace open-loop at the original timing (or time-scaled), so two
schemes can be compared on byte-identical input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.server.request import Request
from repro.sim.resources import Store
from repro.sim.units import MICROSECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.server.dispatcher import Dispatcher


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request."""

    offset_ns: int
    workload: str
    query: str
    web_cpu: int
    db_cpu: int
    doc_id: Optional[int]
    response_bytes: int
    deadline: int

    def to_dict(self) -> dict:
        return {
            "offset_ns": self.offset_ns, "workload": self.workload,
            "query": self.query, "web_cpu": self.web_cpu,
            "db_cpu": self.db_cpu, "doc_id": self.doc_id,
            "response_bytes": self.response_bytes, "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEntry":
        return cls(**d)


class TraceRecorder:
    """Builds a trace from completed/observed requests."""

    def __init__(self, start_time: int = 0) -> None:
        self.start_time = start_time
        self.entries: List[TraceEntry] = []

    def record(self, request: Request) -> None:
        """Capture one request (call from a dispatcher/stats hook)."""
        self.entries.append(TraceEntry(
            offset_ns=max(0, request.created_at - self.start_time),
            workload=request.workload,
            query=request.query,
            web_cpu=request.web_cpu,
            db_cpu=request.db_cpu,
            doc_id=request.doc_id,
            response_bytes=request.response_bytes,
            deadline=request.deadline,
        ))

    def record_stats(self, stats) -> None:
        """Capture every completed request from a RequestStats."""
        for request in stats.completed:
            self.record(request)

    # -- persistence ---------------------------------------------------------
    def dumps(self) -> str:
        ordered = sorted(self.entries, key=lambda e: e.offset_ns)
        return json.dumps([e.to_dict() for e in ordered])

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())

    @staticmethod
    def loads(text: str) -> List[TraceEntry]:
        return [TraceEntry.from_dict(d) for d in json.loads(text)]

    @staticmethod
    def load(path) -> List[TraceEntry]:
        with open(path) as fh:
            return TraceRecorder.loads(fh.read())


class TraceReplayer:
    """Replays a trace open-loop with the original inter-arrival times."""

    def __init__(
        self,
        sim: "ClusterSim",
        dispatcher: "Dispatcher",
        trace: List[TraceEntry],
        time_scale: float = 1.0,
        injectors: int = 16,
    ) -> None:
        """``time_scale`` < 1 replays faster (stress), > 1 slower."""
        if not trace:
            raise ValueError("cannot replay an empty trace")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if injectors < 1:
            raise ValueError("need at least one injector")
        self.sim = sim
        self.dispatcher = dispatcher
        self.trace = sorted(trace, key=lambda e: e.offset_ns)
        self.time_scale = time_scale
        self.injectors = injectors
        self.issued = 0
        self.completed_inline = 0
        self._next_rid = [5_000_000]

    def start(self) -> None:
        assert self.sim.clients is not None
        # Round-robin the trace across injector tasks; each fires its
        # share at the scheduled offsets.
        shards: List[List[TraceEntry]] = [[] for _ in range(self.injectors)]
        for i, entry in enumerate(self.trace):
            shards[i % self.injectors].append(entry)
        for i, shard in enumerate(shards):
            if shard:
                self.sim.clients.spawn(f"replay:{i}", self._injector_body(i, shard))

    def _injector_body(self, index: int, shard: List[TraceEntry]):
        clients = self.sim.clients
        assert clients is not None
        frontend = self.dispatcher.frontend
        inbox = self.dispatcher.inbox
        reply_store = Store(clients.env, name=f"replay-replies:{index}")
        base = clients.env.now

        def body(k):
            from repro.sim.events import AnyOf

            got = 0
            for entry in shard:
                due = base + int(entry.offset_ns * self.time_scale)
                if due > k.now:
                    yield k.sleep(due - k.now)
                self._next_rid[0] += 1
                request = Request(
                    rid=self._next_rid[0],
                    workload=entry.workload,
                    query=entry.query,
                    web_cpu=entry.web_cpu,
                    db_cpu=entry.db_cpu,
                    doc_id=entry.doc_id,
                    response_bytes=entry.response_bytes,
                    deadline=entry.deadline,
                    reply_node=clients,
                    reply_store=reply_store,
                )
                request.created_at = k.now
                self.issued += 1
                yield from clients.netstack.send(
                    k, frontend, inbox, request, self.dispatcher.request_bytes
                )
                # Collect any responses that have landed (non-blocking).
                while True:
                    ok, item = reply_store.try_get()
                    if not ok:
                        break
                    self.dispatcher.on_response(item[0])
                    got += 1
                    self.completed_inline += 1
            # Shard exhausted: drain the stragglers (bounded patience).
            while got < len(shard):
                get_ev = reply_store.get()
                deadline = k.env.timeout(200 * 1_000_000)
                fired = yield k.wait(AnyOf(k.env, [get_ev, deadline]))
                if get_ev not in fired:
                    get_ev.cancel()
                    break
                self.dispatcher.on_response(get_ev.value[0])
                got += 1
                self.completed_inline += 1

        return body
