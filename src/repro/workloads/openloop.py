"""Open-loop request injection.

The closed-loop emulators (RUBiS/Zipf clients) self-limit: response-time
inflation throttles the offered load, which masks overload effects. An
open-loop source keeps firing at its configured rate regardless of how
the cluster is doing — the regime where admission control (§1's
"requests the cluster-system can admit") actually earns its keep, and
the right tool for capacity measurements.

The generator fires Poisson arrivals of RUBiS-mix requests with a
client-side deadline; clients that are turned away or time out do not
slow the arrival process down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.events import AnyOf
from repro.sim.resources import Store
from repro.sim.units import MICROSECOND, MILLISECOND
from repro.workloads.rubis import RubisWorkload

from repro.sim.sampling import ExpSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.server.dispatcher import Dispatcher


class OpenLoopWorkload:
    """Poisson arrivals of RUBiS-mix requests at a fixed rate."""

    def __init__(
        self,
        sim: "ClusterSim",
        dispatcher: "Dispatcher",
        rate_rps: float,
        deadline: int = 150 * MILLISECOND,
        demand_cv: float = 0.4,
        injectors: int = 8,
        rng_name: str = "openloop",
    ) -> None:
        """``rate_rps``: aggregate arrival rate; ``injectors``: client
        tasks the rate is split across (each needs to be free to block
        on its in-flight request's response)."""
        if rate_rps <= 0:
            raise ValueError("arrival rate must be positive")
        if injectors < 1:
            raise ValueError("need at least one injector")
        self.sim = sim
        self.dispatcher = dispatcher
        self.rate_rps = rate_rps
        self.deadline = deadline
        self.injectors = injectors
        # Reuse the RUBiS mix/demand sampling machinery.
        self._mix = RubisWorkload(sim, dispatcher, num_clients=1,
                                  demand_cv=demand_cv, deadline=deadline,
                                  rng_name=f"{rng_name}-mix")
        self.issued = 0
        self.dropped_inflight = 0
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        assert self.sim.clients is not None
        for i in range(self.injectors):
            self.sim.clients.spawn(f"openloop:{i}", self._injector_body(i))

    def stop(self) -> None:
        self._stopped = True

    def _injector_body(self, index: int):
        clients = self.sim.clients
        assert clients is not None
        frontend = self.dispatcher.frontend
        inbox = self.dispatcher.inbox
        reply_store = Store(clients.env, name=f"ol-replies:{index}")
        rng = self.sim.rng.stream(f"openloop:{index}")
        per_injector_gap = self.injectors / self.rate_rps * 1e9  # ns

        def body(k):
            yield k.sleep(int(rng.integers(0, max(1, int(per_injector_gap)))))
            # Construct only after the integers() draw above: the sampler
            # prefetches from the same stream at construction time.
            gaps = ExpSampler(rng, per_injector_gap)
            while not self._stopped:
                request = self._mix.make_request(clients, reply_store)
                request.created_at = k.now
                self.issued += 1
                yield from clients.netstack.send(
                    k, frontend, inbox, request, self.dispatcher.request_bytes
                )
                # Open loop: wait for the response (to record it), but
                # never longer than the next arrival is due. Filter by
                # request id so an abandoned late response can never be
                # mistaken for the current one.
                gap = max(MICROSECOND, int(gaps.next()))
                deadline_ev = k.env.timeout(gap)
                rid = request.rid
                get_ev = reply_store.get(lambda m, rid=rid: m[0].rid == rid)
                fired = yield k.wait(AnyOf(k.env, [get_ev, deadline_ev]))
                if get_ev in fired:
                    response, _n = get_ev.value
                    self.dispatcher.on_response(response)
                    # Sleep out the remainder of the inter-arrival gap.
                    remaining = gap - (k.now - request.created_at)
                    if remaining > 0:
                        yield k.sleep(remaining)
                else:
                    # The response is late; drain it in the background of
                    # this injector's next cycle.
                    get_ev.cancel()
                    self.dropped_inflight += 1
                    request.completed_at = k.now
                    request.timed_out = True
                    self.dispatcher.stats.timeout_count += 1

        return body
