"""The floating-point micro-application of the paper's §5.1.2 (Fig 4).

"The application performs basic floating-point operations and reports
the time taken." We run a fixed CPU budget in small chunks and report
wall time divided by ideal time — the *normalised application delay*
Fig 4 plots against the monitoring granularity. Any CPU stolen by
monitoring threads, /proc scans, interrupt processing or context
switches on the same node shows up as delay > 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.units import MICROSECOND, MILLISECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.kernel.task import Task


class FloatApp:
    """A measured compute-bound application."""

    def __init__(
        self,
        node: "Node",
        total_compute: int = 400 * MILLISECOND,
        chunk: int = 500 * MICROSECOND,
        instances: Optional[int] = None,
    ) -> None:
        """``instances`` defaults to the node's CPU count so the app uses
        the whole node, as a dedicated benchmark run would."""
        if total_compute <= 0 or chunk <= 0:
            raise ValueError("compute budget and chunk must be positive")
        self.node = node
        self.total_compute = total_compute
        self.chunk = chunk
        self.instances = instances if instances is not None else node.num_cpus
        #: wall-clock duration of each instance, filled at completion
        self.durations: list = []
        self._tasks: list = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        for i in range(self.instances):
            self._tasks.append(
                self.node.spawn(f"floatapp:{self.node.name}:{i}", self._body)
            )

    @property
    def finished(self) -> bool:
        return len(self.durations) == self.instances

    def normalized_delay(self) -> float:
        """Mean wall time / ideal compute time (1.0 = no interference)."""
        if not self.durations:
            raise RuntimeError("application has not finished")
        return sum(self.durations) / len(self.durations) / self.total_compute

    # ------------------------------------------------------------------
    def _body(self, k):
        start = k.now
        remaining = self.total_compute
        while remaining > 0:
            step = min(self.chunk, remaining)
            yield k.compute(step)
            remaining -= step
        self.durations.append(k.now - start)
