"""RUBiS auction-site workload (the paper's §5.2.1, Table 1).

Implements the eight query classes Table 1 reports, with per-class
service demands (PHP CPU + DB CPU) calibrated so that average response
times land in the paper's few-millisecond range on a moderately loaded
cluster, while heavy classes (BrowseCategoriesInRegions) stay several
times more expensive than light ones (Home). Clients are closed-loop
session emulators with exponential think times — eight threads per
client node in the paper; we default to 64 threads on the client farm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.server.request import Request
from repro.sim.resources import Store
from repro.sim.units import MICROSECOND, MILLISECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.server.dispatcher import Dispatcher


@dataclass(frozen=True)
class QueryClass:
    """One RUBiS interaction type."""

    name: str
    #: mean PHP CPU demand, ns
    web_cpu: int
    #: mean DB CPU demand, ns
    db_cpu: int
    #: probability in the session mix
    weight: float
    #: response size, bytes
    response_bytes: int = 4096


#: the eight query classes of Table 1 (paper row order)
RUBIS_QUERIES: List[QueryClass] = [
    QueryClass("Home", web_cpu=500 * MICROSECOND, db_cpu=200 * MICROSECOND,
               weight=0.12, response_bytes=2048),
    QueryClass("Browse", web_cpu=600 * MICROSECOND, db_cpu=500 * MICROSECOND,
               weight=0.22, response_bytes=4096),
    QueryClass("BrowseRegions", web_cpu=900 * MICROSECOND, db_cpu=1800 * MICROSECOND,
               weight=0.12, response_bytes=4096),
    QueryClass("BrowseCatgryReg", web_cpu=2500 * MICROSECOND, db_cpu=7000 * MICROSECOND,
               weight=0.08, response_bytes=8192),
    QueryClass("SearchItemsReg", web_cpu=800 * MICROSECOND, db_cpu=1200 * MICROSECOND,
               weight=0.18, response_bytes=4096),
    QueryClass("PutBidAuth", web_cpu=700 * MICROSECOND, db_cpu=500 * MICROSECOND,
               weight=0.10, response_bytes=2048),
    QueryClass("Sell", web_cpu=700 * MICROSECOND, db_cpu=800 * MICROSECOND,
               weight=0.08, response_bytes=2048),
    QueryClass("AboutMe", web_cpu=700 * MICROSECOND, db_cpu=600 * MICROSECOND,
               weight=0.10, response_bytes=4096),
]

_WEIGHTS = np.array([q.weight for q in RUBIS_QUERIES])
_WEIGHTS = _WEIGHTS / _WEIGHTS.sum()


class RubisWorkload:
    """Closed-loop RUBiS client emulator."""

    def __init__(
        self,
        sim: "ClusterSim",
        dispatcher: "Dispatcher",
        num_clients: int = 64,
        think_time: int = 12 * MILLISECOND,
        demand_cv: float = 0.35,
        burst_length: float = 8.0,
        idle_factor: float = 6.0,
        deadline: int = 0,
        persistence: float = 0.0,
        rng_name: str = "rubis",
    ) -> None:
        """``burst_length``: mean requests per session burst (clients fire
        bursts back-to-back, then idle ``idle_factor``× the think time —
        the bursty traffic the paper's §4 calls out). ``burst_length <= 1``
        disables burstiness (pure exponential think times). ``deadline``:
        client patience in ns (0 = infinite); late responses count as
        timeouts in the dispatcher statistics. ``persistence``: probability
        a session repeats its previous query class (a lazy Markov chain —
        the stationary distribution stays exactly the calibrated mix, but
        sessions produce browsing sprees of correlated demand)."""
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.sim = sim
        self.dispatcher = dispatcher
        self.num_clients = num_clients
        self.think_time = think_time
        self.demand_cv = demand_cv
        self.burst_length = burst_length
        self.idle_factor = idle_factor
        if not 0.0 <= persistence < 1.0:
            raise ValueError("persistence must be in [0, 1)")
        self.deadline = deadline
        self.persistence = persistence
        self.rng = sim.rng.stream(rng_name)
        self.issued = 0
        self._next_rid = [0]
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the client threads on the client farm."""
        assert self.sim.clients is not None
        for c in range(self.num_clients):
            self.sim.clients.spawn(f"rubis-client:{c}", self._client_body(c))

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def make_request(self, reply_node, reply_store, session=None) -> Request:
        """Sample one request from the session mix.

        ``session``: optional one-element list holding the session's last
        query index; with ``persistence`` > 0 the session repeats it with
        that probability (correlated demand), else resamples the mix.
        """
        if (session is not None and session[0] is not None
                and self.persistence > 0
                and self.rng.random() < self.persistence):
            idx = session[0]
        else:
            idx = int(self.rng.choice(len(RUBIS_QUERIES), p=_WEIGHTS))
        if session is not None:
            session[0] = idx
        q = RUBIS_QUERIES[idx]
        # Lognormal demand variation around the class mean.
        scale = float(self.rng.lognormal(mean=0.0, sigma=self.demand_cv))
        self._next_rid[0] += 1
        self.issued += 1
        return Request(
            rid=self._next_rid[0],
            workload="rubis",
            query=q.name,
            web_cpu=int(q.web_cpu * scale),
            db_cpu=int(q.db_cpu * scale),
            response_bytes=q.response_bytes,
            reply_node=reply_node,
            reply_store=reply_store,
            deadline=self.deadline,
        )

    def _client_body(self, index: int):
        clients = self.sim.clients
        assert clients is not None
        frontend = self.dispatcher.frontend
        inbox = self.dispatcher.inbox
        reply_store = Store(clients.env, name=f"rubis-replies:{index}")
        think_rng = self.sim.rng.stream(f"rubis-think:{index}")

        def body(k):
            # Desynchronise session starts.
            yield k.sleep(int(think_rng.integers(0, max(1, self.think_time * 4))))
            session = [None]
            while not self._stopped:
                burst = 1
                if self.burst_length > 1:
                    burst = 1 + int(think_rng.geometric(1.0 / self.burst_length))
                session[0] = None  # a new burst starts a fresh spree
                for _ in range(burst):
                    if self._stopped:
                        return
                    request = self.make_request(clients, reply_store, session=session)
                    request.created_at = k.now
                    tracer = clients.span_tracer
                    if tracer is not None and tracer.enabled:
                        # One trace per request; closed in
                        # Dispatcher.on_response when the reply lands.
                        request.trace = tracer.start_trace(
                            "request", node=clients.name, component="client",
                            attrs={"rid": request.rid, "query": request.query})
                    yield from clients.netstack.send(
                        k, frontend, inbox, request, self.dispatcher.request_bytes
                    )
                    response = yield from clients.netstack.recv(k, reply_store)
                    self.dispatcher.on_response(response)
                    if response.rejected:
                        # Turned away at the door: the user backs off
                        # (or takes their business elsewhere — §1).
                        backoff = int(think_rng.exponential(
                            self.think_time * self.idle_factor * 2))
                        yield k.sleep(max(MICROSECOND, backoff))
                        break
                    think = int(think_rng.exponential(self.think_time))
                    yield k.sleep(max(MICROSECOND, think))
                idle = int(think_rng.exponential(self.think_time * self.idle_factor))
                yield k.sleep(max(MICROSECOND, idle))

        return body
