"""Workload generators: RUBiS, Zipf document traces, background load."""

from repro.workloads.rubis import RUBIS_QUERIES, RubisWorkload, QueryClass
from repro.workloads.zipf import ZipfWorkload, zipf_weights
from repro.workloads.background import spawn_background_load
from repro.workloads.floatapp import FloatApp
from repro.workloads.openloop import OpenLoopWorkload
from repro.workloads.tenants import (
    spawn_cache_thrash_walker,
    spawn_incast_tenants,
    spawn_qp_churn_flood,
    spawn_read_blaster,
)
from repro.workloads.traces import TraceEntry, TraceRecorder, TraceReplayer

__all__ = [
    "FloatApp",
    "OpenLoopWorkload",
    "QueryClass",
    "RUBIS_QUERIES",
    "RubisWorkload",
    "TraceEntry",
    "TraceRecorder",
    "TraceReplayer",
    "ZipfWorkload",
    "spawn_background_load",
    "spawn_cache_thrash_walker",
    "spawn_incast_tenants",
    "spawn_qp_churn_flood",
    "spawn_read_blaster",
    "zipf_weights",
]
