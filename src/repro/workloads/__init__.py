"""Workload generators: RUBiS, Zipf, traces, background and tenant load.

Every generator is reachable two ways:

* **The registry** (the supported surface): each workload is described
  by a :class:`WorkloadSpec` and instantiated by name through
  :func:`create_workload` — or, one level up, through
  ``ClusterBuilder.workload(name, **kwargs)``, which starts it as part
  of ``build()``. Keyword arguments are schema-audited with
  did-you-mean hints, node-valued parameters accept either a
  :class:`~repro.hw.node.Node` or a back-end index, and unknown
  workload names raise with a suggestion.
* **The legacy ``spawn_*`` helpers**, kept as thin shims over the
  registry. They produce fingerprint-identical runs to their
  pre-registry behaviour (property-tested, like the
  ``deploy_rubis_cluster`` shim over the builder).
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import get_close_matches
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.workloads.rubis import RUBIS_QUERIES, RubisWorkload, QueryClass
from repro.workloads.zipf import ZipfWorkload, zipf_weights
from repro.workloads.background import (
    spawn_background_load,
    _spawn_background_load,
)
from repro.workloads.floatapp import FloatApp
from repro.workloads.openloop import OpenLoopWorkload
from repro.workloads.tenants import (
    spawn_cache_thrash_walker,
    spawn_incast_tenants,
    spawn_qp_churn_flood,
    spawn_read_blaster,
    _spawn_cache_thrash_walker,
    _spawn_incast_tenants,
    _spawn_qp_churn_flood,
    _spawn_read_blaster,
)
from repro.workloads.traces import (
    TRACE_SCHEMA_VERSION,
    TraceEntry,
    TraceFormatError,
    TraceRecorder,
    TraceReplayer,
)
from repro.workloads.synth import (
    synthesize_diurnal,
    synthesize_flash_crowd,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: how to build it and what it accepts."""

    name: str
    factory: Callable
    #: accepted keyword parameters (audited with did-you-mean)
    params: Tuple[str, ...]
    #: parameters that must be supplied
    required: Tuple[str, ...] = ()
    #: instance exposes ``.start()`` that must be called (class workloads)
    needs_start: bool = False
    #: factory signature is ``(sim, dispatcher, **kwargs)``
    needs_dispatcher: bool = False
    description: str = ""


#: name → spec; see :func:`register_workload`
WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_workload(
    name: str,
    factory: Callable,
    *,
    params: Tuple[str, ...],
    required: Tuple[str, ...] = (),
    needs_start: bool = False,
    needs_dispatcher: bool = False,
    description: str = "",
) -> WorkloadSpec:
    """Register (or replace) a workload under ``name``."""
    spec = WorkloadSpec(name=name, factory=factory, params=tuple(params),
                        required=tuple(required), needs_start=needs_start,
                        needs_dispatcher=needs_dispatcher,
                        description=description)
    WORKLOADS[name] = spec
    return spec


def workload_names() -> List[str]:
    return sorted(WORKLOADS)


def get_workload_spec(name: str) -> WorkloadSpec:
    """The spec for ``name``; unknown names raise with a suggestion."""
    try:
        return WORKLOADS[name]
    except KeyError:
        matches = get_close_matches(name, WORKLOADS, n=1, cutoff=0.6)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        raise KeyError(
            f"unknown workload {name!r}{hint} "
            f"(registered: {', '.join(workload_names())})") from None


def _audit_workload_kwargs(spec: WorkloadSpec, kwargs: dict) -> None:
    """Schema-audit create_workload keywords, with a did-you-mean hint."""
    unknown = [k for k in kwargs if k not in spec.params]
    if unknown:
        name = unknown[0]
        matches = get_close_matches(name, spec.params, n=1, cutoff=0.6)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        raise TypeError(
            f"workload {spec.name!r} got unknown keyword argument "
            f"{name!r}{hint} (valid keywords: {', '.join(sorted(spec.params))})")
    missing = [k for k in spec.required if k not in kwargs]
    if missing:
        raise TypeError(
            f"workload {spec.name!r} missing required argument(s): "
            f"{', '.join(missing)}")


def _resolve_node(sim: "ClusterSim", value):
    """Node-valued parameters accept a Node or a back-end index."""
    if isinstance(value, int):
        return sim.backends[value]
    return value


def _resolve_nodes(sim: "ClusterSim", values):
    return [_resolve_node(sim, v) for v in values]


def create_workload(name: str, sim: "ClusterSim", dispatcher=None, **kwargs):
    """Instantiate the registered workload ``name`` on ``sim``.

    Returns whatever the factory returns: spawned task(s) for the
    ``spawn_*``-style generators, or a workload object (call
    ``.start()``, or let ``ClusterBuilder.workload`` do it) when the
    spec says ``needs_start``. Unknown names and keywords raise with
    did-you-mean hints; node-valued keywords accept back-end indices.
    """
    spec = get_workload_spec(name)
    _audit_workload_kwargs(spec, kwargs)
    if spec.needs_dispatcher:
        if dispatcher is None:
            raise TypeError(f"workload {name!r} needs a dispatcher")
        return spec.factory(sim, dispatcher, **kwargs)
    return spec.factory(sim, **kwargs)


# ----------------------------------------------------------------------
# the stock registry
# ----------------------------------------------------------------------
def _background(sim, node, **kw):
    return _spawn_background_load(sim, _resolve_node(sim, node), **kw)


def _incast(sim, target, sources, **kw):
    return _spawn_incast_tenants(sim, _resolve_node(sim, target),
                                 _resolve_nodes(sim, sources), **kw)


def _qp_churn(sim, src, target, **kw):
    return _spawn_qp_churn_flood(sim, _resolve_node(sim, src),
                                 _resolve_node(sim, target), **kw)


def _read_blaster(sim, src, target, **kw):
    return _spawn_read_blaster(sim, _resolve_node(sim, src),
                               _resolve_node(sim, target), **kw)


def _cache_thrash(sim, src, target, **kw):
    return _spawn_cache_thrash_walker(sim, _resolve_node(sim, src),
                                      _resolve_node(sim, target), **kw)


def _float(sim, node, **kw):
    return FloatApp(_resolve_node(sim, node), **kw)


register_workload(
    "background", _background,
    params=("node", "threads", "comm_fraction", "compute_chunk",
            "message_interval", "message_bytes", "burst"),
    required=("node", "threads"),
    description="compute hogs + communication echo pairs (§5.1.1)")
register_workload(
    "incast", _incast,
    params=("target", "sources", "flows_per_source", "message_bytes",
            "interval", "label"),
    required=("target", "sources"),
    description="open-loop one-sided-write incast onto one port")
register_workload(
    "qp-churn", _qp_churn,
    params=("src", "target", "interval", "burst", "hold_max",
            "message_bytes", "start_after", "stop_after", "label"),
    required=("src", "target"),
    description="QP/CQ-exhaustion noisy-neighbor attack")
register_workload(
    "read-blaster", _read_blaster,
    params=("src", "target", "message_bytes", "interval", "flows",
            "start_after", "stop_after", "label"),
    required=("src", "target"),
    description="bandwidth-hog attack: open-loop large one-sided reads")
register_workload(
    "cache-thrash", _cache_thrash,
    params=("src", "target", "regions", "message_bytes", "interval",
            "start_after", "stop_after", "label"),
    required=("src", "target"),
    description="ICM context-cache thrash attack")
register_workload(
    "float", _float,
    params=("node", "total_compute", "chunk", "instances"),
    required=("node",), needs_start=True,
    description="fixed-budget compute app (perturbation probe)")
register_workload(
    "rubis", RubisWorkload,
    params=("num_clients", "think_time", "demand_cv", "burst_length",
            "idle_factor", "deadline", "persistence", "rng_name"),
    needs_start=True, needs_dispatcher=True,
    description="closed-loop RUBiS session emulator (Table 1 mix)")
register_workload(
    "zipf", ZipfWorkload,
    params=("alpha", "num_clients", "think_time", "num_documents",
            "burst_length", "idle_factor", "rng_name"),
    needs_start=True, needs_dispatcher=True,
    description="Zipf document trace with per-node LRU caches (Fig 7)")
register_workload(
    "openloop", OpenLoopWorkload,
    params=("rate_rps", "deadline", "demand_cv", "injectors", "rng_name"),
    required=("rate_rps",), needs_start=True, needs_dispatcher=True,
    description="Poisson open-loop RUBiS-mix arrivals at a fixed rate")
register_workload(
    "replay", TraceReplayer,
    params=("trace", "time_scale", "load_scale", "injectors",
            "drain_timeout"),
    required=("trace",), needs_start=True, needs_dispatcher=True,
    description="open-loop replay of a recorded/synthesised trace")


__all__ = [
    "FloatApp",
    "OpenLoopWorkload",
    "QueryClass",
    "RUBIS_QUERIES",
    "RubisWorkload",
    "TRACE_SCHEMA_VERSION",
    "TraceEntry",
    "TraceFormatError",
    "TraceRecorder",
    "TraceReplayer",
    "WORKLOADS",
    "WorkloadSpec",
    "ZipfWorkload",
    "create_workload",
    "get_workload_spec",
    "register_workload",
    "spawn_background_load",
    "spawn_cache_thrash_walker",
    "spawn_incast_tenants",
    "spawn_qp_churn_flood",
    "spawn_read_blaster",
    "synthesize_diurnal",
    "synthesize_flash_crowd",
    "workload_names",
    "zipf_weights",
]
