"""Zipf document-trace workload (the paper's §5.2.1, Fig 7).

"According to Zipf law, the relative probability of a request for the
i'th most popular document is proportional to 1/i^α" — higher α means
higher temporal locality. At low α the working set exceeds the per-node
document caches, so placement quality (which server's cache holds what;
who is stalled on disk) matters and fine-grained monitoring pays off;
at high α everything is cached everywhere and all schemes converge —
exactly the trend of Fig 7.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.server.request import Request
from repro.sim.resources import Store
from repro.sim.units import MICROSECOND, MILLISECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.server.dispatcher import Dispatcher


def zipf_weights(num_documents: int, alpha: float) -> np.ndarray:
    """Normalised Zipf(α) probabilities over document ranks 1..N."""
    if num_documents < 1:
        raise ValueError("need at least one document")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, num_documents + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


class ZipfWorkload:
    """Closed-loop static-content clients driving the document trace."""

    #: PHP-side cost of serving any document request (dispatch, headers)
    WEB_CPU = 250 * MICROSECOND

    def __init__(
        self,
        sim: "ClusterSim",
        dispatcher: "Dispatcher",
        alpha: float = 0.5,
        num_clients: int = 32,
        think_time: int = 15 * MILLISECOND,
        num_documents: Optional[int] = None,
        burst_length: float = 6.0,
        idle_factor: float = 5.0,
        rng_name: str = "zipf",
    ) -> None:
        """Bursty sessions (``burst_length`` requests back-to-back, then
        an ``idle_factor``×think pause): a burst of cache misses
        transiently saturates one server's disk, which is exactly the
        imbalance that timely load information routes around (Fig 7)."""
        self.sim = sim
        self.dispatcher = dispatcher
        self.alpha = alpha
        self.num_clients = num_clients
        self.think_time = think_time
        self.burst_length = burst_length
        self.idle_factor = idle_factor
        self.num_documents = (
            num_documents if num_documents is not None else sim.cfg.server.zipf_documents
        )
        self.weights = zipf_weights(self.num_documents, alpha)
        self.rng = sim.rng.stream(rng_name)
        self.issued = 0
        self._next_rid = [1_000_000]
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        assert self.sim.clients is not None
        for c in range(self.num_clients):
            self.sim.clients.spawn(f"zipf-client:{c}", self._client_body(c))

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def sample_document(self) -> int:
        """Draw a document id from the Zipf(α) popularity distribution."""
        return int(self.rng.choice(self.num_documents, p=self.weights))

    def make_request(self, reply_node, reply_store) -> Request:
        self._next_rid[0] += 1
        self.issued += 1
        return Request(
            rid=self._next_rid[0],
            workload="zipf",
            query=f"doc",
            web_cpu=self.WEB_CPU,
            db_cpu=0,
            doc_id=self.sample_document(),
            response_bytes=4096,
            reply_node=reply_node,
            reply_store=reply_store,
        )

    def _client_body(self, index: int):
        clients = self.sim.clients
        assert clients is not None
        frontend = self.dispatcher.frontend
        inbox = self.dispatcher.inbox
        reply_store = Store(clients.env, name=f"zipf-replies:{index}")
        think_rng = self.sim.rng.stream(f"zipf-think:{index}")

        def body(k):
            yield k.sleep(int(think_rng.integers(0, max(1, self.think_time * 4))))
            while not self._stopped:
                burst = 1
                if self.burst_length > 1:
                    burst = 1 + int(think_rng.geometric(1.0 / self.burst_length))
                for _ in range(burst):
                    if self._stopped:
                        return
                    request = self.make_request(clients, reply_store)
                    request.created_at = k.now
                    yield from clients.netstack.send(
                        k, frontend, inbox, request, self.dispatcher.request_bytes
                    )
                    response = yield from clients.netstack.recv(k, reply_store)
                    self.dispatcher.on_response(response)
                    think = int(think_rng.exponential(self.think_time))
                    yield k.sleep(max(MICROSECOND, think))
                idle = int(think_rng.exponential(self.think_time * self.idle_factor))
                yield k.sleep(max(MICROSECOND, idle))

        return body
