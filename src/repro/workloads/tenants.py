"""Tenant-shaped load generators: the incast tenant plus the attacks.

All tenant-shaped load shares one module and one RNG-stream convention
(``"{label}:{node}:{salt}"`` named streams off ``sim.rng``), so any two
generators compose deterministically in one run.

:func:`spawn_incast_tenants` is the congestion experiments' heavy
tenant: *open-loop* one-sided RDMA writes from many sources converging
on one port — the classic incast pattern that fills the victim's egress
queue regardless of how slowly the victim drains it.

The remaining three are the noisy-neighbor attacks the tenancy plane
(:mod:`repro.tenancy`) exists to detect and defeat, one per shared NIC
resource:

* :func:`spawn_qp_churn_flood` — **QP/CQ exhaustion**: create queue
  pairs far faster than any sane application, filling the NIC's bounded
  QP table and churning its context cache.
* :func:`spawn_read_blaster` — **bandwidth hogging**: open-loop large
  one-sided reads that monopolise the victim NIC's DMA engine and TX
  port with zero cooperation from the victim's CPU.
* :func:`spawn_cache_thrash_walker` — **ICM cache thrash**: round-robin
  tiny reads over more memory regions than the NIC cache holds, so
  every access (the attacker's *and* other tenants') misses and pays
  the PCIe refill penalty.

Each attack registers its own tenant with the tenancy plane when one is
installed (binding the source node so all its verbs are attributed),
and degrades gracefully to plain load when the plane is off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.sim.units import MICROSECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.node import Node
    from repro.kernel.task import Task


def _attack_tenant(sim: "ClusterSim", name: str, src: "Node"):
    """Register (or reuse) the attack's tenant on the tenancy plane.

    Returns None when the plane is off — the workload still runs, it is
    just unattributed background load.
    """
    plane = getattr(sim, "tenancy", None)
    if plane is None:
        return None
    try:
        return plane.registry.by_name(name)
    except KeyError:
        return plane.create_tenant(name, node=src)


def spawn_incast_tenants(
    sim: "ClusterSim",
    target: "Node",
    sources: "Sequence[Node]",
    flows_per_source: int = 1,
    message_bytes: int = 8192,
    interval: int = 50 * MICROSECOND,
    label: str = "incast",
) -> List["Task"]:
    """Shim over ``create_workload("incast", ...)``; see that entry."""
    from repro.workloads import create_workload

    return create_workload(
        "incast", sim, target=target, sources=sources,
        flows_per_source=flows_per_source, message_bytes=message_bytes,
        interval=interval, label=label)


def _spawn_incast_tenants(
    sim: "ClusterSim",
    target: "Node",
    sources: "Sequence[Node]",
    flows_per_source: int = 1,
    message_bytes: int = 8192,
    interval: int = 50 * MICROSECOND,
    label: str = "incast",
) -> List["Task"]:
    """Blast ``target`` with open-loop one-sided writes from ``sources``.

    Each flow posts a ``message_bytes`` RDMA write every ``interval`` ns
    (jittered per-flow) *without waiting for completions* — an open loop,
    so offered load is ``len(sources) * flows_per_source *
    message_bytes / interval`` regardless of congestion. Once that
    exceeds the target's link rate its egress queue grows without bound
    unless PFC or DCQCN pushes back: exactly the incast the congestion
    experiments measure. Returns the sender tasks.
    """
    # Deferred: keep the verbs import off socket-only import paths.
    from repro.transport.verbs import AccessFlags, ProtectionDomain, connect_qp

    if flows_per_source <= 0:
        raise ValueError("flows_per_source must be positive")
    region_name = f"{label}:sink"
    if region_name not in target.memory:
        target.memory.alloc(region_name, message_bytes)
    mr = ProtectionDomain.for_node(target).register(
        target.memory.get(region_name), AccessFlags.REMOTE_WRITE)
    doorbell = sim.cfg.net.doorbell_cost
    tasks: List["Task"] = []
    for src in sources:
        for f in range(flows_per_source):
            qp, _ = connect_qp(src, target)

            def blast_body(k, qp=qp, salt=f, src_name=src.name):
                rng = sim.rng.stream(f"{label}:{src_name}:{salt}")
                yield k.sleep(int(rng.integers(0, max(1, interval))))
                start = k.now
                sent = 0
                while True:
                    # Open loop in *time*, not in wakeups: post however
                    # many intervals have elapsed (catch-up), so a
                    # CPU-starved sender still offers the configured
                    # load — one doorbell covers the whole batch.
                    due = (k.now - start) // interval + 1
                    while sent < due:
                        # Fire and forget: nobody waits on completions.
                        qp._post_write(mr.rkey, "tenant", message_bytes)
                        sent += 1
                    yield k.compute(doorbell, mode="user")
                    yield k.sleep(max(1, start + sent * interval - k.now))

            tasks.append(src.spawn(f"{label}:{src.name}:{f}", blast_body))
    return tasks


def spawn_qp_churn_flood(
    sim: "ClusterSim",
    src: "Node",
    target: "Node",
    interval: int = 50 * MICROSECOND,
    burst: int = 8,
    hold_max: int = 64,
    message_bytes: int = 64,
    start_after: int = 0,
    stop_after: int = 0,
    label: str = "qp-flood",
) -> "Task":
    """Shim over ``create_workload("qp-churn", ...)``; see that entry."""
    from repro.workloads import create_workload

    return create_workload(
        "qp-churn", sim, src=src, target=target, interval=interval,
        burst=burst, hold_max=hold_max, message_bytes=message_bytes,
        start_after=start_after, stop_after=stop_after, label=label)


def _spawn_qp_churn_flood(
    sim: "ClusterSim",
    src: "Node",
    target: "Node",
    interval: int = 50 * MICROSECOND,
    burst: int = 8,
    hold_max: int = 64,
    message_bytes: int = 64,
    start_after: int = 0,
    stop_after: int = 0,
    label: str = "qp-flood",
) -> "Task":
    """QP/CQ-exhaustion attack: churn queue pairs against ``target``.

    Every ``interval`` the flood creates ``burst`` fresh QPs to the
    target and fires one tiny read on each — every read drags a
    never-seen QP context through both NICs' ICM caches — while holding
    at most ``hold_max`` QPs live (oldest destroyed first), so the
    attack pressure is *churn rate*, not a one-shot table fill. When
    admission starts rejecting creations (table full, quota, or
    quarantine) the flood backs off for the rest of the round — denials
    still count against it in the tenancy plane's telemetry.
    """
    from repro.transport.verbs import (
        AccessFlags,
        ProtectionDomain,
        TenancyError,
        connect_qp,
    )

    _attack_tenant(sim, label, src)
    region_name = f"{label}:bait"
    if region_name not in target.memory:
        target.memory.alloc(region_name, message_bytes)
    mr = ProtectionDomain.for_node(target).register(
        target.memory.get(region_name), AccessFlags.REMOTE_READ)
    doorbell = sim.cfg.net.doorbell_cost

    def flood_body(k):
        rng = sim.rng.stream(f"{label}:{src.name}:0")
        if start_after:
            yield k.sleep(start_after)
        yield k.sleep(int(rng.integers(0, max(1, interval))))
        held: List[tuple] = []
        while True:
            if stop_after and k.now >= stop_after:
                for qa, qb in held:
                    qa.destroy()
                    qb.destroy()
                return
            for _ in range(burst):
                try:
                    qa, qb = connect_qp(src, target)
                except TenancyError:
                    break  # admission pushed back: retry next round
                held.append((qa, qb))
                qa._post_read(mr.rkey, message_bytes)
            while len(held) > hold_max:
                qa, qb = held.pop(0)
                qa.destroy()
                qb.destroy()
            yield k.compute(doorbell, mode="user")
            yield k.sleep(max(1, interval))

    return src.spawn(f"{label}:{src.name}", flood_body)


def spawn_read_blaster(
    sim: "ClusterSim",
    src: "Node",
    target: "Node",
    message_bytes: int = 65536,
    interval: int = 50 * MICROSECOND,
    flows: int = 2,
    start_after: int = 0,
    stop_after: int = 0,
    label: str = "read-blast",
) -> List["Task"]:
    """Shim over ``create_workload("read-blaster", ...)``; see that entry."""
    from repro.workloads import create_workload

    return create_workload(
        "read-blaster", sim, src=src, target=target,
        message_bytes=message_bytes, interval=interval, flows=flows,
        start_after=start_after, stop_after=stop_after, label=label)


def _spawn_read_blaster(
    sim: "ClusterSim",
    src: "Node",
    target: "Node",
    message_bytes: int = 65536,
    interval: int = 50 * MICROSECOND,
    flows: int = 2,
    start_after: int = 0,
    stop_after: int = 0,
    label: str = "read-blast",
) -> List["Task"]:
    """Bandwidth-hog attack: open-loop large one-sided reads.

    Each flow posts a ``message_bytes`` RDMA read every ``interval``
    without waiting for completions. Large reads monopolise the *victim
    NIC's* DMA engine (FIFO) and TX port — one-sidedness means the
    victim's CPU never gets a say — so co-located monitoring responses
    queue behind attacker data. Quarantined posts complete as
    ``TENANT_DENIED`` without touching the wire, which is what restores
    the victim.
    """
    from repro.transport.verbs import AccessFlags, ProtectionDomain, connect_qp

    if flows <= 0:
        raise ValueError("flows must be positive")
    _attack_tenant(sim, label, src)
    region_name = f"{label}:trough"
    if region_name not in target.memory:
        target.memory.alloc(region_name, message_bytes)
    mr = ProtectionDomain.for_node(target).register(
        target.memory.get(region_name), AccessFlags.REMOTE_READ)
    doorbell = sim.cfg.net.doorbell_cost
    tasks: List["Task"] = []
    for f in range(flows):
        qp, _ = connect_qp(src, target)

        def blast_body(k, qp=qp, salt=f):
            rng = sim.rng.stream(f"{label}:{src.name}:{salt}")
            if start_after:
                yield k.sleep(start_after)
            yield k.sleep(int(rng.integers(0, max(1, interval))))
            start = k.now
            sent = 0
            while True:
                if stop_after and k.now >= stop_after:
                    return
                due = (k.now - start) // interval + 1
                while sent < due:
                    qp._post_read(mr.rkey, message_bytes)
                    sent += 1
                yield k.compute(doorbell, mode="user")
                yield k.sleep(max(1, start + sent * interval - k.now))

        tasks.append(src.spawn(f"{label}:{src.name}:{f}", blast_body))
    return tasks


def spawn_cache_thrash_walker(
    sim: "ClusterSim",
    src: "Node",
    target: "Node",
    regions: int = 128,
    message_bytes: int = 64,
    interval: int = 20 * MICROSECOND,
    start_after: int = 0,
    stop_after: int = 0,
    label: str = "icm-thrash",
) -> "Task":
    """Shim over ``create_workload("cache-thrash", ...)``; see that entry."""
    from repro.workloads import create_workload

    return create_workload(
        "cache-thrash", sim, src=src, target=target, regions=regions,
        message_bytes=message_bytes, interval=interval,
        start_after=start_after, stop_after=stop_after, label=label)


def _spawn_cache_thrash_walker(
    sim: "ClusterSim",
    src: "Node",
    target: "Node",
    regions: int = 128,
    message_bytes: int = 64,
    interval: int = 20 * MICROSECOND,
    start_after: int = 0,
    stop_after: int = 0,
    label: str = "icm-thrash",
) -> "Task":
    """ICM-thrash attack: walk a working set larger than the NIC cache.

    Registers ``regions`` tiny memory regions on the target and reads
    them round-robin. With ``regions`` above ``cfg.tenancy.icm_entries``
    every access misses, and each miss evicts someone else's hot QP/MR
    context — other tenants on the same target NIC start paying refill
    penalties for *their* verbs. Tiny messages keep the wire quiet, so
    the damage is isolated to the context-cache mechanism.
    """
    from repro.transport.verbs import AccessFlags, ProtectionDomain, connect_qp

    if regions <= 0:
        raise ValueError("regions must be positive")
    _attack_tenant(sim, label, src)
    pd = ProtectionDomain.for_node(target)
    mrs = []
    for r in range(regions):
        region_name = f"{label}:walk:{r}"
        if region_name not in target.memory:
            target.memory.alloc(region_name, message_bytes)
        mrs.append(pd.register(target.memory.get(region_name),
                               AccessFlags.REMOTE_READ))
    qp, _ = connect_qp(src, target)
    doorbell = sim.cfg.net.doorbell_cost

    def walk_body(k):
        rng = sim.rng.stream(f"{label}:{src.name}:0")
        if start_after:
            yield k.sleep(start_after)
        yield k.sleep(int(rng.integers(0, max(1, interval))))
        start = k.now
        sent = 0
        while True:
            if stop_after and k.now >= stop_after:
                return
            due = (k.now - start) // interval + 1
            while sent < due:
                qp._post_read(mrs[sent % regions].rkey, message_bytes)
                sent += 1
            yield k.compute(doorbell, mode="user")
            yield k.sleep(max(1, start + sent * interval - k.now))

    return src.spawn(f"{label}:{src.name}", walk_body)
