"""Synthetic non-stationary traces: diurnal cycles and flash crowds.

Real clusters do not see stationary Poisson load — they see daily
cycles and, occasionally, a flash crowd (the Slashdot effect): offered
load multiplying within seconds. The elastic-scaling experiments need
both regimes as *reproducible* inputs, so these generators synthesise
them directly as :class:`~repro.workloads.traces.TraceEntry` streams —
non-homogeneous Poisson arrivals (by thinning) of RUBiS-mix requests
whose rate follows the chosen profile.

Every draw comes from one **dedicated RNG stream** (``synth:<name>``
off ``sim.rng`` when a simulation is supplied, otherwise a
self-contained seeded generator), so synthesising a trace can never
perturb any other component's stream and the same parameters always
produce the same trace.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.workloads.rubis import RUBIS_QUERIES, QueryClass
from repro.workloads.traces import TraceEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim

#: default seed for standalone (sim-less) synthesis
DEFAULT_SYNTH_SEED = 0x5E55_10AD


def diurnal_rate(t: int, duration: int, base_rps: float, peak_rps: float,
                 period: Optional[int] = None) -> float:
    """Arrival rate (rps) at offset ``t``: a raised-cosine daily cycle.

    The rate starts at ``base_rps`` (the trough), peaks at ``peak_rps``
    half a period in, and returns to the trough — one full cycle per
    ``period`` ns (default: one cycle over the whole trace).
    """
    period = period or duration
    phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t % period) / period))
    return base_rps + (peak_rps - base_rps) * phase


def flash_crowd_rate(t: int, base_rps: float, spike_factor: float,
                     spike_start: int, ramp: int, hold: int) -> float:
    """Arrival rate (rps) at offset ``t``: baseline with one flash crowd.

    Load ramps linearly from ``base_rps`` to ``base_rps * spike_factor``
    over ``ramp`` ns starting at ``spike_start``, holds the peak for
    ``hold`` ns, then ramps back down symmetrically.
    """
    peak = base_rps * spike_factor
    up_end = spike_start + ramp
    hold_end = up_end + hold
    down_end = hold_end + ramp
    if t < spike_start or t >= down_end:
        return base_rps
    if t < up_end:
        return base_rps + (peak - base_rps) * (t - spike_start) / max(1, ramp)
    if t < hold_end:
        return peak
    return peak - (peak - base_rps) * (t - hold_end) / max(1, ramp)


def _resolve_rng(sim: Optional["ClusterSim"], rng, seed: int, name: str):
    """The dedicated stream: sim-owned when available, standalone else."""
    if rng is not None:
        return rng
    if sim is not None:
        return sim.rng.stream(f"synth:{name}")
    return np.random.default_rng(seed)


def _synthesize(rate_fn, duration: int, max_rps: float, workload: str,
                queries: Sequence[QueryClass], demand_cv: float,
                deadline: int, rng) -> List[TraceEntry]:
    """Non-homogeneous Poisson arrivals by thinning at ``max_rps``."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if max_rps <= 0:
        raise ValueError("arrival rates must be positive")
    weights = np.array([q.weight for q in queries], dtype=np.float64)
    weights = weights / weights.sum()
    mean_gap = 1e9 / max_rps  # ns between candidate arrivals
    entries: List[TraceEntry] = []
    t = 0.0
    while True:
        t += float(rng.exponential(mean_gap))
        if t >= duration:
            break
        if float(rng.random()) * max_rps > rate_fn(int(t)):
            continue  # thinned: the instantaneous rate is below the envelope
        q = queries[int(rng.choice(len(queries), p=weights))]
        scale = float(rng.lognormal(mean=0.0, sigma=demand_cv))
        entries.append(TraceEntry(
            offset_ns=int(t),
            workload=workload,
            query=q.name,
            web_cpu=int(q.web_cpu * scale),
            db_cpu=int(q.db_cpu * scale),
            doc_id=None,
            response_bytes=q.response_bytes,
            deadline=deadline,
        ))
    return entries


def synthesize_diurnal(
    duration: int,
    base_rps: float,
    peak_rps: float,
    period: Optional[int] = None,
    queries: Sequence[QueryClass] = tuple(RUBIS_QUERIES),
    demand_cv: float = 0.35,
    deadline: int = 0,
    sim: Optional["ClusterSim"] = None,
    rng=None,
    seed: int = DEFAULT_SYNTH_SEED,
) -> List[TraceEntry]:
    """A diurnal-cycle trace: trough→peak→trough raised-cosine load."""
    if peak_rps < base_rps:
        raise ValueError("peak_rps must be >= base_rps")
    rng = _resolve_rng(sim, rng, seed, "diurnal")
    return _synthesize(
        lambda t: diurnal_rate(t, duration, base_rps, peak_rps, period),
        duration, peak_rps, "synth-diurnal", queries, demand_cv, deadline, rng)


def synthesize_flash_crowd(
    duration: int,
    base_rps: float,
    spike_factor: float = 4.0,
    spike_start: Optional[int] = None,
    ramp: Optional[int] = None,
    hold: Optional[int] = None,
    queries: Sequence[QueryClass] = tuple(RUBIS_QUERIES),
    demand_cv: float = 0.35,
    deadline: int = 0,
    sim: Optional["ClusterSim"] = None,
    rng=None,
    seed: int = DEFAULT_SYNTH_SEED,
) -> List[TraceEntry]:
    """A flash-crowd trace: baseline, then a ramp–hold–ramp load spike.

    Defaults put the spike onset a quarter into the trace, ramping over
    a tenth of the trace and holding the peak for another quarter.
    """
    if spike_factor < 1.0:
        raise ValueError("spike_factor must be >= 1")
    spike_start = duration // 4 if spike_start is None else spike_start
    ramp = duration // 10 if ramp is None else ramp
    hold = duration // 4 if hold is None else hold
    if spike_start < 0 or ramp < 0 or hold < 0:
        raise ValueError("spike timing parameters must be >= 0")
    rng = _resolve_rng(sim, rng, seed, "flash-crowd")
    return _synthesize(
        lambda t: flash_crowd_rate(t, base_rps, spike_factor,
                                   spike_start, ramp, hold),
        duration, base_rps * spike_factor, "synth-flash", queries,
        demand_cv, deadline, rng)
