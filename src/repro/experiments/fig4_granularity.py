"""Figure 4 — application perturbation vs monitoring granularity.

Paper: the float-op application "degrades significantly when
Socket-Async, Socket-Sync and RDMA-Async schemes are running in the
background at smaller granularity such as 1 ms and 4 ms … there is no
performance degradation with RDMA-Sync."

The x axis is the monitoring granularity (both the front-end polling
interval and the back-end calc-thread interval); the y axis is the
application's wall time normalised to its CPU demand.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.hw.cluster import build_cluster
from repro.monitoring.registry import CORE_SCHEME_NAMES, create_scheme
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.floatapp import FloatApp

#: granularities swept (ms → ns), paper: 1 ms .. 1024 ms
DEFAULT_GRANULARITIES_MS: Sequence[int] = (1, 4, 16, 64, 256, 1024)


def measure_delay(
    scheme_name: Optional[str],
    granularity: int,
    app_compute: int = 400 * MILLISECOND,
    cfg: Optional[SimConfig] = None,
) -> float:
    """Normalised delay of the float app with one scheme active.

    ``scheme_name=None`` measures the unperturbed baseline.
    """
    cfg = cfg if cfg is not None else SimConfig(num_backends=1)
    sim = build_cluster(cfg)
    target = sim.backends[0]

    if scheme_name is not None:
        scheme = create_scheme(scheme_name, sim, interval=granularity)

        def poller(k):
            while True:
                yield from scheme.query(k, 0)
                yield k.sleep(granularity)

        sim.frontend.spawn("fig4-poller", poller)

    app = FloatApp(target, total_compute=app_compute)
    app.start()
    # Generous horizon: the app needs app_compute plus perturbation.
    horizon = app_compute * 6 + SECOND
    step = 100 * MILLISECOND
    t = sim.env.now
    while not app.finished and t < horizon:
        t += step
        sim.run(t)
    if not app.finished:
        raise RuntimeError(f"float app did not finish under {scheme_name}")
    return app.normalized_delay()


def run(
    granularities_ms: Sequence[int] = DEFAULT_GRANULARITIES_MS,
    schemes: Sequence[str] = tuple(CORE_SCHEME_NAMES),
    app_compute: int = 400 * MILLISECOND,
) -> ExperimentResult:
    """Full Figure 4 sweep."""
    result = ExperimentResult(
        name="fig4-granularity",
        params={"granularities_ms": list(granularities_ms)},
        xs=list(granularities_ms),
    )
    for scheme_name in schemes:
        series: List[float] = []
        for g_ms in granularities_ms:
            series.append(measure_delay(scheme_name, g_ms * MILLISECOND,
                                        app_compute=app_compute))
        result.series[scheme_name] = series
    result.notes = (
        "Normalised application delay (1.0 = unperturbed). Expected: "
        "socket-async worst at 1–4 ms, then socket-sync, then rdma-async; "
        "rdma-sync flat at ~1.0 (paper Fig 4)."
    )
    return result
