"""Telemetry overhead: the metric plane must be free in simulated time.

The paper's core property is that RDMA-Sync monitoring consumes no
back-end CPU. The telemetry plane (``repro.telemetry``) extends the
front end with rings, digests and alert rules — all driven by observer
callbacks, never by simulated events — so enabling it must leave every
simulated outcome *bit-identical*: same seeds → same load-balancing
decisions, same completions, same per-query latencies.

This experiment deploys the RUBiS stack twice per seed (telemetry off /
on), runs the same burst workload, and compares:

* **simulated behaviour** — forwarded counts, per-back-end request
  distribution, completed-request count and total response time must
  match exactly;
* **wall-clock cost** — the telemetry run's real-time overhead;
* **memory bound** — retained samples stay ≤ 3 tiers x capacity x rings
  no matter how many samples streamed through.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RubisWorkload

DEFAULTS = dict(
    num_backends=4,
    workers=32,
    clients=48,
    think_time=3 * MILLISECOND,
    demand_cv=0.4,
)


def run_one(
    seed: int,
    with_telemetry: bool,
    scheme_name: str = "rdma-sync",
    duration: int = 4 * SECOND,
    poll_interval: int = 50 * MILLISECOND,
    **overrides,
) -> Dict[str, object]:
    """One RUBiS burst; returns the decision fingerprint + costs."""
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"], master_seed=seed)
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    app = deploy_rubis_cluster(
        cfg, scheme_name=scheme_name, poll_interval=poll_interval,
        workers=params["workers"], with_telemetry=with_telemetry,
    )
    workload = RubisWorkload(
        app.sim, app.dispatcher, num_clients=params["clients"],
        think_time=params["think_time"], demand_cv=params["demand_cv"],
        burst_length=10, idle_factor=8,
    )
    workload.start()
    wall_start = time.perf_counter()
    app.run(duration)
    wall = time.perf_counter() - wall_start

    stats = app.dispatcher.stats
    fingerprint = {
        "forwarded": app.dispatcher.forwarded,
        "per_backend": dict(sorted(stats.per_backend_counts().items())),
        "completed": stats.count(),
        "total_response_ns": sum(stats.response_times()),
        "polls": app.monitor.polls,
    }
    out: Dict[str, object] = {"fingerprint": fingerprint, "wall_s": wall}
    if app.telemetry is not None:
        retained = sum(
            len(ring.raw) + len(ring.mid) + len(ring.coarse)
            for ring in (app.telemetry.store.ring(n) for n in app.telemetry.store.names())
        )
        out.update(
            observations=app.telemetry.observations,
            streamed=app.telemetry.store.total_samples,
            retained=retained,
            memory_bound=app.telemetry.memory_bound(),
            alerts=len(app.telemetry.engine.log),
        )
    return out


def run(
    seeds: Sequence[int] = (1, 2, 3),
    scheme_name: str = "rdma-sync",
    duration: int = 4 * SECOND,
    **overrides,
) -> ExperimentResult:
    """Off/on comparison across seeds."""
    result = ExperimentResult(
        name="telemetry_overhead",
        params={"scheme": scheme_name, "duration": duration, "seeds": list(seeds)},
        xs=list(seeds),
        series={"wall_off_s": [], "wall_on_s": [], "overhead_pct": []},
    )
    identical = True
    rows = []
    for seed in seeds:
        off = run_one(seed, with_telemetry=False, scheme_name=scheme_name,
                      duration=duration, **overrides)
        on = run_one(seed, with_telemetry=True, scheme_name=scheme_name,
                     duration=duration, **overrides)
        same = off["fingerprint"] == on["fingerprint"]
        identical = identical and same
        overhead = (on["wall_s"] - off["wall_s"]) / off["wall_s"] * 100.0
        result.series["wall_off_s"].append(off["wall_s"])
        result.series["wall_on_s"].append(on["wall_s"])
        result.series["overhead_pct"].append(overhead)
        rows.append({
            "seed": seed,
            "identical": same,
            "forwarded": off["fingerprint"]["forwarded"],
            "per_backend_off": off["fingerprint"]["per_backend"],
            "per_backend_on": on["fingerprint"]["per_backend"],
            "observations": on["observations"],
            "streamed": on["streamed"],
            "retained": on["retained"],
            "memory_bound": on["memory_bound"],
            "alerts": on["alerts"],
        })
    result.tables["runs"] = rows
    result.tables["identical"] = identical
    result.notes = (
        "Telemetry is observer-driven on the front end only: enabling it "
        "must not change any simulated outcome. 'identical' compares "
        "forwarded counts, per-backend distributions, completions and "
        "total response time between the off and on runs."
    )
    return result
