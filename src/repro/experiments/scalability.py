"""Scalability of the monitoring fabric (the paper's §6 discussion).

How does one front-end keep up as the cluster grows? Five designs:

* **socket polling** — a request/reply pair per back-end per period;
  round time grows with N and with back-end load.
* **RDMA-read polling** — one doorbell + wire round trip per back-end;
  grows with N only through the front-end NIC's engine occupancy.
* **multicast push** (§6's hardware-multicast idea) — each back-end
  announces its own status; the front-end receives N messages per
  period. Scales the *sending* beautifully but uses channel semantics:
  back-ends run an announcer thread and the front-end takes N interrupt
  + softirq hits per period — "not completely one-sided".
* **federated RDMA** (repro.federation) — two-level one-sided fabric:
  ~sqrt(N) leaf monitors each batch-read their shard, the root
  RDMA-reads the packed shard snapshots. Both tiers are O(sqrt(N)).
* **gmetad over gmond** — the hierarchical Ganglia baseline: a gmond
  per back-end announces on the cluster channel (at 10x the poll
  period — Ganglia's coarse granularity), gmetad polls one gmond's
  XML dump over a socket; serialisation and response size are O(N).

The experiment measures the achieved poll-round time (or announcement
inter-arrival) and the CPU the design costs each side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.federation import deploy_federation
from repro.ganglia.gmetad import Gmetad
from repro.ganglia.gmond import Gmond
from repro.hw.cluster import build_cluster
from repro.monitoring import create_scheme
from repro.monitoring.loadinfo import LoadCalculator
from repro.sim.units import MILLISECOND, SECOND
from repro.transport.multicast import MulticastGroup
from repro.workloads.background import spawn_background_load

DEFAULT_SIZES: Sequence[int] = (2, 4, 8, 16, 32, 64)


def _measure_poll_round(sim, scheme, interval, duration) -> float:
    """Mean query_all round time for a polling scheme."""
    rounds: List[int] = []

    def poller(k):
        while True:
            t0 = k.now
            yield from scheme.query_all(k)
            rounds.append(k.now - t0)
            yield k.sleep(interval)

    sim.frontend.spawn("scal-poller", poller)
    sim.run(duration)
    if not rounds:
        raise RuntimeError("no poll rounds completed")
    return mean(rounds)


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    interval: int = 10 * MILLISECOND,
    duration: int = 3 * SECOND,
    background_threads: int = 8,
) -> ExperimentResult:
    """Round time and per-side CPU vs cluster size for the three designs."""
    result = ExperimentResult(
        name="scalability",
        params={"interval": interval, "background_threads": background_threads},
        xs=list(sizes),
    )
    series: Dict[str, List[float]] = {
        "socket_round_us": [],
        "rdma_round_us": [],
        "mcast_interarrival_us": [],
        "fed_leaf_round_us": [],
        "fed_root_round_us": [],
        "gmetad_round_us": [],
        "socket_backend_monitor_cpu_pct": [],
        "rdma_backend_monitor_cpu_pct": [],
        "mcast_backend_monitor_cpu_pct": [],
        "fed_backend_monitor_cpu_pct": [],
        "gmetad_backend_monitor_cpu_pct": [],
        "mcast_frontend_irq_cpu_pct": [],
    }

    for n in sizes:
        # -- socket polling ------------------------------------------------
        sim = build_cluster(SimConfig(num_backends=n))
        for be in sim.backends:
            spawn_background_load(sim, be, background_threads)
        scheme = create_scheme("socket-sync", sim, interval=interval)
        series["socket_round_us"].append(
            _measure_poll_round(sim, scheme, interval, duration) / 1000.0)
        mon_cpu = mean([
            sum(t.user_ns + t.sys_ns for t in be.sched.tasks
                if t.name.startswith("mon-"))
            for be in sim.backends
        ])
        series["socket_backend_monitor_cpu_pct"].append(100.0 * mon_cpu / duration)

        # -- RDMA polling ----------------------------------------------------
        sim = build_cluster(SimConfig(num_backends=n))
        for be in sim.backends:
            spawn_background_load(sim, be, background_threads)
        scheme = create_scheme("rdma-sync", sim, interval=interval)
        series["rdma_round_us"].append(
            _measure_poll_round(sim, scheme, interval, duration) / 1000.0)
        series["rdma_backend_monitor_cpu_pct"].append(0.0)  # no back-end agent

        # -- multicast push ----------------------------------------------------
        sim = build_cluster(SimConfig(num_backends=n))
        for be in sim.backends:
            spawn_background_load(sim, be, background_threads)
        channel = MulticastGroup("status")
        channel.subscribe(sim.frontend)
        arrivals: List[int] = []

        def announcer(be):
            calc = LoadCalculator(be.name)

            def body(k):
                while True:
                    stats = yield from be.procfs.read_stat(k)
                    info = calc.compute(stats)
                    yield from channel.publish(k, info, 64)
                    yield k.sleep(interval)

            return body

        def receiver(k):
            while True:
                yield from channel.recv(k)
                arrivals.append(k.now)

        for be in sim.backends:
            channel.subscribe(be)
            be.spawn(f"announce:{be.name}", announcer(be))
        sim.frontend.spawn("collect", receiver)
        sim.run(duration)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        series["mcast_interarrival_us"].append(mean(gaps) / 1000.0 if gaps else 0.0)
        ann_cpu = mean([
            sum(t.user_ns + t.sys_ns for t in be.sched.tasks
                if t.name.startswith("announce:"))
            for be in sim.backends
        ])
        series["mcast_backend_monitor_cpu_pct"].append(100.0 * ann_cpu / duration)
        fe = sim.frontend
        fe.sched.sync()
        irq_ns = sum(fe.sched.jiffies(i)["irq"] for i in range(fe.num_cpus))
        series["mcast_frontend_irq_cpu_pct"].append(
            100.0 * irq_ns / (duration * fe.num_cpus))

        # -- federated RDMA (two-level fabric) -----------------------------
        fcfg = SimConfig(num_backends=n)
        fcfg.federation.enabled = True
        fcfg.federation.leaf_interval = interval
        fcfg.federation.root_interval = interval
        sim = build_cluster(fcfg)
        for be in sim.backends:
            spawn_background_load(sim, be, background_threads)
        fed = deploy_federation(sim)
        sim.run(duration)
        leaf_rounds = [r for leaf in fed.leaves for r in leaf.rounds]
        series["fed_leaf_round_us"].append(
            mean(leaf_rounds) / 1000.0 if leaf_rounds else 0.0)
        series["fed_root_round_us"].append(
            mean(fed.root.rounds) / 1000.0 if fed.root.rounds else 0.0)
        # one-sided at both tiers: no back-end agent to bill
        series["fed_backend_monitor_cpu_pct"].append(0.0)

        # -- gmetad over gmond (hierarchical Ganglia) ----------------------
        sim = build_cluster(SimConfig(num_backends=n))
        for be in sim.backends:
            spawn_background_load(sim, be, background_threads)
        channel = MulticastGroup("ganglia")
        # gmonds announce at 10x the poll period: Ganglia's coarse
        # granularity, and it bounds the O(N^2) announce/listen traffic.
        gmonds = [Gmond(be, channel, interval=10 * interval)
                  for be in sim.backends]
        gmetad = Gmetad(sim.frontend, gmonds, interval=interval)
        sim.run(duration)
        series["gmetad_round_us"].append(
            mean(gmetad.round_times) / 1000.0 if gmetad.round_times else 0.0)
        gm_cpu = mean([
            sum(t.user_ns + t.sys_ns for t in be.sched.tasks
                if t.name.startswith("gmond"))
            for be in sim.backends
        ])
        series["gmetad_backend_monitor_cpu_pct"].append(100.0 * gm_cpu / duration)

    result.series = series
    result.notes = (
        "Polling round time (µs) and per-side monitoring CPU vs cluster "
        "size. Expected: socket rounds grow fastest and cost back-end "
        "CPU; RDMA rounds grow mildly with zero back-end cost; multicast "
        "push keeps per-announcement cost flat but pays back-end agent "
        "CPU and front-end interrupts (§6: 'not completely one-sided'); "
        "the federated two-level fabric keeps both tiers O(sqrt(N)) with "
        "zero back-end cost; gmetad-over-gmond rounds grow O(N) in "
        "serialisation and response size and pay gmond CPU on every node."
    )
    return result
