"""Figure 8 — RUBiS response time with Ganglia + fine-grained gmetric.

Paper: RUBiS runs (placed with e-RDMA-Sync, the best scheme from Table
1) while Ganglia monitors the cluster and **gmetric** performs
fine-grained collection through one of the four schemes at a threshold
granularity of 1–16 ms. With Socket-* collection at 1–4 ms the paper's
maximum response time for SearchItemsInCategories/Browse queries blows
up to ~250 ms; with RDMA-* collection it is unaffected.

Reproduction note: the *direction* reproduces robustly — socket
collection at 1 ms measurably inflates the response-time tail while
RDMA collection is flat at every granularity — but the magnitude is
smaller than the paper's (≈1.1–1.2× tail inflation rather than ~7×).
Our 2.4-flavoured scheduler recovers starved tasks at every epoch
recalculation, bounding the worst case; see EXPERIMENTS.md. We report
the stable tail percentiles (p95/p99 over thousands of requests) rather
than the single-sample maximum, which at these run lengths is noise.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.ganglia.gmetric import Gmetric
from repro.ganglia.gmond import Gmond
from repro.monitoring.registry import CORE_SCHEME_NAMES, create_scheme
from repro.sim.units import MILLISECOND, SECOND
from repro.transport.multicast import MulticastGroup
from repro.workloads.rubis import RubisWorkload

DEFAULT_GRANULARITIES_MS: Sequence[int] = (1, 4, 16, 64)

#: the two queries the paper plots
TRACKED_QUERIES = ("SearchItemsReg", "Browse")

DEFAULTS = dict(
    num_backends=2,
    workers=24,
    num_clients=32,
    think_time=4 * MILLISECOND,
    demand_cv=0.4,
)


def run_one(
    gmetric_scheme: str,
    granularity: int,
    duration: int = 10 * SECOND,
    gmetric_mode: str = "frontend",
    **overrides,
) -> Dict[str, float]:
    """Tail statistics (ms) of the tracked queries for one configuration."""
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"])
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    # RUBiS is balanced with e-RDMA-Sync (the Table 1 winner), as in the
    # paper; gmetric's *collection* scheme is the variable.
    app = deploy_rubis_cluster(
        cfg, scheme_name="e-rdma-sync", poll_interval=50 * MILLISECOND,
        workers=params["workers"],
    )
    channel = MulticastGroup("ganglia")
    gmonds = [Gmond(node, channel, interval=1 * SECOND) for node in app.sim.backends]
    collector = create_scheme(gmetric_scheme, app.sim, interval=granularity)
    gmetric = Gmetric(collector, channel, granularity=granularity, mode=gmetric_mode)
    workload = RubisWorkload(
        app.sim, app.dispatcher,
        num_clients=params["num_clients"],
        think_time=params["think_time"],
        demand_cv=params["demand_cv"],
        burst_length=10, idle_factor=8,
    )
    workload.start()
    app.run(duration)
    stats = app.dispatcher.stats
    out: Dict[str, float] = {}
    pooled = []
    for q in TRACKED_QUERIES:
        times = np.array(stats.response_times(q), dtype=np.float64) / 1e6
        pooled.append(times)
        out[f"{q}:avg"] = float(times.mean()) if times.size else 0.0
        out[f"{q}:max"] = float(times.max()) if times.size else 0.0
    all_times = np.concatenate(pooled) if pooled else np.array([])
    out["avg"] = float(all_times.mean()) if all_times.size else 0.0
    out["p95"] = float(np.percentile(all_times, 95)) if all_times.size else 0.0
    out["p99"] = float(np.percentile(all_times, 99)) if all_times.size else 0.0
    out["max"] = float(all_times.max()) if all_times.size else 0.0
    out["gmetric_published"] = float(gmetric.published)
    out["gmond_announcements"] = float(sum(g.announcements for g in gmonds))
    return out


def run(
    granularities_ms: Sequence[int] = DEFAULT_GRANULARITIES_MS,
    schemes: Sequence[str] = tuple(CORE_SCHEME_NAMES),
    duration: int = 10 * SECOND,
    **overrides,
) -> ExperimentResult:
    """Full Figure 8 sweep."""
    result = ExperimentResult(
        name="fig8-ganglia",
        params={"granularities_ms": list(granularities_ms),
                "duration_ns": duration, **DEFAULTS, **overrides},
        xs=list(granularities_ms),
    )
    for scheme_name in schemes:
        for key in ("avg", "p95", "p99"):
            result.series[f"{scheme_name}:{key}_ms"] = []
        for g_ms in granularities_ms:
            out = run_one(scheme_name, g_ms * MILLISECOND, duration=duration, **overrides)
            for key in ("avg", "p95", "p99"):
                result.series[f"{scheme_name}:{key}_ms"].append(out[key])
    result.notes = (
        "Pooled response-time statistics (ms) of SearchItemsReg+Browse "
        "vs gmetric collection granularity. Expected: socket-* tails "
        "inflate at 1–4 ms; rdma-* flat at every granularity (paper "
        "Fig 8, direction; magnitude is smaller — see module docstring)."
    )
    return result
