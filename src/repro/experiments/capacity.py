"""Capacity curves under open-loop load (extension).

The classic saturation figure the paper's closed-loop RUBiS runs can't
show: offered rate sweeps across the cluster's capacity and we measure
within-deadline goodput and the response-time tail. The knee — the last
offered rate the cluster absorbs — is the capacity; the claim under
test is that better monitoring moves the knee right (the same effect
Fig 9 measures closed-loop as "requests the cluster can admit").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.openloop import OpenLoopWorkload

DEFAULT_RATES: Sequence[int] = (800, 1600, 2400, 3200)

DEFAULTS = dict(
    num_backends=4,
    workers=24,
    deadline=150 * MILLISECOND,
    injectors=96,
)


def run_one(
    scheme_name: str,
    rate_rps: float,
    duration: int = 6 * SECOND,
    poll_interval: int = 50 * MILLISECOND,
    **overrides,
) -> Dict[str, float]:
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"])
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    app = deploy_rubis_cluster(cfg, scheme_name=scheme_name,
                               poll_interval=poll_interval,
                               workers=params["workers"])
    wl = OpenLoopWorkload(app.sim, app.dispatcher, rate_rps=rate_rps,
                          deadline=params["deadline"],
                          injectors=params["injectors"])
    wl.start()
    app.run(duration)
    stats = app.dispatcher.stats
    times = np.array(stats.response_times(), dtype=np.float64)
    return {
        "offered_rps": wl.issued / (duration / 1e9),
        "goodput_rps": stats.throughput(duration),
        "timeout_rate": stats.timeout_rate,
        "p95_ms": float(np.percentile(times, 95)) / 1e6 if times.size else 0.0,
    }


def run(
    rates: Sequence[int] = DEFAULT_RATES,
    schemes: Sequence[str] = ("socket-async", "rdma-sync"),
    duration: int = 6 * SECOND,
    **overrides,
) -> ExperimentResult:
    result = ExperimentResult(
        name="capacity",
        params={"rates": list(rates), "duration_ns": duration, **DEFAULTS, **overrides},
        xs=list(rates),
    )
    for scheme_name in schemes:
        goodput: List[float] = []
        timeout: List[float] = []
        p95: List[float] = []
        for rate in rates:
            out = run_one(scheme_name, rate, duration=duration, **overrides)
            goodput.append(out["goodput_rps"])
            timeout.append(out["timeout_rate"])
            p95.append(out["p95_ms"])
        result.series[f"{scheme_name}:goodput_rps"] = goodput
        result.series[f"{scheme_name}:timeout_rate"] = timeout
        result.series[f"{scheme_name}:p95_ms"] = p95
    result.notes = (
        "Within-deadline goodput vs offered open-loop rate. Below the "
        "knee goodput tracks the offered rate for every scheme; past it "
        "the unbounded queues collapse — the knee is the capacity the "
        "monitoring quality buys."
    )
    return result
