"""Figure 9 — fine-grained vs coarse-grained monitoring.

Paper: RUBiS + Zipf(0.5) run together while the load-balancer's polling
granularity sweeps 64 → 4096 ms. At 1024 ms and above all schemes are
comparable; as the granularity shrinks to 64 ms, RDMA-Sync's throughput
climbs (~25 % over the rest) while Socket-* *degrade* — their polls
perturb the loaded servers and arrive late anyway. This is the headline
"up to 25 % more admitted requests" claim.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.monitoring.registry import CORE_SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RubisWorkload
from repro.workloads.zipf import ZipfWorkload

DEFAULT_GRANULARITIES_MS: Sequence[int] = (64, 256, 1024, 4096)

DEFAULTS = dict(
    num_backends=4,
    workers=32,
    rubis_clients=48,
    zipf_clients=48,
    think_time=3 * MILLISECOND,
    demand_cv=0.4,
    alpha=0.5,
)


def run_one(
    scheme_name: str,
    granularity: int,
    duration: int = 10 * SECOND,
    warmup: int = 5 * SECOND,
    with_admission: bool = False,
    **overrides,
) -> float:
    """Steady-state completed throughput for one (scheme, granularity).

    The warm-up phase runs the workload long enough for even the
    coarsest poller to have refreshed its cache *under load* — otherwise
    a 4096 ms poller would coast on an idle-time snapshot (uniform
    weights), which flatters coarse monitoring.
    """
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"])
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    app = deploy_rubis_cluster(
        cfg, scheme_name=scheme_name, poll_interval=granularity,
        workers=params["workers"], with_admission=with_admission,
    )
    rubis = RubisWorkload(
        app.sim, app.dispatcher,
        num_clients=params["rubis_clients"],
        think_time=params["think_time"],
        demand_cv=params["demand_cv"],
        burst_length=10, idle_factor=8,
    )
    zipf = ZipfWorkload(
        app.sim, app.dispatcher, alpha=params["alpha"],
        num_clients=params["zipf_clients"],
        think_time=params["think_time"] * 2,
    )
    rubis.start()
    zipf.start()
    warmup = max(warmup, granularity + SECOND)
    app.run(warmup)
    from repro.server.request import RequestStats

    app.dispatcher.stats = RequestStats()
    app.run(warmup + duration)
    return app.dispatcher.stats.throughput(duration)


def run(
    granularities_ms: Sequence[int] = DEFAULT_GRANULARITIES_MS,
    schemes: Sequence[str] = tuple(CORE_SCHEME_NAMES),
    duration: int = 10 * SECOND,
    **overrides,
) -> ExperimentResult:
    """Full Figure 9 sweep."""
    result = ExperimentResult(
        name="fig9-finegrained",
        params={"granularities_ms": list(granularities_ms),
                "duration_ns": duration, **DEFAULTS, **overrides},
        xs=list(granularities_ms),
    )
    for scheme_name in schemes:
        series = []
        for g_ms in granularities_ms:
            series.append(run_one(scheme_name, g_ms * MILLISECOND,
                                  duration=duration, **overrides))
        result.series[f"{scheme_name}:rps"] = series
    result.notes = (
        "Throughput (rps) vs monitoring granularity. Expected: all "
        "schemes comparable at 1024+ ms; rdma-sync pulls ahead (~25 %) "
        "and socket-* degrade at 64 ms (paper Fig 9)."
    )
    return result
