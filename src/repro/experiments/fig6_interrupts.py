"""Figure 6 — detailed system information: pending interrupts per CPU.

Paper: the four schemes report the ``irq_stat`` structure under bursty
network traffic. The three schemes that sample from user space (via the
kernel module) "report less and infrequent interrupts" — by the time the
user process runs, the queues have drained. RDMA-Sync's NIC-DMA sampling
catches the real backlog, "more interrupts … and the number of
interrupts reported on the second CPU … is consistently higher" (NIC IRQ
affinity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.hw.cluster import build_cluster
from repro.monitoring.registry import CORE_SCHEME_NAMES, create_scheme
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.background import spawn_background_load


def run(
    schemes: Sequence[str] = tuple(CORE_SCHEME_NAMES),
    poll_interval: int = 5 * MILLISECOND,
    duration: int = 5 * SECOND,
    comm_threads: int = 24,
) -> ExperimentResult:
    """Sample pending-interrupt counts with every scheme concurrently."""
    cfg = SimConfig(num_backends=2)
    sim = build_cluster(cfg)
    target = sim.backends[0]
    # Communication-heavy background with compute hogs mixed in: bursts
    # of NIC interrupts pile softirq work past the inline budget, and
    # the starved (nice +19) ksoftirqd leaves a persistent bottom-half
    # backlog that only an asynchronous DMA sampler reliably observes.
    spawn_background_load(sim, target, comm_threads, comm_fraction=0.6,
                          message_interval=3 * MILLISECOND, burst=16)

    deployed = {
        name: create_scheme(name, sim, interval=poll_interval, with_irq_detail=True)
        for name in schemes
    }
    samples: Dict[str, List[List[float]]] = {name: [] for name in schemes}

    def make_poller(name: str):
        scheme = deployed[name]

        def poller(k):
            while True:
                info = yield from scheme.query(k, 0)
                if info.irq_pending is not None:
                    samples[name].append(list(info.irq_pending))
                yield k.sleep(poll_interval)

        return poller

    for name in schemes:
        sim.frontend.spawn(f"fig6:{name}", make_poller(name))

    sim.run(duration)

    result = ExperimentResult(
        name="fig6-interrupts",
        params={"poll_interval": poll_interval, "comm_threads": comm_threads},
        xs=list(schemes),
    )
    num_cpus = cfg.cpu.num_cpus
    for cpu in range(num_cpus):
        result.series[f"mean_pending_cpu{cpu}"] = [
            (sum(s[cpu] for s in samples[name]) / len(samples[name])) if samples[name] else 0.0
            for name in schemes
        ]
        result.series[f"nonzero_samples_cpu{cpu}"] = [
            float(sum(1 for s in samples[name] if s[cpu] > 0)) for name in schemes
        ]
    # "less and infrequent": achieved sampling rate also differs.
    result.series["samples_per_second"] = [
        len(samples[name]) / (duration / 1e9) for name in schemes
    ]
    result.tables["raw_samples"] = samples
    result.notes = (
        "Pending interrupts sampled per scheme. Expected: rdma-sync "
        "reports far more pending interrupts, with CPU1 (NIC affinity) "
        "consistently above CPU0; user-space-sampled schemes report ~0."
    )
    return result
