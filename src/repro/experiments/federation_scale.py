"""Flat vs federated monitoring at production scale (N up to 512).

The paper's §6 leaves scalability as a discussion; this experiment
measures it. The flat front-end's RDMA-read round serialises N WQE +
CQE services on one NIC plus N doorbells, so its round time grows
linearly with N and eventually overruns the poll period. The two-level
fabric splits the fan-out: each of ~sqrt(N) leaves covers ~sqrt(N)
members with a one-doorbell batched round, and the root RDMA-reads
sqrt(N) snapshot regions — both tiers stay an order of magnitude under
the period at N=256.

Series (per cluster size):

* ``flat_round_us`` — mean flat ``query_all`` round time;
* ``fed_leaf_round_us`` — mean leaf shard round (poll+merge+publish);
* ``fed_root_round_us`` — mean root aggregation round;
* ``fed_shards`` — shard count the auto-sizing chose;
* ``fed_staleness_p95_ms`` — p95 of per-node staleness in the root's
  merged view at the end of the run (both hops included: collection →
  leaf publish → root read);
* ``flat_overrun`` / ``fed_overrun`` — fraction of rounds exceeding
  the poll period.

No background load is attached: one-sided RDMA round time is
load-independent (the paper's Fig 3), and bare clusters keep the
large-N points tractable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import mean
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.federation import deploy_federation
from repro.hw.cluster import build_cluster
from repro.monitoring import create_scheme
from repro.sim.units import MILLISECOND

DEFAULT_SIZES: Sequence[int] = (8, 32, 128, 256, 512)
DEFAULT_INTERVAL: int = 1 * MILLISECOND


def _flat_rounds(n: int, interval: int, duration: int) -> List[int]:
    """Flat front-end rdma-sync poll-round times on an N-node cluster."""
    sim = build_cluster(SimConfig(num_backends=n))
    scheme = create_scheme("rdma-sync", sim, interval=interval)
    rounds: List[int] = []

    def poller(k):
        while True:
            t0 = k.now
            yield from scheme.query_all(k)
            rounds.append(k.now - t0)
            yield k.sleep(interval)

    sim.frontend.spawn("flat-poller", poller)
    sim.run(duration)
    if not rounds:
        raise RuntimeError("no flat poll rounds completed")
    return rounds


def _federated(n: int, interval: int, duration: int):
    """Deploy the two-level fabric and run it; returns the Federation."""
    cfg = SimConfig(num_backends=n)
    cfg.federation.enabled = True
    cfg.federation.leaf_interval = interval
    cfg.federation.root_interval = interval
    sim = build_cluster(cfg)
    fed = deploy_federation(sim)
    sim.run(duration)
    if not fed.root.rounds or not fed.leaves[0].rounds:
        raise RuntimeError("no federated rounds completed")
    return fed


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    interval: int = DEFAULT_INTERVAL,
    duration: int = 250 * MILLISECOND,
) -> ExperimentResult:
    """Round times, overrun fractions and staleness for both designs."""
    result = ExperimentResult(
        name="federation_scale",
        params={"interval": interval, "duration": duration},
        xs=list(sizes),
    )
    series: Dict[str, List[float]] = {
        "flat_round_us": [],
        "fed_leaf_round_us": [],
        "fed_root_round_us": [],
        "fed_shards": [],
        "fed_staleness_p95_ms": [],
        "flat_overrun": [],
        "fed_overrun": [],
    }
    for n in sizes:
        flat = _flat_rounds(n, interval, duration)
        series["flat_round_us"].append(mean(flat) / 1000.0)
        series["flat_overrun"].append(
            sum(1 for r in flat if r > interval) / len(flat))

        fed = _federated(n, interval, duration)
        leaf_rounds = [r for leaf in fed.leaves for r in leaf.rounds]
        series["fed_leaf_round_us"].append(mean(leaf_rounds) / 1000.0)
        series["fed_root_round_us"].append(mean(fed.root.rounds) / 1000.0)
        series["fed_shards"].append(float(fed.topology.num_shards))
        # End-to-end view age: staleness of the root's merged LoadInfo
        # carries both hops (collection -> leaf publish -> root read).
        ages = sorted(info.staleness for info in fed.root.latest.values())
        series["fed_staleness_p95_ms"].append(
            ages[int(0.95 * (len(ages) - 1))] / 1e6 if ages else 0.0)
        worst = [r for leaf in fed.leaves for r in leaf.rounds] + fed.root.rounds
        series["fed_overrun"].append(
            sum(1 for r in worst if r > interval) / len(worst))
    result.series = series
    result.notes = (
        "Flat front-end poll rounds grow linearly with N (NIC engine "
        "serialisation + per-backend doorbells) and overrun the "
        f"{interval / 1e6:.1f} ms period; the 2-level federated fabric "
        "keeps both leaf and root rounds flat at O(sqrt(N)) and "
        "sustains the period with headroom at N=256+."
    )
    return result
