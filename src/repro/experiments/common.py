"""Shared experiment plumbing.

``deploy_rubis_cluster`` assembles the full application stack the
application-level experiments (Table 1, Figs 7–9) share: a booted
cluster, back-end web servers, a monitoring scheme with its front-end
poller, the WebSphere-style balancer (extended scoring iff the scheme is
e-RDMA-Sync), optional admission control, and the dispatcher. Workloads
are attached by the individual experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SimConfig
from repro.faults import FaultPlane, FaultSchedule
from repro.federation import Federation
from repro.hw.cluster import ClusterSim
from repro.monitoring import FrontendMonitor, MonitoringScheme
from repro.monitoring.heartbeat import HeartbeatMonitor
from repro.server.admission import AdmissionController
from repro.server.dispatcher import Dispatcher
from repro.server.loadbalancer import LeastLoadedBalancer
from repro.server.webserver import BackendServer
from repro.telemetry.pipeline import TelemetryPipeline


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment run."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    #: x-axis values (granularities, thread counts, alphas, ...)
    xs: List[object] = field(default_factory=list)
    #: series name -> y values aligned with ``xs``
    series: Dict[str, List[float]] = field(default_factory=dict)
    #: free-form per-run tables (Table 1 rows etc.)
    tables: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def series_of(self, name: str) -> List[float]:
        return self.series[name]


@dataclass
class RubisCluster:
    """Handles for a deployed application cluster."""

    sim: ClusterSim
    servers: List[BackendServer]
    scheme: MonitoringScheme
    monitor: FrontendMonitor
    balancer: LeastLoadedBalancer
    dispatcher: Dispatcher
    admission: Optional[AdmissionController] = None
    telemetry: Optional[TelemetryPipeline] = None
    faults: Optional[FaultPlane] = None
    heartbeat: Optional[HeartbeatMonitor] = None
    federation: Optional[Federation] = None
    #: :class:`~repro.server.reconfig.ElasticScaler` when autoscaling is on
    scaler: Optional[object] = None
    #: workloads queued via ``ClusterBuilder.workload``, in chain order
    workloads: List[object] = field(default_factory=list)
    #: :class:`~repro.obs.surface.Observability` when the surface is on
    obs: Optional[object] = None

    def run(self, until: int) -> None:
        self.sim.run(until)


def deploy_rubis_cluster(
    cfg: Optional[SimConfig] = None,
    scheme_name: str = "rdma-sync",
    poll_interval: Optional[int] = None,
    with_admission: bool = False,
    admission_max_score: float = 0.85,
    workers: Optional[int] = None,
    with_telemetry: bool = False,
    telemetry_rules=None,
    alert_shedding: bool = False,
    with_tracing: bool = False,
    trace_sample: float = 1.0,
    fault_schedule=None,
    with_heartbeat: bool = False,
    heartbeat_interval: int = 50_000_000,
    heartbeat_timeout: int = 10_000_000,
    heartbeat_hung_after: int = 2,
) -> RubisCluster:
    """Build the standard application stack on a fresh cluster.

    ``with_telemetry`` attaches a bounded
    :class:`~repro.telemetry.pipeline.TelemetryPipeline` to the monitor
    (front-end only — no simulated-time cost). ``alert_shedding``
    additionally lets the dispatcher route around critically-alerted
    back-ends (opt-in policy; implies telemetry); combine it with
    ``with_admission=True`` to also have the admission controller
    reject while most back-ends are shedding.

    ``with_tracing`` enables the causal span plane (see repro.tracing) at
    head-sampling rate ``trace_sample`` — like telemetry, pure observer
    bookkeeping with zero simulated-time cost.

    ``fault_schedule`` (a :class:`~repro.faults.FaultSchedule`, schedule
    text for :func:`~repro.faults.parse_schedule`, or None) installs the
    deterministic fault plane; an empty/None schedule leaves runs
    bit-identical. ``with_heartbeat`` additionally runs the RDMA
    :class:`~repro.monitoring.heartbeat.HeartbeatMonitor` and gives the
    dispatcher health-aware failover (quarantine + re-admit on
    recovery).

    When ``cfg.federation.enabled`` the two-level monitoring fabric is
    deployed (see :mod:`repro.federation`): the flat front-end poller is
    built but left idle, the dispatcher consults the federated root's
    merged view, and routing goes through the shard-then-node
    :class:`~repro.server.loadbalancer.TwoLevelBalancer`.

    .. deprecated::
        This helper is a compatibility shim over
        :class:`repro.api.ClusterBuilder`, which new code should use
        directly. The two produce fingerprint-identical clusters
        (property-tested).
    """
    from repro.api import ClusterBuilder  # deferred: api imports this module

    builder = ClusterBuilder(cfg)
    builder.scheme(scheme_name, interval=poll_interval)
    if workers is not None:
        builder.workers(workers)
    if with_admission:
        builder.with_admission(max_score=admission_max_score)
    if with_telemetry or alert_shedding:
        builder.with_telemetry(rules=telemetry_rules)
    if alert_shedding:
        builder.with_alert_shedding()
    if with_tracing:
        builder.with_tracing(sample=trace_sample)
    if fault_schedule is not None:
        if not isinstance(fault_schedule, (str, FaultSchedule)):
            raise TypeError("fault_schedule must be FaultSchedule, str or None")
        builder.with_faults(fault_schedule)
    if with_heartbeat:
        builder.with_heartbeat(interval=heartbeat_interval,
                               timeout=heartbeat_timeout,
                               hung_after=heartbeat_hung_after)
    return builder.build()
