"""Figure 3 — monitoring latency vs background load.

Paper: "the monitoring latency of both Socket-Async and Socket-Sync
increase linearly with the increase in the background load. On the other
hand, the monitoring latency of RDMA-Async and RDMA-Sync … stays the
same without getting affected."

One back-end is loaded with a mix of background compute and
communication threads (§5.1.1); the front-end polls it with each scheme
and records per-query latency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.stats import mean
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.hw.cluster import build_cluster
from repro.monitoring.registry import CORE_SCHEME_NAMES, create_scheme
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.background import spawn_background_load

#: background thread counts swept on the x axis
DEFAULT_THREADS: Sequence[int] = (0, 8, 16, 32, 48, 64)


def measure_latency(
    scheme_name: str,
    background_threads: int,
    poll_interval: int = 10 * MILLISECOND,
    duration: int = 3 * SECOND,
    warmup: int = 500 * MILLISECOND,
    cfg: Optional[SimConfig] = None,
) -> float:
    """Mean monitoring latency (ns) for one scheme at one load point."""
    cfg = cfg if cfg is not None else SimConfig(num_backends=2)
    sim = build_cluster(cfg)
    target = sim.backends[0]
    spawn_background_load(sim, target, background_threads)
    scheme = create_scheme(scheme_name, sim, interval=poll_interval)
    # Let the background load and (for async schemes) the first buffer
    # update settle before measuring.
    sim.run(warmup)
    done = []

    def poller(k):
        while True:
            yield from scheme.query(k, 0)
            yield k.sleep(poll_interval)

    sim.frontend.spawn("fig3-poller", poller)
    sim.run(warmup + duration)
    latencies = [r.latency for r in scheme.records]
    if not latencies:
        raise RuntimeError(
            f"no monitoring queries completed for {scheme_name} "
            f"at {background_threads} background threads"
        )
    return mean(latencies)


def run(
    thread_counts: Sequence[int] = DEFAULT_THREADS,
    schemes: Sequence[str] = tuple(CORE_SCHEME_NAMES),
    duration: int = 3 * SECOND,
) -> ExperimentResult:
    """Full Figure 3 sweep."""
    result = ExperimentResult(
        name="fig3-latency",
        params={"thread_counts": list(thread_counts), "duration_ns": duration},
        xs=list(thread_counts),
    )
    for scheme_name in schemes:
        series: List[float] = []
        for threads in thread_counts:
            series.append(
                measure_latency(scheme_name, threads, duration=duration) / 1000.0
            )  # µs
        result.series[scheme_name] = series
    result.notes = (
        "Latency in µs. Expected shape: socket-* grow with background "
        "threads; rdma-* stay flat (paper Fig 3)."
    )
    return result
