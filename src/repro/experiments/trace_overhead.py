"""Tracing overhead: the span plane must be free in simulated time.

Mirror of :mod:`repro.experiments.telemetry_overhead` for the causal
span tracer (``repro.tracing``). Every instrumentation hook is pure
observer bookkeeping — no events scheduled, no task CPU charged — so
enabling tracing must leave every simulated outcome *bit-identical*:
same seeds → same load-balancing decisions, same completions, same
per-query latencies. This experiment deploys the RUBiS stack three ways
per seed (tracing off / on / on-at-10%-sampling), runs the same burst
workload, and compares:

* **simulated behaviour** — forwarded counts, per-back-end request
  distribution, completed-request count and total response time must
  match exactly across all three;
* **memory bound** — the span store never retains more than
  ``max_spans`` spans; the rest are counted in ``dropped``;
* **wall-clock cost** — the real-time price of recording every span,
  and how head sampling reduces it;
* **export determinism** — two traced runs of the same seed serialise
  byte-identical Chrome-trace JSON.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.sim.units import MILLISECOND, SECOND
from repro.tracing import chrome_trace_json
from repro.workloads.rubis import RubisWorkload

DEFAULTS = dict(
    num_backends=4,
    workers=32,
    clients=48,
    think_time=3 * MILLISECOND,
    demand_cv=0.4,
)


def run_one(
    seed: int,
    with_tracing: bool,
    trace_sample: float = 1.0,
    max_spans: Optional[int] = None,
    scheme_name: str = "rdma-sync",
    duration: int = 4 * SECOND,
    poll_interval: int = 50 * MILLISECOND,
    export: bool = False,
    **overrides,
) -> Dict[str, object]:
    """One RUBiS burst; returns the decision fingerprint + tracing costs."""
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"], master_seed=seed)
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    if max_spans is not None:
        cfg.tracing.max_spans = max_spans
    app = deploy_rubis_cluster(
        cfg, scheme_name=scheme_name, poll_interval=poll_interval,
        workers=params["workers"], with_tracing=with_tracing,
        trace_sample=trace_sample,
    )
    workload = RubisWorkload(
        app.sim, app.dispatcher, num_clients=params["clients"],
        think_time=params["think_time"], demand_cv=params["demand_cv"],
        burst_length=10, idle_factor=8,
    )
    workload.start()
    wall_start = time.perf_counter()
    app.run(duration)
    wall = time.perf_counter() - wall_start

    stats = app.dispatcher.stats
    fingerprint = {
        "forwarded": app.dispatcher.forwarded,
        "per_backend": dict(sorted(stats.per_backend_counts().items())),
        "completed": stats.count(),
        "total_response_ns": sum(stats.response_times()),
        "polls": app.monitor.polls,
    }
    out: Dict[str, object] = {"fingerprint": fingerprint, "wall_s": wall}
    spans = app.sim.spans
    if spans is not None and spans.enabled:
        out.update(
            spans=len(spans),
            dropped=spans.dropped,
            unsampled=spans.unsampled,
            traces=spans.traces_started,
            open_spans=spans.open_spans,
            max_spans=spans.max_spans,
        )
        if export:
            out["export_json"] = chrome_trace_json(spans)
    return out


def run(
    seeds: Sequence[int] = (1, 2, 3),
    scheme_name: str = "rdma-sync",
    duration: int = 4 * SECOND,
    sample_rate: float = 0.1,
    **overrides,
) -> ExperimentResult:
    """Off / on / sampled comparison across seeds."""
    result = ExperimentResult(
        name="trace_overhead",
        params={"scheme": scheme_name, "duration": duration,
                "seeds": list(seeds), "sample_rate": sample_rate},
        xs=list(seeds),
        series={"wall_off_s": [], "wall_on_s": [], "wall_sampled_s": [],
                "overhead_pct": []},
    )
    identical = True
    rows = []
    for seed in seeds:
        off = run_one(seed, with_tracing=False, scheme_name=scheme_name,
                      duration=duration, **overrides)
        on = run_one(seed, with_tracing=True, scheme_name=scheme_name,
                     duration=duration, export=True, **overrides)
        on2 = run_one(seed, with_tracing=True, scheme_name=scheme_name,
                      duration=duration, export=True, **overrides)
        sampled = run_one(seed, with_tracing=True, trace_sample=sample_rate,
                          scheme_name=scheme_name, duration=duration,
                          **overrides)
        same = (off["fingerprint"] == on["fingerprint"]
                == sampled["fingerprint"])
        deterministic = on["export_json"] == on2["export_json"]
        identical = identical and same and deterministic
        overhead = (on["wall_s"] - off["wall_s"]) / off["wall_s"] * 100.0
        result.series["wall_off_s"].append(off["wall_s"])
        result.series["wall_on_s"].append(on["wall_s"])
        result.series["wall_sampled_s"].append(sampled["wall_s"])
        result.series["overhead_pct"].append(overhead)
        rows.append({
            "seed": seed,
            "identical": same,
            "deterministic_export": deterministic,
            "forwarded": off["fingerprint"]["forwarded"],
            "per_backend_off": off["fingerprint"]["per_backend"],
            "per_backend_on": on["fingerprint"]["per_backend"],
            "spans": on["spans"],
            "dropped": on["dropped"],
            "max_spans": on["max_spans"],
            "traces": on["traces"],
            "spans_sampled": sampled["spans"],
            "unsampled": sampled["unsampled"],
        })
    result.tables["runs"] = rows
    result.tables["identical"] = identical
    result.notes = (
        "Tracing is observer bookkeeping only: enabling it (at any "
        "sampling rate) must not change any simulated outcome, and two "
        "traced runs of a seed must export byte-identical Chrome-trace "
        "JSON. 'identical' compares forwarded counts, per-backend "
        "distributions, completions and total response time across "
        "off/on/sampled runs."
    )
    return result
