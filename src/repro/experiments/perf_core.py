"""Wall-clock performance of the simulator itself (not the paper).

Every other experiment measures *simulated* time; this one measures
how fast the simulator chews through it, so hot-path regressions are
caught by numbers rather than by "the sweep feels slow". Three probes:

* ``event_loop_microbench`` — raw engine throughput in events/sec on a
  chained-timeout loop (the purest event-queue workload: every event is
  a push + pop + process resume, no domain logic);
* ``cluster_wallclock`` — wall seconds and events/sec to simulate a
  fixed slice of a booted N-node cluster with an active monitoring
  fabric (N=512 federated is the headline point);
* ``scalability_wallclock`` — the same probe swept over cluster sizes,
  to show wall cost growing with N and catch super-linear blowups.

:mod:`benchmarks.test_perf_core` runs these against the frozen pre-
overhaul core in ``benchmarks/_legacy_core.py`` and archives the
comparison as ``results/BENCH_core.json``.

Wall-clock numbers are machine-dependent; the archived JSON records
ratios (new vs legacy) and the per-probe throughputs, not absolute
guarantees.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.federation import deploy_federation
from repro.hw.cluster import build_cluster
from repro.sim import engine as _engine
from repro.sim.units import MILLISECOND

DEFAULT_EVENTS: int = 200_000
DEFAULT_SIZES: Sequence[int] = (64, 128, 256, 512)
DEFAULT_DURATION: int = 50 * MILLISECOND


def event_loop_microbench(
    n_events: int = DEFAULT_EVENTS,
    repeats: int = 3,
    engine_module=None,
    core: Optional[str] = None,
) -> Dict[str, float]:
    """Events/sec for a chained-timeout loop; best of ``repeats`` runs.

    ``engine_module`` must expose an ``Environment`` with ``timeout``,
    ``process`` and ``run_until_quiet`` — the current core by default,
    or ``benchmarks._legacy_core`` for the frozen pre-overhaul baseline.
    ``core`` selects the current engine's scheduler core ("wheel",
    "heap"); ignored when ``engine_module`` is given.
    """
    mod = engine_module if engine_module is not None else _engine
    best = float("inf")
    processed = 0
    for _ in range(repeats):
        if engine_module is None and core is not None:
            env = mod.Environment(core=core)
        else:
            env = mod.Environment()

        def body():
            for _ in range(n_events):
                yield env.timeout(10)

        env.process(body())
        t0 = time.perf_counter()
        env.run_until_quiet(2**62)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        processed = env.processed_events
    return {
        "n_events": float(n_events),
        "processed_events": float(processed),
        "wall_s": best,
        "events_per_sec": processed / best,
    }


def cluster_wallclock(
    n: int = 512,
    duration: int = DEFAULT_DURATION,
    interval: Optional[int] = None,
    federated: bool = True,
    levels: int = 2,
    repeats: int = 1,
) -> Dict[str, float]:
    """Wall seconds to simulate ``duration`` ns of an N-node cluster.

    The cluster runs bare (no client load) with the monitoring fabric
    active: federated at ``federated=True`` (the regime that makes
    N=512 tractable; ``levels=3`` adds the region tier for N=4096),
    otherwise a flat rdma-sync poller.

    ``repeats`` keeps the fastest run (fresh cluster each time), the
    same best-of convention the microbench uses: a wall benchmark's
    noise is one-sided — OS jitter only ever adds time — so the min is
    the honest estimate of what the core sustains.
    """
    interval = interval if interval is not None else 1 * MILLISECOND
    best: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        cfg = SimConfig(num_backends=n)
        if federated:
            cfg.federation.enabled = True
            cfg.federation.levels = levels
            cfg.federation.leaf_interval = interval
            cfg.federation.root_interval = interval
        t0 = time.perf_counter()
        sim = build_cluster(cfg)
        if federated:
            deploy_federation(sim)
        else:
            from repro.monitoring import create_scheme

            scheme = create_scheme("rdma-sync", sim, interval=interval)

            def poller(k):
                while True:
                    yield from scheme.query_all(k)
                    yield k.sleep(interval)

            sim.frontend.spawn("flat-poller", poller)
        build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        sim.run(duration)
        run_s = time.perf_counter() - t0
        if not best or run_s < best["run_wall_s"]:
            best = {
                "backends": float(n),
                "sim_duration_ms": duration / 1e6,
                "build_wall_s": build_s,
                "run_wall_s": run_s,
                "processed_events": float(sim.env.processed_events),
                "events_per_sec": sim.env.processed_events / run_s,
            }
    return best


def federation_tiers(
    n: int = 4096,
    duration: int = 20 * MILLISECOND,
    interval: Optional[int] = None,
    levels: int = 3,
) -> Dict[str, float]:
    """Per-tier round cost of a federated run (simulated ns, not wall).

    The scaling claim to hold: every tier's poll round — leaf over its
    members, region over its leaves, root over the regions — completes
    inside the polling period, so the fabric sustains the configured
    rate at ``n`` back-ends. Reports the worst (max) round per tier
    and the period for the feasibility check
    ``worst_tier_round_ns <= period_ns``.
    """
    interval = interval if interval is not None else 1 * MILLISECOND
    cfg = SimConfig(num_backends=n)
    cfg.federation.enabled = True
    cfg.federation.levels = levels
    cfg.federation.leaf_interval = interval
    cfg.federation.root_interval = interval
    t0 = time.perf_counter()
    sim = build_cluster(cfg)
    fedn = deploy_federation(sim)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sim.run(duration)
    run_s = time.perf_counter() - t0
    leaf_worst = max(max(leaf.rounds) for leaf in fedn.leaves)
    region_worst = (max(max(r.rounds) for r in fedn.regions)
                    if fedn.regions else 0)
    root_worst = max(fedn.root.rounds)
    return {
        "backends": float(n),
        "levels": float(levels),
        "num_shards": float(fedn.topology.num_shards),
        "num_regions": float(len(fedn.regions)),
        "period_ns": float(interval),
        "sim_duration_ms": duration / 1e6,
        "build_wall_s": build_s,
        "run_wall_s": run_s,
        "processed_events": float(sim.env.processed_events),
        "events_per_sec": sim.env.processed_events / run_s,
        "leaf_worst_round_ns": float(leaf_worst),
        "region_worst_round_ns": float(region_worst),
        "root_worst_round_ns": float(root_worst),
        "worst_tier_round_ns": float(max(leaf_worst, region_worst, root_worst)),
        "root_coverage": float(len(fedn.root.latest)),
        "root_polls": float(fedn.root.polls),
    }


def scalability_wallclock(
    sizes: Sequence[int] = DEFAULT_SIZES,
    duration: int = DEFAULT_DURATION,
) -> List[Dict[str, float]]:
    """``cluster_wallclock`` swept over cluster sizes (federated)."""
    return [cluster_wallclock(n=n, duration=duration) for n in sizes]


def run(
    n_events: int = DEFAULT_EVENTS,
    sizes: Sequence[int] = DEFAULT_SIZES,
    duration: int = DEFAULT_DURATION,
) -> ExperimentResult:
    """All three probes on the current core, as an ExperimentResult."""
    micro = event_loop_microbench(n_events=n_events)
    sweep = scalability_wallclock(sizes=sizes, duration=duration)
    result = ExperimentResult(
        name="perf_core",
        params={"n_events": n_events, "duration": duration},
        xs=list(sizes),
    )
    result.series = {
        "run_wall_s": [p["run_wall_s"] for p in sweep],
        "events_per_sec": [p["events_per_sec"] for p in sweep],
        "processed_events": [p["processed_events"] for p in sweep],
    }
    result.tables = {"microbench": micro, "sweep": sweep}
    result.notes = (
        f"engine microbench: {micro['events_per_sec'] / 1e3:.0f}k events/s "
        f"({n_events} chained timeouts, best of 3); federated cluster "
        f"wall-clock at {duration / 1e6:.0f} ms simulated per point."
    )
    return result
