"""Flash-crowd replay vs monitoring-driven elastic scaling.

The paper's core claim is that fine-grained monitoring is *actionable*:
a balancer (or here, an autoscaler) consuming millisecond-fresh load
can react to load shifts that second-scale aggregation only sees after
the damage is done. This experiment makes that concrete with the most
hostile realistic load shift — a flash crowd — and the most consequential
reaction — adding capacity.

Every cell replays the **identical** synthetic flash-crowd trace
(:func:`~repro.workloads.synth.synthesize_flash_crowd`, fixed seed)
against a cluster that starts with half its back-ends parked. The
matrix crosses:

* **view** — what drives the :class:`~repro.server.reconfig.ElasticScaler`:
  ``rdma-sync`` (the deployed fine-grained scheme's front-end cache,
  millisecond-fresh) or ``ganglia`` (a
  :class:`~repro.ganglia.view.GangliaLoadView` over a real gmond/gmetad
  deployment — second-scale collection and aggregation);
* **scaler** — ``on`` (may scale) or ``off`` (pool pinned at the
  initial size: the no-elasticity baseline under the same routing).

Both arms run the same monitoring scheme for *balancing*; only the
scaler's view differs, so the measured gap is purely monitoring
freshness. Measured per cell: **reaction lag** (first scale-up after
spike onset), **overload window** (time the active pool spent above the
high-water mark), and p95 response time over the spike window.

Expected shape (asserted in ``benchmarks/test_replay.py``): the
fine-grained arm reacts in fewer periods than the Ganglia arm, and
scaling on beats scaling off on spike-window tail latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.api import ClusterBuilder
from repro.config import SimConfig
from repro.ganglia import Gmetad, Gmond, GangliaLoadView
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.synth import synthesize_flash_crowd

VIEWS: Sequence[str] = ("rdma-sync", "ganglia")

DEFAULT_DURATION: int = 3 * SECOND
DEFAULT_BASE_RPS: float = 300.0
DEFAULT_SPIKE_FACTOR: float = 8.0
DEFAULT_NUM_BACKENDS: int = 4
DEFAULT_INITIAL_ACTIVE: int = 2

#: scaler thresholds — reachable by both the fine view (tick-EMA runq +
#: jiffy cpu) and the coarse one (instantaneous cpu_busy, dead loadavg)
HIGH_WATER: float = 0.45
LOW_WATER: float = 0.08
SCALER_INTERVAL: int = 50 * MILLISECOND
#: gmond collection / gmetad aggregation cadence (scaled-down 1s/5s)
GMOND_INTERVAL: int = 200 * MILLISECOND
GMETAD_INTERVAL: int = 500 * MILLISECOND


def _scaler_knobs(elastic: bool, num_backends: int, initial_active: int) -> dict:
    """Scaler parameters for one arm; ``elastic=False`` pins the pool."""
    knobs = dict(
        interval=SCALER_INTERVAL,
        high_water=HIGH_WATER,
        low_water=LOW_WATER,
        initial_active=initial_active,
        up_after=2,
        down_after=20,
        cooldown=100 * MILLISECOND,
    )
    if elastic:
        knobs.update(min_active=1, max_active=num_backends)
    else:
        # Same routing filter, same sampling — but the pool never moves,
        # so this arm is the "no elasticity" baseline, not "no scaler".
        knobs.update(min_active=initial_active, max_active=initial_active)
    return knobs


def run_cell(
    view: str,
    elastic: bool,
    duration: int = DEFAULT_DURATION,
    base_rps: float = DEFAULT_BASE_RPS,
    spike_factor: float = DEFAULT_SPIKE_FACTOR,
    num_backends: int = DEFAULT_NUM_BACKENDS,
    initial_active: int = DEFAULT_INITIAL_ACTIVE,
    scheme_name: str = "rdma-sync",
) -> Dict[str, object]:
    """One matrix cell: replay the flash crowd under one scaler arm.

    The spike ramps at ``duration // 4`` (the synthesiser's default), so
    the first quarter is the steady baseline the scaler must *not*
    react to, and everything after onset is the reaction test.
    """
    if view not in VIEWS:
        raise ValueError(f"unknown view {view!r}; choose from {VIEWS}")
    knobs = _scaler_knobs(elastic, num_backends, initial_active)

    cfg = SimConfig(num_backends=num_backends)
    builder = ClusterBuilder(cfg).scheme(scheme_name)
    if view == "rdma-sync":
        builder.with_elastic_scaler(**knobs)
    cluster = builder.build()
    sim = cluster.sim

    # The identical trace in every cell: standalone fixed-seed synthesis
    # (not the sim's streams), so arms differ only in the scaler's view.
    trace = synthesize_flash_crowd(duration, base_rps,
                                   spike_factor=spike_factor)
    spike_start = duration // 4
    ramp = duration // 10

    scaler = cluster.scaler
    if view == "ganglia":
        # A real gmond/gmetad deployment feeds the coarse view; the
        # scaler is hand-wired because its view is not the cluster's
        # monitor. The dispatcher re-reads ``health`` each loop, so the
        # post-build swap is safe.
        from repro.server.reconfig import ElasticScaler
        from repro.transport.multicast import MulticastGroup

        channel = MulticastGroup("ganglia")
        gmonds = [Gmond(node, channel, interval=GMOND_INTERVAL)
                  for node in sim.backends]
        gmetad = Gmetad(sim.frontend, gmonds, interval=GMETAD_INTERVAL)
        coarse = GangliaLoadView(gmetad.store, sim.backends)
        scaler = ElasticScaler(sim, view=coarse, **knobs)
        cluster.dispatcher.health = scaler

    replayer = cluster.workloads and cluster.workloads[0]
    if not replayer:
        from repro.workloads import create_workload

        replayer = create_workload("replay", sim, cluster.dispatcher,
                                   trace=trace)
        replayer.start()
    cluster.run(until=duration)

    stats = cluster.dispatcher.stats
    spike_latencies = [r.response_time for r in stats.completed
                       if r.completed_at >= spike_start]
    ups = [e for e in scaler.events if e.direction == "up"]
    never = (duration - spike_start) / 1e6  # cap: "never reacted"
    reaction_lag_ms = ((ups[0].time - spike_start) / 1e6 if ups else never)
    overload_ms = sum(SCALER_INTERVAL for (_, mean, _) in scaler.samples
                      if mean > HIGH_WATER) / 1e6
    return {
        "view": view,
        "elastic": elastic,
        "trace_entries": len(trace),
        "spike_start_ms": spike_start / 1e6,
        "ramp_ms": ramp / 1e6,
        "reaction_lag_ms": reaction_lag_ms,
        "reacted": bool(ups),
        "overload_ms": overload_ms,
        "scale_ups": len(ups),
        "scale_downs": sum(1 for e in scaler.events if e.direction == "down"),
        "active_final": len(scaler.active),
        "evaluations": scaler.evaluations,
        "completed": len(stats.completed),
        "spike_p95_ms": (percentile(spike_latencies, 95) / 1e6
                         if spike_latencies else 0.0),
        "spike_mean_ms": (sum(spike_latencies) / len(spike_latencies) / 1e6
                          if spike_latencies else 0.0),
    }


def run(
    views: Sequence[str] = VIEWS,
    duration: int = DEFAULT_DURATION,
    base_rps: float = DEFAULT_BASE_RPS,
    spike_factor: float = DEFAULT_SPIKE_FACTOR,
    num_backends: int = DEFAULT_NUM_BACKENDS,
    initial_active: int = DEFAULT_INITIAL_ACTIVE,
    scheme_name: str = "rdma-sync",
    elastic_arms: Sequence[bool] = (True, False),
):
    """The full matrix: views x scaler on/off over one flash-crowd trace.

    ``tables`` is keyed ``"{view}:{on|off}"``; ``series`` carries
    reaction lag, overload window and spike-window p95 aligned with
    ``xs = views`` (one pair of series per scaler arm).
    """
    from repro.experiments.common import ExperimentResult

    result = ExperimentResult(
        name="elastic_replay",
        params={"duration": duration, "base_rps": base_rps,
                "spike_factor": spike_factor,
                "num_backends": num_backends,
                "initial_active": initial_active,
                "scheme": scheme_name},
        xs=list(views),
    )
    series: Dict[str, List[float]] = {}
    for elastic in elastic_arms:
        tag = "on" if elastic else "off"
        series[f"{tag}_reaction_lag_ms"] = []
        series[f"{tag}_overload_ms"] = []
        series[f"{tag}_spike_p95_ms"] = []
    for view in views:
        for elastic in elastic_arms:
            row = run_cell(view, elastic, duration=duration,
                           base_rps=base_rps, spike_factor=spike_factor,
                           num_backends=num_backends,
                           initial_active=initial_active,
                           scheme_name=scheme_name)
            tag = "on" if elastic else "off"
            result.tables[f"{view}:{tag}"] = row
            series[f"{tag}_reaction_lag_ms"].append(row["reaction_lag_ms"])
            series[f"{tag}_overload_ms"].append(row["overload_ms"])
            series[f"{tag}_spike_p95_ms"].append(row["spike_p95_ms"])
    result.series = series
    result.notes = (
        "Identical flash-crowd trace per cell; half the pool starts "
        "parked. The fine-grained view reacts to the spike within a "
        "couple of scaler periods (millisecond-fresh load), while the "
        "Ganglia view waits out gmond collection plus gmetad "
        "aggregation before its first scale-up — and with the scaler "
        "pinned (off), the spike-window tail latency shows what that "
        "reaction was worth. Overload windows are measured through each "
        "arm's own view (compare on vs off within a view, not across "
        "views — the coarse view under-reports the overload it cannot "
        "see, which is precisely its failure mode)."
    )
    return result
