"""Observability surface: determinism and coverage of the exposition.

The serving layer must inherit the paper's two core properties:

* **non-perturbation** — the registry's collectors only *read* plane
  state, so a cluster built with ``observability()`` behaves
  bit-identically to one built with plain ``with_telemetry()`` (the
  only plane the surface implies);
* **determinism** — same seed → byte-identical OpenMetrics text and
  byte-identical job-report JSON, because every sample is derived from
  simulated state and floats render via ``repr``.

This experiment runs the RUBiS stack per seed twice (fresh simulations)
and compares the rendered exposition and job report byte-for-byte, then
validates the text with the in-tree promtool-style checker and reports
coverage: metric families, samples, bytes, and the per-plane family
counts a scrape actually serves.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.config import SimConfig
from repro.obs import validate_exposition
from repro.experiments.common import ExperimentResult
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RubisWorkload

DEFAULTS = dict(
    num_backends=4,
    clients=24,
    think_time=8 * MILLISECOND,
)


def run_one(seed: int, duration: int = 2 * SECOND,
            scheme_name: str = "e-rdma-sync", **overrides) -> Tuple[str, str]:
    """One full-stack run; returns (exposition text, job-report JSON)."""
    from repro.api import ClusterBuilder

    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"], master_seed=seed)
    cluster = (
        ClusterBuilder(cfg)
        .scheme(scheme_name)
        .with_tracing()
        .with_heartbeat()
        .observability()
        .build()
    )
    RubisWorkload(cluster.sim, cluster.dispatcher,
                  num_clients=params["clients"],
                  think_time=params["think_time"]).start()
    cluster.run(duration)
    return cluster.obs.exposition(), cluster.obs.job_report().to_json()


def _family_counts(text: str) -> Dict[str, int]:
    """Metric families per subsystem prefix (second name component)."""
    counts: Dict[str, int] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            name = line.split()[2]
            subsystem = name.split("_")[1] if "_" in name else name
            counts[subsystem] = counts.get(subsystem, 0) + 1
    return counts


def run(seeds: Sequence[int] = (1, 2, 3),
        duration: int = 2 * SECOND) -> ExperimentResult:
    """Determinism + coverage sweep over ``seeds``."""
    result = ExperimentResult(
        name="obs_surface",
        params={"seeds": list(seeds), "duration": duration, **DEFAULTS},
    )
    series: Dict[str, list] = {
        "exposition_bytes": [], "families": [], "samples": [],
        "validator_errors": [], "deterministic": [],
        "report_deterministic": [],
    }
    for seed in seeds:
        text_a, report_a = run_one(seed, duration=duration)
        text_b, report_b = run_one(seed, duration=duration)
        errors = validate_exposition(text_a)
        samples = sum(1 for line in text_a.splitlines()
                      if line and not line.startswith("#"))
        series["exposition_bytes"].append(len(text_a.encode()))
        series["families"].append(text_a.count("# TYPE "))
        series["samples"].append(samples)
        series["validator_errors"].append(len(errors))
        series["deterministic"].append(1.0 if text_a == text_b else 0.0)
        series["report_deterministic"].append(
            1.0 if report_a == report_b else 0.0)
        result.tables[f"families:{seed}"] = _family_counts(text_a)
        if errors:
            result.tables[f"errors:{seed}"] = errors

    result.xs = list(seeds)
    result.series = series
    det = all(v == 1.0 for v in series["deterministic"])
    rep_det = all(v == 1.0 for v in series["report_deterministic"])
    clean = all(n == 0 for n in series["validator_errors"])
    result.notes = (
        f"exposition deterministic across re-runs: {det}; "
        f"job report deterministic: {rep_det}; "
        f"validator clean: {clean} "
        f"({series['families'][0]} families, "
        f"{series['samples'][0]} samples, "
        f"{series['exposition_bytes'][0]} bytes at seed {seeds[0]})"
    )
    return result
