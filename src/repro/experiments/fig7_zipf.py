"""Figure 7 — throughput improvement with RUBiS + Zipf co-hosting.

Paper: the cluster hosts RUBiS and a Zipf(α) static-content service
simultaneously; α sweeps 0.25 → 0.9. Total throughput is reported as the
improvement over Socket-Async. At α=0.25 (low temporal locality, very
heterogeneous request costs) RDMA-Sync gains up to ~28 % and e-RDMA-Sync
~35 %; gains shrink as α rises and every server's cache holds the hot
set.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.monitoring.registry import SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RubisWorkload
from repro.workloads.zipf import ZipfWorkload

DEFAULT_ALPHAS: Sequence[float] = (0.25, 0.5, 0.75, 0.9)

DEFAULTS = dict(
    num_backends=4,
    workers=32,
    rubis_clients=48,
    zipf_clients=48,
    think_time=3 * MILLISECOND,
    demand_cv=0.4,
)


def run_one(
    scheme_name: str,
    alpha: float,
    duration: int = 10 * SECOND,
    poll_interval: int = 50 * MILLISECOND,
    **overrides,
) -> float:
    """Total completed-request throughput (rps) for one (scheme, α)."""
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"])
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    app = deploy_rubis_cluster(
        cfg, scheme_name=scheme_name, poll_interval=poll_interval,
        workers=params["workers"],
    )
    rubis = RubisWorkload(
        app.sim, app.dispatcher,
        num_clients=params["rubis_clients"],
        think_time=params["think_time"],
        demand_cv=params["demand_cv"],
        burst_length=10, idle_factor=8,
    )
    zipf = ZipfWorkload(
        app.sim, app.dispatcher, alpha=alpha,
        num_clients=params["zipf_clients"],
        think_time=params["think_time"] * 2,
    )
    rubis.start()
    zipf.start()
    app.run(duration)
    return app.dispatcher.stats.throughput(duration)


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    schemes: Sequence[str] = tuple(SCHEME_NAMES),
    duration: int = 10 * SECOND,
    **overrides,
) -> ExperimentResult:
    """Full Figure 7 sweep: improvement (%) over socket-async per α."""
    if "socket-async" not in schemes:
        raise ValueError("fig7 needs socket-async as the baseline")
    result = ExperimentResult(
        name="fig7-zipf",
        params={"alphas": list(alphas), "duration_ns": duration, **DEFAULTS, **overrides},
        xs=list(alphas),
    )
    raw: Dict[str, list] = {name: [] for name in schemes}
    for alpha in alphas:
        for name in schemes:
            raw[name].append(run_one(name, alpha, duration=duration, **overrides))
    base = raw["socket-async"]
    for name in schemes:
        result.series[f"{name}:rps"] = raw[name]
        result.series[f"{name}:improvement_pct"] = [
            100.0 * (t / b - 1.0) if b > 0 else 0.0 for t, b in zip(raw[name], base)
        ]
    result.notes = (
        "Throughput improvement over socket-async. Expected: largest "
        "gains for rdma-sync / e-rdma-sync at low α, shrinking as α "
        "rises (paper Fig 7: up to ~28 % / ~35 % at α=0.25)."
    )
    return result
