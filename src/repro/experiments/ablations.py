"""Ablations beyond the paper (DESIGN.md §8).

Each ablation isolates one design choice the paper's story rests on:

* ``irq_affinity``  — does Fig 6's CPU1 asymmetry really come from NIC
  interrupt affinity? (Disable affinity → asymmetry should vanish.)
* ``scheduler_wakeups`` — how much of the socket schemes' latency comes
  from 2.4-style sticky wakeups and kernel non-preemption?
* ``multicast_push``  — the §6 discussion: hardware-multicast status
  pushes scale well but use channel semantics, costing back-end CPU
  again; compare the push path against RDMA-read polling.
* ``lb_weights``  — sensitivity of the WebSphere score's weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.hw.cluster import build_cluster
from repro.monitoring import create_scheme
from repro.monitoring.loadinfo import LoadCalculator
from repro.sim.units import MILLISECOND, SECOND
from repro.transport.multicast import MulticastGroup
from repro.workloads.background import spawn_background_load
from repro.workloads.floatapp import FloatApp
from repro.workloads.rubis import RubisWorkload


# ---------------------------------------------------------------------------
# irq affinity
# ---------------------------------------------------------------------------
def run_irq_affinity(duration: int = 4 * SECOND) -> ExperimentResult:
    """Pending-interrupt asymmetry with and without NIC IRQ affinity."""
    result = ExperimentResult(name="ablation-irq-affinity", xs=["affinity", "round-robin"])
    means: Dict[str, list] = {"cpu0": [], "cpu1": []}
    for affinity in (1, -1):
        cfg = SimConfig(num_backends=2)
        cfg.irq.nic_irq_affinity = affinity
        sim = build_cluster(cfg)
        target = sim.backends[0]
        spawn_background_load(sim, target, 16, comm_fraction=1.0,
                              message_interval=3 * MILLISECOND, burst=16)
        scheme = create_scheme("e-rdma-sync", sim, interval=5 * MILLISECOND)
        samples = []

        def poller(k, scheme=scheme, samples=samples):
            while True:
                info = yield from scheme.query(k, 0)
                samples.append(list(info.irq_pending or [0, 0]))
                yield k.sleep(5 * MILLISECOND)

        sim.frontend.spawn("ablation-poller", poller)
        sim.run(duration)
        n = max(1, len(samples))
        means["cpu0"].append(sum(s[0] for s in samples) / n)
        means["cpu1"].append(sum(s[1] for s in samples) / n)
    result.series = means
    result.notes = (
        "With affinity, CPU1 absorbs the NIC interrupt pressure; with "
        "round-robin delivery the asymmetry collapses."
    )
    return result


# ---------------------------------------------------------------------------
# scheduler wakeup semantics
# ---------------------------------------------------------------------------
def run_scheduler_wakeups(duration: int = 3 * SECOND) -> ExperimentResult:
    """Socket-sync monitoring latency under different kernel semantics."""
    variants = [
        ("2.4-faithful", dict()),
        ("no-sticky", dict(sticky_wakeups=False)),
        ("preemptible-kernel", dict(kernel_nonpreemptible=False)),
        ("no-boost", dict(net_wake_boost=False)),
    ]
    result = ExperimentResult(name="ablation-scheduler", xs=[name for name, _ in variants])
    latencies = []
    for _name, overrides in variants:
        cfg = SimConfig(num_backends=2)
        for key, value in overrides.items():
            setattr(cfg.cpu, key, value)
        sim = build_cluster(cfg)
        target = sim.backends[0]
        spawn_background_load(sim, target, 32, comm_fraction=0.5)
        scheme = create_scheme("socket-sync", sim, interval=10 * MILLISECOND)

        def poller(k, scheme=scheme):
            while True:
                yield from scheme.query(k, 0)
                yield k.sleep(10 * MILLISECOND)

        sim.frontend.spawn("ablation-poller", poller)
        sim.run(duration)
        lats = scheme.latencies()
        latencies.append(sum(lats) / len(lats) / 1000.0 if lats else 0.0)
    result.series["socket_sync_latency_us"] = latencies
    result.notes = (
        "Mean socket-sync monitoring latency (µs) under a loaded "
        "back-end for each kernel-semantics variant."
    )
    return result


# ---------------------------------------------------------------------------
# multicast push vs RDMA-read poll (the §6 discussion)
# ---------------------------------------------------------------------------
def run_multicast_push(
    interval: int = 4 * MILLISECOND,
    app_compute: int = 200 * MILLISECOND,
) -> ExperimentResult:
    """Back-end perturbation: multicast status push vs RDMA-Sync poll.

    The push design needs a back-end thread that reads /proc and
    publishes over channel semantics — at fine granularity this costs
    the back-end CPU exactly like the socket schemes, which is the
    paper's argument for staying one-sided.
    """
    result = ExperimentResult(name="ablation-multicast", xs=["multicast-push", "rdma-sync-poll"])
    delays = []

    # Variant A: back-end pushes over multicast every `interval`.
    cfg = SimConfig(num_backends=2)
    sim = build_cluster(cfg)
    target = sim.backends[0]
    channel = MulticastGroup("status")
    channel.subscribe(sim.frontend)
    channel.subscribe(target)
    calc = LoadCalculator(target.name)

    def pusher(k):
        while True:
            stats = yield from target.procfs.read_stat(k)
            info = calc.compute(stats)
            yield from channel.publish(k, info, 64)
            yield k.sleep(interval)

    target.spawn("status-push", pusher)
    app = FloatApp(target, total_compute=app_compute)
    app.start()
    sim.run(app_compute * 6 + SECOND)
    delays.append(app.normalized_delay())

    # Variant B: frontend polls with RDMA-Sync at the same granularity.
    cfg = SimConfig(num_backends=2)
    sim = build_cluster(cfg)
    target = sim.backends[0]
    scheme = create_scheme("rdma-sync", sim, interval=interval)

    def poller(k):
        while True:
            yield from scheme.query(k, 0)
            yield k.sleep(interval)

    sim.frontend.spawn("poller", poller)
    app = FloatApp(target, total_compute=app_compute)
    app.start()
    sim.run(app_compute * 6 + SECOND)
    delays.append(app.normalized_delay())

    result.series["normalized_app_delay"] = delays
    result.notes = (
        "Normalised float-app delay on the monitored back-end. The "
        "multicast push pays /proc + channel-semantics costs on the "
        "back-end; the RDMA-Sync poll pays nothing."
    )
    return result


# ---------------------------------------------------------------------------
# admission control with impatient clients (§1's revenue argument)
# ---------------------------------------------------------------------------
def run_admission_goodput(
    duration: int = 6 * SECOND,
    deadline: int = 150 * MILLISECOND,
) -> ExperimentResult:
    """Goodput with/without admission control under overload.

    Clients abandon responses slower than ``deadline`` (work wasted —
    the paper's §1 lost-revenue case). Admission control that rejects
    early during overload converts would-be timeouts into fast errors;
    its quality depends on the monitored load being current.
    """
    variants = [
        ("no-admission", dict(with_admission=False)),
        ("admission", dict(with_admission=True, admission_max_score=0.65)),
    ]
    result = ExperimentResult(name="ablation-admission", xs=[n for n, _ in variants])
    goodput, timeout_rate, rejected = [], [], []
    for _name, overrides in variants:
        cfg = SimConfig(num_backends=2)
        cfg.cpu.wake_preempt_margin = 8
        cfg.cpu.timeslice_ticks = 8
        app = deploy_rubis_cluster(cfg, scheme_name="rdma-sync",
                                   poll_interval=50 * MILLISECOND,
                                   workers=24, **overrides)
        wl = RubisWorkload(app.sim, app.dispatcher, num_clients=96,
                           think_time=1 * MILLISECOND, demand_cv=0.4,
                           burst_length=10, idle_factor=4,
                           deadline=deadline)
        wl.start()
        app.run(duration)
        stats = app.dispatcher.stats
        goodput.append(stats.throughput(duration))
        timeout_rate.append(stats.timeout_rate)
        rejected.append(float(stats.rejected_count))
    result.series["goodput_rps"] = goodput
    result.series["timeout_rate"] = timeout_rate
    result.series["rejected"] = rejected
    result.notes = (
        "Within-deadline completions per second under overload, with "
        "impatient clients. With closed-loop (self-limiting) clients the "
        "finding is that admission control sheds a large volume of load "
        "early — fast feedback instead of deadline misses — while "
        "keeping goodput essentially unchanged; open-loop arrivals would "
        "be needed for a goodput win."
    )
    return result


# ---------------------------------------------------------------------------
# load-balancer weight sensitivity
# ---------------------------------------------------------------------------
def run_lb_weights(
    duration: int = 6 * SECOND,
    variants: Optional[Sequence] = None,
) -> ExperimentResult:
    """RUBiS throughput under different WebSphere weight settings."""
    if variants is None:
        variants = [
            ("default", dict()),
            ("cpu-only", dict(cpu=1.0, runq=0.0, connections=0.0, memory=0.0)),
            ("conn-only", dict(cpu=0.0, runq=0.0, connections=1.0, memory=0.0)),
            ("no-inflight", dict(inflight=0.0)),
        ]
    result = ExperimentResult(name="ablation-lb-weights", xs=[name for name, _ in variants])
    rps, mean_ms = [], []
    for _name, overrides in variants:
        cfg = SimConfig(num_backends=4)
        cfg.cpu.wake_preempt_margin = 8
        cfg.cpu.timeslice_ticks = 8
        app = deploy_rubis_cluster(cfg, scheme_name="rdma-sync",
                                   poll_interval=50 * MILLISECOND, workers=24)
        for key, value in overrides.items():
            setattr(app.balancer.weights, key, value)
        wl = RubisWorkload(app.sim, app.dispatcher, num_clients=64,
                           think_time=3 * MILLISECOND, demand_cv=0.4,
                           burst_length=10, idle_factor=8)
        wl.start()
        app.run(duration)
        stats = app.dispatcher.stats
        rps.append(stats.throughput(duration))
        mean_ms.append(stats.mean_response() / 1e6)
    result.series["throughput_rps"] = rps
    result.series["mean_response_ms"] = mean_ms
    result.notes = "Sensitivity of RUBiS throughput to LB score weights."
    return result
