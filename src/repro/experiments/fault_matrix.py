"""Chaos matrix: every monitoring scheme against every fault class.

The paper argues (§4) that one-sided RDMA monitoring is *robust*: a
hung back-end kernel still answers DMA reads of its (frozen) kernel
memory, while socket schemes need the remote CPU and simply stall. This
experiment makes that claim measurable across the whole design space —
5 schemes x 5 fault classes, one deterministic fault window per cell:

=============== ====================================================
``hang``        kernel livelock at the victim; HCA keeps answering
``crash``       victim drops off the fabric entirely
``link``        frontend<->victim link: 20x latency, 10% bandwidth
``partition``   frontend | victim network split
``verb-nak``    victim NIC NAKs half of all RDMA verbs (RNR retry)
=============== ====================================================

Each cell runs one scheme with bounded probes (2 ms timeout, 2 retries,
1 ms backoff) polling every 10 ms, plus the RDMA heartbeat, with the
fault applied over a mid-run window. Reported per cell: per-phase
(before/during/after) query success, latency and staleness for the
victim, the scheme's retry counters, the fault plane's injection
counters, and heartbeat detection/recovery times.

Paper-expected outcomes (asserted by ``tests/faults/test_chaos_matrix.py``):
RDMA-Sync and e-RDMA-Sync keep returning *fresh* load from a hung node
with zero failures; both socket schemes exceed their probe timeout for
the whole window; RDMA-Async survives but serves interval-stale data.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional

from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.faults import FaultPlane, parse_schedule
from repro.hw.cluster import build_cluster
from repro.monitoring import FrontendMonitor, create_scheme
from repro.monitoring.heartbeat import HeartbeatMonitor, NodeHealth
from repro.sim.units import MILLISECOND as MS

SCHEMES = ("socket-async", "socket-sync", "rdma-async", "rdma-sync", "e-rdma-sync")
FAULT_KINDS = ("hang", "crash", "link", "partition", "verb-nak")

#: the standard probe discipline every cell runs with
PROBE_TIMEOUT = 2 * MS
PROBE_RETRIES = 2
PROBE_BACKOFF = 1 * MS
POLL_INTERVAL = 10 * MS


def schedule_for(fault: str, frontend: str, victim: str,
                 at: int, until: int) -> str:
    """The schedule text for one fault class over [at, until)."""
    if fault == "hang":
        return f"at {at} hang {victim}\nat {until} recover {victim}"
    if fault == "crash":
        return f"at {at} crash {victim}\nat {until} recover {victim}"
    if fault == "link":
        return (f"from {at} to {until} degrade-link {frontend} {victim} "
                f"latency=20 bw=0.1")
    if fault == "partition":
        return f"from {at} to {until} partition {frontend} | {victim}"
    if fault == "verb-nak":
        return f"from {at} to {until} verb-nak {victim} p=0.5"
    raise ValueError(f"unknown fault kind {fault!r}")


def _phase_stats(records, lo: int, hi: int) -> Dict[str, object]:
    """Victim-probe outcomes for probes *issued* in [lo, hi).

    Phased by issue time, not completion: a probe issued inside the
    fault window that exhausts its retry budget shortly after the fault
    lifts belongs to the fault, not to the recovery. Callers keep a
    guard band of one poll interval around each fault edge — a probe
    racing the exact injection instant is neither healthy nor faulted.
    """
    rs = [r for r in records if lo <= r.issued_at < hi]
    ok = [r for r in rs if r.ok]
    return {
        "queries": len(rs),
        "ok": len(ok),
        "failed": len(rs) - len(ok),
        "mean_latency_ms": (
            sum(r.latency for r in ok) / len(ok) / MS if ok else None),
        "max_staleness_ms": max((r.info.staleness for r in rs), default=0) / MS,
        "mean_attempts": (sum(r.attempts for r in rs) / len(rs) if rs else None),
    }


def run_cell(
    scheme_name: str,
    fault: str,
    seed: int = 1,
    fault_at: int = 500 * MS,
    fault_until: int = 1100 * MS,
    duration: int = 1600 * MS,
) -> Dict[str, object]:
    """One (scheme, fault) cell: deterministic fault window mid-run."""
    cfg = SimConfig(num_backends=2, master_seed=seed)
    cfg.monitor.probe_timeout = PROBE_TIMEOUT
    cfg.monitor.probe_retries = PROBE_RETRIES
    cfg.monitor.probe_backoff = PROBE_BACKOFF
    sim = build_cluster(cfg)
    victim = sim.backends[0].name
    plane = FaultPlane(sim, parse_schedule(
        schedule_for(fault, sim.frontend.name, victim, fault_at, fault_until)
    )).install()
    scheme = create_scheme(scheme_name, sim, interval=POLL_INTERVAL)
    monitor = FrontendMonitor(scheme)
    monitor.start()
    heartbeat = HeartbeatMonitor(sim, interval=20 * MS, timeout=2 * MS,
                                 hung_after=2)
    sim.run(duration)

    victim_records = [r for r in scheme.records if r.backend == 0]
    detected = next(
        (t.time for t in heartbeat.transitions
         if t.backend == 0 and t.state is not NodeHealth.ALIVE), None)
    recovered = next(
        (t.time for t in heartbeat.transitions
         if t.backend == 0 and t.state is NodeHealth.ALIVE
         and t.time >= fault_until), None)
    return {
        "scheme": scheme_name,
        "fault": fault,
        "phases": {
            "before": _phase_stats(victim_records, 0, fault_at - POLL_INTERVAL),
            "during": _phase_stats(victim_records, fault_at + POLL_INTERVAL,
                                   fault_until - POLL_INTERVAL),
            "after": _phase_stats(victim_records, fault_until + POLL_INTERVAL,
                                  duration),
        },
        "counters": scheme.fault_stats(),
        "plane": plane.stats(),
        "heartbeat": {
            "detected_ms": None if detected is None else detected / MS,
            "recovered_ms": None if recovered is None else recovered / MS,
            "final_state": heartbeat.state[0].value,
        },
    }


def run(
    smoke: bool = False,
    seed: int = 1,
    schemes=SCHEMES,
    faults=FAULT_KINDS,
) -> ExperimentResult:
    """The full matrix (or a 2x2 smoke subset)."""
    if smoke:
        schemes = ("rdma-sync", "socket-sync")
        faults = ("hang", "crash")
    cells: List[Dict[str, object]] = []
    for fault in faults:
        for scheme_name in schemes:
            cells.append(run_cell(scheme_name, fault, seed=seed))
    result = ExperimentResult(
        name="fault_matrix",
        params={
            "seed": seed,
            "smoke": smoke,
            "probe_timeout_ms": PROBE_TIMEOUT / MS,
            "probe_retries": PROBE_RETRIES,
            "poll_interval_ms": POLL_INTERVAL / MS,
            "schemes": list(schemes),
            "faults": list(faults),
        },
        xs=list(faults),
        tables={"cells": cells},
        notes=(
            "Per-cell phases split victim-probe outcomes into "
            "before/during/after the fault window. The paper's robustness "
            "claim shows up as: hang -> RDMA-Sync/e-RDMA-Sync keep ok "
            "probes with sub-interval staleness while the socket schemes "
            "fail their bounded probes; crash/partition -> every scheme "
            "fails during the window and recovers after it; verb-nak -> "
            "only RDMA schemes see NAKs and retries."
        ),
    )
    # Headline series: during-window failure fraction per scheme, per fault.
    for scheme_name in schemes:
        series = []
        for fault in faults:
            cell = next(c for c in cells
                        if c["scheme"] == scheme_name and c["fault"] == fault)
            during = cell["phases"]["during"]
            total = during["queries"] or 1
            series.append(during["failed"] / total)
        result.series[scheme_name] = series
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="2 schemes x 2 faults only")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write the result as JSON to this path")
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke, seed=args.seed)
    payload = json.dumps(
        {
            "name": result.name,
            "params": result.params,
            "series": result.series,
            "tables": result.tables,
            "notes": result.notes,
        },
        indent=2, sort_keys=True, default=str,
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
