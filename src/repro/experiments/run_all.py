"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments.run_all             # quick versions
    python -m repro.experiments.run_all --full      # benchmark-scale
    python -m repro.experiments.run_all fig3 fig6   # a subset
    python -m repro.experiments.run_all --jobs 4 --seeds 1,2,3

Prints each result in the paper's shape and writes it under results/.

With ``--jobs N`` the (experiment × seed) matrix fans out across a
process pool: each worker applies its job's seed as the process-wide
default master seed (:func:`repro.config.set_default_master_seed`) and
runs the experiment in isolation — simulations are single-threaded, so
cores multiply throughput with zero determinism risk (same (experiment,
seed) job → same output regardless of scheduling). The run always
finishes by merging every job's outcome into
``results/BENCH_run_all.json`` (schema v2, one record per job).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pathlib
import sys
import time
from typing import Optional

from repro.analysis.report import format_series, format_table
from repro.experiments import (
    congestion_incast,
    elastic_replay,
    federation_scale,
    fig3_latency,
    obs_surface,
    perf_core,
    fig4_granularity,
    fig5_accuracy,
    fig6_interrupts,
    fig7_zipf,
    fig8_ganglia,
    fig9_finegrained,
    scalability,
    table1_rubis,
    tenant_matrix,
)
from repro.monitoring.registry import SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RUBIS_QUERIES


def _render_table1(result) -> str:
    headers = ["Query"] + [f"{s} avg" for s in SCHEME_NAMES] + [f"{s} max" for s in SCHEME_NAMES]
    rows = []
    for q in RUBIS_QUERIES:
        row = [q.name]
        row += [f"{result.tables[s][q.name]['avg_ms']:.1f}" for s in SCHEME_NAMES]
        row += [f"{result.tables[s][q.name]['max_ms']:.0f}" for s in SCHEME_NAMES]
        rows.append(row)
    rows.append(["TOTAL(rps)"] + [
        f"{result.tables[s]['__all__']['throughput_rps']:.0f}" for s in SCHEME_NAMES
    ] + [""] * len(SCHEME_NAMES))
    return format_table(headers, rows, title="Table 1 — RUBiS response times (ms)")


def _render_series(result, x_label: str, title: str) -> str:
    return format_series(x_label, result.xs, result.series, title=title)


RUNNERS = {
    "fig3": lambda full: _render_series(
        fig3_latency.run(duration=(3 if full else 1) * SECOND),
        "bg_threads", "Figure 3 — monitoring latency (µs)"),
    "fig4": lambda full: _render_series(
        fig4_granularity.run(app_compute=(400 if full else 150) * MILLISECOND),
        "granularity_ms", "Figure 4 — normalised application delay"),
    "fig5": lambda full: _render_series(
        fig5_accuracy.run(window=(2 if full else 1) * SECOND),
        "load_level", "Figure 5 — deviation of reported load"),
    "fig6": lambda full: _render_series(
        fig6_interrupts.run(duration=(5 if full else 3) * SECOND),
        "scheme", "Figure 6 — pending interrupts per CPU"),
    "table1": lambda full: _render_table1(
        table1_rubis.run(duration=(10 if full else 5) * SECOND)),
    "fig7": lambda full: _render_series(
        fig7_zipf.run(duration=(8 if full else 5) * SECOND,
                      alphas=(0.25, 0.5, 0.75, 0.9) if full else (0.25, 0.9)),
        "alpha", "Figure 7 — RUBiS + Zipf throughput"),
    "fig8": lambda full: _render_series(
        fig8_ganglia.run(duration=(6 if full else 4) * SECOND,
                         granularities_ms=(1, 4, 16, 64) if full else (1, 16)),
        "granularity_ms", "Figure 8 — max RUBiS response with gmetric (ms)"),
    "fig9": lambda full: _render_series(
        fig9_finegrained.run(duration=(8 if full else 5) * SECOND,
                             granularities_ms=(64, 256, 1024, 4096) if full else (64, 1024)),
        "granularity_ms", "Figure 9 — throughput vs granularity (rps)"),
    "scalability": lambda full: _render_series(
        scalability.run(sizes=scalability.DEFAULT_SIZES if full else (2, 8),
                        duration=(3 if full else 2) * SECOND),
        "backends", "Scalability — monitoring fabric vs cluster size"),
    "federation": lambda full: _render_series(
        federation_scale.run(
            sizes=federation_scale.DEFAULT_SIZES if full else (8, 32),
            duration=(250 if full else 120) * MILLISECOND),
        "backends", "Federation — flat vs two-level monitoring fabric"),
    "congestion": lambda full: (lambda r: _render_series(
        r, "backends", "Incast — root-view freshness per congestion arm")
        + "\n" + r.notes)(
        congestion_incast.run(
            sizes=congestion_incast.DEFAULT_SIZES if full else (4, 8),
            duration=(50 if full else 30) * MILLISECOND)),
    "perf_core": lambda full: (lambda r: _render_series(
        r, "backends", "Simulator wall-clock (current core)") + "\n" + r.notes)(
        perf_core.run(sizes=perf_core.DEFAULT_SIZES if full else (64, 128))),
    "tenant_matrix": lambda full: (lambda r: _render_series(
        r, "attack", "Tenancy — monitoring staleness under noisy neighbors")
        + "\n" + r.notes)(
        tenant_matrix.run(
            schemes=None if full else ("rdma-sync", "socket-sync"),
            duration=(240 if full else 120) * MILLISECOND)),
    "replay": lambda full: (lambda r: _render_series(
        r, "view", "Elastic replay — flash-crowd reaction per monitoring view")
        + "\n" + r.notes)(
        elastic_replay.run(duration=(4 if full else 3) * SECOND)),
    "obs": lambda full: (lambda r: _render_series(
        r, "seed", "Observability — exposition determinism and coverage")
        + "\n" + r.notes)(
        obs_surface.run(seeds=(1, 2, 3) if full else (1,),
                        duration=(2 if full else 1) * SECOND)),
}


def _artifact_name(name: str, seed: Optional[int]) -> str:
    """results/ stem for one job; default-seed jobs keep historical names."""
    return name if seed is None else f"{name}__seed{seed}"


def _run_job(name: str, full: bool, seed: Optional[int]) -> dict:
    """One (experiment, seed) job — module-level so worker processes can
    resolve it by reference (no lambda pickling).

    Applies the job's seed as the process-wide default master seed
    before running; every ``SimConfig()`` the experiment builds without
    an explicit ``master_seed=`` then uses it. Exceptions are captured
    into the job record rather than poisoning the pool.
    """
    if seed is not None:
        from repro.config import set_default_master_seed

        set_default_master_seed(seed)
    started = time.time()
    try:
        text = RUNNERS[name](full)
        ok, error = True, ""
    except Exception as exc:  # noqa: BLE001 — job record carries the failure
        text, ok, error = "", False, f"{type(exc).__name__}: {exc}"
    return {
        "experiment": name,
        "seed": seed,
        "artifact": _artifact_name(name, seed),
        "ok": ok,
        "error": error,
        "wall_s": round(time.time() - started, 3),
        "text": text,
    }


def _merge_bench(out_dir: pathlib.Path, jobs: list, workers: int,
                 full: bool, wall_s: float) -> pathlib.Path:
    """Fold every job record into the schema-v2 BENCH_run_all baseline."""
    from repro.analysis.bench import write_bench

    records = [{k: v for k, v in job.items() if k != "text"} for job in jobs]
    return write_bench(out_dir, "run_all", {
        "workers": workers,
        "full": full,
        "wall_s": round(wall_s, 3),
        "jobs_total": len(records),
        "jobs_failed": sum(1 for r in records if not r["ok"]),
        "jobs": records,
    })


def _parse_seeds(text: str) -> list:
    try:
        return [int(s) for s in text.split(",") if s.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be comma-separated integers, got {text!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {sorted(RUNNERS)} (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="benchmark-scale parameters (slower)")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = in-process; "
                             "0 = one per CPU core)")
    parser.add_argument("--seeds", type=_parse_seeds, default=None,
                        metavar="S1,S2,...",
                        help="run every experiment once per seed "
                             "(default: one pass at the built-in seed)")
    args = parser.parse_args(argv)

    chosen = args.experiments or list(RUNNERS)
    unknown = [name for name in chosen if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; choose from {sorted(RUNNERS)}")
    workers = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    seeds = args.seeds if args.seeds else [None]

    out_dir = pathlib.Path(args.results_dir)
    out_dir.mkdir(exist_ok=True)
    matrix = [(name, seed) for seed in seeds for name in chosen]
    started = time.time()
    done: list = []
    if workers <= 1:
        for name, seed in matrix:
            done.append(_run_job(name, args.full, seed))
            _report(done[-1], out_dir)
    else:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_job, name, args.full, seed): (name, seed)
                       for name, seed in matrix}
            for future in concurrent.futures.as_completed(futures):
                done.append(future.result())
                _report(done[-1], out_dir)
    # Stable artifact order regardless of completion order.
    done.sort(key=lambda j: (str(j["seed"]), j["experiment"]))
    bench = _merge_bench(out_dir, done, workers, args.full,
                         time.time() - started)
    failed = [j for j in done if not j["ok"]]
    print(f"\n{len(done)} job(s), {len(failed)} failed; merged -> {bench}")
    for job in failed:
        print(f"  FAILED {job['artifact']}: {job['error']}")
    return 1 if failed else 0


def _report(job: dict, out_dir: pathlib.Path) -> None:
    tag = f"{job['experiment']}" + (
        f" seed={job['seed']}" if job["seed"] is not None else "")
    if not job["ok"]:
        print(f"\n=== {tag} FAILED ({job['wall_s']:.0f}s wall): {job['error']}")
        return
    print(f"\n=== {tag} ({job['wall_s']:.0f}s wall) " + "=" * 40)
    print(job["text"])
    (out_dir / f"{job['artifact']}.txt").write_text(job["text"] + "\n")


if __name__ == "__main__":
    sys.exit(main())
