"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.experiments.run_all            # quick versions
    python -m repro.experiments.run_all --full     # benchmark-scale
    python -m repro.experiments.run_all fig3 fig6  # a subset

Prints each result in the paper's shape and writes it under results/.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis.report import format_series, format_table
from repro.experiments import (
    congestion_incast,
    federation_scale,
    fig3_latency,
    obs_surface,
    perf_core,
    fig4_granularity,
    fig5_accuracy,
    fig6_interrupts,
    fig7_zipf,
    fig8_ganglia,
    fig9_finegrained,
    scalability,
    table1_rubis,
)
from repro.monitoring.registry import SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RUBIS_QUERIES


def _render_table1(result) -> str:
    headers = ["Query"] + [f"{s} avg" for s in SCHEME_NAMES] + [f"{s} max" for s in SCHEME_NAMES]
    rows = []
    for q in RUBIS_QUERIES:
        row = [q.name]
        row += [f"{result.tables[s][q.name]['avg_ms']:.1f}" for s in SCHEME_NAMES]
        row += [f"{result.tables[s][q.name]['max_ms']:.0f}" for s in SCHEME_NAMES]
        rows.append(row)
    rows.append(["TOTAL(rps)"] + [
        f"{result.tables[s]['__all__']['throughput_rps']:.0f}" for s in SCHEME_NAMES
    ] + [""] * len(SCHEME_NAMES))
    return format_table(headers, rows, title="Table 1 — RUBiS response times (ms)")


def _render_series(result, x_label: str, title: str) -> str:
    return format_series(x_label, result.xs, result.series, title=title)


RUNNERS = {
    "fig3": lambda full: _render_series(
        fig3_latency.run(duration=(3 if full else 1) * SECOND),
        "bg_threads", "Figure 3 — monitoring latency (µs)"),
    "fig4": lambda full: _render_series(
        fig4_granularity.run(app_compute=(400 if full else 150) * MILLISECOND),
        "granularity_ms", "Figure 4 — normalised application delay"),
    "fig5": lambda full: _render_series(
        fig5_accuracy.run(window=(2 if full else 1) * SECOND),
        "load_level", "Figure 5 — deviation of reported load"),
    "fig6": lambda full: _render_series(
        fig6_interrupts.run(duration=(5 if full else 3) * SECOND),
        "scheme", "Figure 6 — pending interrupts per CPU"),
    "table1": lambda full: _render_table1(
        table1_rubis.run(duration=(10 if full else 5) * SECOND)),
    "fig7": lambda full: _render_series(
        fig7_zipf.run(duration=(8 if full else 5) * SECOND,
                      alphas=(0.25, 0.5, 0.75, 0.9) if full else (0.25, 0.9)),
        "alpha", "Figure 7 — RUBiS + Zipf throughput"),
    "fig8": lambda full: _render_series(
        fig8_ganglia.run(duration=(6 if full else 4) * SECOND,
                         granularities_ms=(1, 4, 16, 64) if full else (1, 16)),
        "granularity_ms", "Figure 8 — max RUBiS response with gmetric (ms)"),
    "fig9": lambda full: _render_series(
        fig9_finegrained.run(duration=(8 if full else 5) * SECOND,
                             granularities_ms=(64, 256, 1024, 4096) if full else (64, 1024)),
        "granularity_ms", "Figure 9 — throughput vs granularity (rps)"),
    "scalability": lambda full: _render_series(
        scalability.run(sizes=scalability.DEFAULT_SIZES if full else (2, 8),
                        duration=(3 if full else 2) * SECOND),
        "backends", "Scalability — monitoring fabric vs cluster size"),
    "federation": lambda full: _render_series(
        federation_scale.run(
            sizes=federation_scale.DEFAULT_SIZES if full else (8, 32),
            duration=(250 if full else 120) * MILLISECOND),
        "backends", "Federation — flat vs two-level monitoring fabric"),
    "congestion": lambda full: (lambda r: _render_series(
        r, "backends", "Incast — root-view freshness per congestion arm")
        + "\n" + r.notes)(
        congestion_incast.run(
            sizes=congestion_incast.DEFAULT_SIZES if full else (4, 8),
            duration=(50 if full else 30) * MILLISECOND)),
    "perf_core": lambda full: (lambda r: _render_series(
        r, "backends", "Simulator wall-clock (current core)") + "\n" + r.notes)(
        perf_core.run(sizes=perf_core.DEFAULT_SIZES if full else (64, 128))),
    "obs": lambda full: (lambda r: _render_series(
        r, "seed", "Observability — exposition determinism and coverage")
        + "\n" + r.notes)(
        obs_surface.run(seeds=(1, 2, 3) if full else (1,),
                        duration=(2 if full else 1) * SECOND)),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {sorted(RUNNERS)} (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="benchmark-scale parameters (slower)")
    parser.add_argument("--results-dir", default="results")
    args = parser.parse_args(argv)

    chosen = args.experiments or list(RUNNERS)
    unknown = [name for name in chosen if name not in RUNNERS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; choose from {sorted(RUNNERS)}")

    out_dir = pathlib.Path(args.results_dir)
    out_dir.mkdir(exist_ok=True)
    for name in chosen:
        started = time.time()
        text = RUNNERS[name](args.full)
        elapsed = time.time() - started
        print(f"\n=== {name} ({elapsed:.0f}s wall) " + "=" * 40)
        print(text)
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
