"""Figure 5 — accuracy of the reported load information.

Paper: all four schemes run *simultaneously* against one back-end while
its load ramps; each report is compared against the ground truth (their
kernel module; here the simulator's exact state) **at the moment the
front end receives it**. Socket-* and RDMA-Async deviate increasingly
with load (staleness + delays); RDMA-Sync "consistently reports no
deviation" for thread counts (5a) and very few for the faster-moving CPU
load signal (5b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean
from repro.analysis.truth import GroundTruthSampler
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.hw.cluster import build_cluster
from repro.monitoring.registry import CORE_SCHEME_NAMES, create_scheme
from repro.sim.units import MILLISECOND, SECOND


def run(
    load_levels: Sequence[int] = (0, 8, 16, 32, 48),
    schemes: Sequence[str] = tuple(CORE_SCHEME_NAMES),
    poll_interval: int = 50 * MILLISECOND,
    window: int = 2 * SECOND,
) -> ExperimentResult:
    """Deviation of reported thread count (5a) and CPU load (5b) vs load.

    The back-end's load ramps through ``load_levels`` (threads of on/off
    work) in consecutive windows; all schemes poll concurrently. For
    every report we record |reported − truth(at receive time)|.
    """
    cfg = SimConfig(num_backends=1)
    sim = build_cluster(cfg)
    target = sim.backends[0]
    env = sim.env

    deployed = {name: create_scheme(name, sim, interval=poll_interval) for name in schemes}

    # Deviations bucketed by (scheme, window index).
    dev_threads: Dict[str, List[List[float]]] = {n: [[] for _ in load_levels] for n in schemes}
    dev_load: Dict[str, List[List[float]]] = {n: [[] for _ in load_levels] for n in schemes}
    window_of_time = lambda t: min(len(load_levels) - 1, int(t // window))

    def make_poller(name: str):
        scheme = deployed[name]

        def poller(k):
            while True:
                info = yield from scheme.query(k, 0)
                # Exact truth at the receive instant (the paper compares
                # against its kernel module's fine-granularity samples).
                truth_threads = float(target.sched.nr_threads())
                truth_running = float(target.sched.nr_running())
                w = window_of_time(k.now)
                dev_threads[name][w].append(abs(info.nr_threads - truth_threads))
                dev_load[name][w].append(abs(info.nr_running - truth_running))
                yield k.sleep(poll_interval)

        return poller

    for name in schemes:
        sim.frontend.spawn(f"fig5:{name}", make_poller(name))

    # The paper fires client requests at the back-end: serving them
    # forks transient worker processes (Apache-style), so both the
    # thread count and the run-queue length genuinely fluctuate.
    def forker_body(k):
        rng = sim.rng.stream("fig5-forker")
        seq = [0]
        live = [0]

        def transient_body(kk):
            live[0] += 1
            try:
                yield kk.compute(int(rng.integers(300_000, 2_500_000)))
                yield kk.sleep(int(rng.integers(1_000_000, 20_000_000)))
                yield kk.compute(int(rng.integers(200_000, 1_200_000)))
            finally:
                live[0] -= 1

        while True:
            level = load_levels[window_of_time(k.now)]
            if level > 0:
                # Arrival rate ∝ level, kept below the node's capacity so
                # the thread count fluctuates instead of diverging.
                if live[0] < 4 * level:
                    seq[0] += 1
                    target.spawn(f"fig5-req:{seq[0]}", transient_body)
                gap = max(300_000, int(rng.exponential(120 * MILLISECOND / level)))
            else:
                gap = 5 * MILLISECOND
            yield k.sleep(gap)

    target.spawn("fig5-forker", forker_body)

    sim.run(window * len(load_levels))

    result = ExperimentResult(
        name="fig5-accuracy",
        params={"load_levels": list(load_levels), "poll_interval": poll_interval},
        xs=list(load_levels),
    )
    for name in schemes:
        result.series[f"{name}:threads"] = [mean(b) for b in dev_threads[name]]
        result.series[f"{name}:load"] = [mean(b) for b in dev_load[name]]
    result.notes = (
        "Mean |reported − truth at receive time|; ':threads' is Fig 5a "
        "(thread count), ':load' is Fig 5b (run-queue length, the "
        "fast-moving CPU-load signal). Expected: rdma-sync ≈ 0 "
        "everywhere; rdma-async deviates on both (interval-old buffer); "
        "socket-* deviate increasingly with load."
    )
    return result
