"""One module per table/figure of the paper's evaluation (see DESIGN.md §4).

=================== ================================================
Module              Paper result
=================== ================================================
fig3_latency        Fig 3 — monitoring latency vs background load
fig4_granularity    Fig 4 — app perturbation vs granularity
fig5_accuracy       Fig 5 — accuracy of load information
fig6_interrupts     Fig 6 — pending interrupts per CPU
table1_rubis        Table 1 — RUBiS per-query response times
fig7_zipf           Fig 7 — RUBiS+Zipf throughput improvement vs α
fig8_ganglia        Fig 8 — RUBiS max response with gmetric collection
fig9_finegrained    Fig 9 — fine vs coarse granularity throughput
=================== ================================================
"""

from repro.experiments.common import ExperimentResult, RubisCluster, deploy_rubis_cluster
from repro.experiments import (
    ablations,
    capacity,
    design_space,
    elastic_replay,
    fault_matrix,
    fig3_latency,
    fig4_granularity,
    fig5_accuracy,
    fig6_interrupts,
    fig7_zipf,
    fig8_ganglia,
    fig9_finegrained,
    scalability,
    table1_rubis,
    telemetry_overhead,
)

__all__ = [
    "ExperimentResult",
    "RubisCluster",
    "deploy_rubis_cluster",
    "fig3_latency",
    "fig4_granularity",
    "fig5_accuracy",
    "fig6_interrupts",
    "fig7_zipf",
    "fig8_ganglia",
    "fig9_finegrained",
    "scalability",
    "ablations",
    "design_space",
    "elastic_replay",
    "fault_matrix",
    "capacity",
    "table1_rubis",
    "telemetry_overhead",
]
