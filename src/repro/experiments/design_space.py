"""Design-space comparison across all registered schemes (extension).

One table summarising, for every scheme (the paper's five plus the
RDMA-Write-push extension), the four properties that matter:

* query latency at the front end (µs) — idle and loaded back-end;
* data staleness at delivery (ms);
* back-end monitoring threads;
* application perturbation at 4 ms granularity (normalised delay).

This is the paper's §3/§4 qualitative comparison turned quantitative,
with the push design filling out the quadrant the paper leaves open
(one-sided transport *with* a back-end agent).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import mean
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.hw.cluster import build_cluster
from repro.monitoring import FrontendMonitor, create_scheme
from repro.monitoring.registry import ALL_SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.background import spawn_background_load
from repro.workloads.floatapp import FloatApp


def run(
    schemes: Sequence[str] = tuple(ALL_SCHEME_NAMES),
    poll_interval: int = 50 * MILLISECOND,
    duration: int = 3 * SECOND,
    load_threads: int = 24,
) -> ExperimentResult:
    result = ExperimentResult(
        name="design-space",
        params={"poll_interval": poll_interval, "load_threads": load_threads},
        xs=list(schemes),
    )
    series: Dict[str, List[float]] = {
        "idle_latency_us": [],
        "loaded_latency_us": [],
        "staleness_ms": [],
        "backend_threads": [],
        "perturbation_at_4ms": [],
    }
    for name in schemes:
        # -- latency + staleness, idle then loaded -------------------------
        sim = build_cluster(SimConfig(num_backends=1))
        scheme = create_scheme(name, sim, interval=poll_interval)
        monitor = FrontendMonitor(scheme, interval=poll_interval)
        monitor.start()
        sim.run(duration)
        idle_lat = mean(scheme.latencies())
        idle_count = len(scheme.records)
        spawn_background_load(sim, sim.backends[0], load_threads)
        sim.run(duration * 2)
        loaded = [r.latency for r in scheme.records[idle_count:]]
        series["idle_latency_us"].append(idle_lat / 1000.0)
        series["loaded_latency_us"].append(mean(loaded) / 1000.0)
        series["staleness_ms"].append(
            mean([info.staleness for _, info in monitor.history[3:]]) / 1e6)
        series["backend_threads"].append(float(scheme.backend_threads))

        # -- perturbation at fine granularity --------------------------------
        sim = build_cluster(SimConfig(num_backends=1))
        scheme = create_scheme(name, sim, interval=4 * MILLISECOND)
        monitor = FrontendMonitor(scheme, interval=4 * MILLISECOND)
        monitor.start()
        app = FloatApp(sim.backends[0], total_compute=200 * MILLISECOND)
        app.start()
        sim.run(2 * SECOND)
        series["perturbation_at_4ms"].append(
            app.normalized_delay() if app.finished else float("nan"))
    result.series = series
    result.notes = (
        "The design space: two-sided transports pay loaded-latency; "
        "asynchronous designs pay staleness; any back-end agent pays "
        "perturbation. Only RDMA-Sync (and e-RDMA-Sync) sit at the "
        "origin on all axes — the paper's §4 argument, quantified."
    )
    return result
