"""Noisy neighbors vs the six monitoring schemes — and the defense.

The paper's load-independence claim (one-sided RDMA monitoring keeps
working when the *host* is loaded) has a multi-tenant blind spot: the
NIC itself is a shared resource. Three attacks, one per NIC resource
(:mod:`repro.workloads.tenants`), are aimed at a monitored back-end
while every scheme polls it:

* ``qp-exhaust`` — queue-pair churn floods the NIC's bounded QP table
  and drags never-seen contexts through the ICM cache;
* ``cache-thrash`` — a working-set walk larger than the ICM cache makes
  *other* tenants' verbs (including monitoring reads) pay PCIe refill
  penalties;
* ``bandwidth-hog`` — open-loop large reads monopolise the victim NIC's
  DMA engine and egress port.

Each cell of the matrix is one (scheme, attack, defense) combination on
an otherwise idle cluster: the tenancy plane is always on (it is the
resource model), the *defense* loop — detect by attempted rate, then
throttle, then quarantine — is the toggled arm. Rows split the run into
three windows (before the attack, under the attack, final quarter) so a
defense that works shows up as the final window recovering toward the
pre-attack baseline while defense-off stays degraded.

Expected shape (asserted in ``benchmarks/test_tenancy.py``): the
one-sided RDMA schemes degrade under every attack (their probes ride
the abused NIC resources directly); the socket schemes — whose probes
never touch the RDMA path — are only reliably hurt by the bandwidth
hog, which congests the shared port for everyone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult
from repro.hw.cluster import build_cluster
from repro.monitoring.frontend import FrontendMonitor
from repro.monitoring.registry import ALL_SCHEME_NAMES, create_scheme
from repro.sim.units import MICROSECOND, MILLISECOND
from repro.workloads.tenants import (
    spawn_cache_thrash_walker,
    spawn_qp_churn_flood,
    spawn_read_blaster,
)

#: attack arm -> spawner; ``none`` is the clean baseline
ATTACKS: Sequence[str] = ("none", "qp-exhaust", "cache-thrash", "bandwidth-hog")

DEFAULT_DURATION: int = 240 * MILLISECOND
DEFAULT_POLL: int = 1 * MILLISECOND


def _cell_config(defense: bool) -> SimConfig:
    cfg = SimConfig(num_backends=3)
    cfg.tenancy.enabled = True
    # Small enough that the thrash walker's 128-region working set (and
    # the QP flood's churn) actually evict monitoring contexts.
    cfg.tenancy.icm_entries = 32
    cfg.tenancy.defense = defense
    cfg.tenancy.defense_interval = 5 * MILLISECOND
    return cfg


def _spawn_attack(sim, attack: str, start_after: int) -> None:
    src, target = sim.clients, sim.backends[0]
    if attack == "none":
        return
    if attack == "qp-exhaust":
        spawn_qp_churn_flood(sim, src, target, start_after=start_after)
    elif attack == "cache-thrash":
        spawn_cache_thrash_walker(sim, src, target, regions=128,
                                  interval=20 * MICROSECOND,
                                  start_after=start_after)
    elif attack == "bandwidth-hog":
        spawn_read_blaster(sim, src, target, message_bytes=65536,
                           interval=50 * MICROSECOND, flows=2,
                           start_after=start_after)
    else:
        raise ValueError(f"unknown attack {attack!r}; choose from {ATTACKS}")


def _window_stats(records, lo: int, hi: int) -> Dict[str, float]:
    """p95 staleness/latency over records completing in [lo, hi)."""
    stale = [r.info.staleness for r in records
             if r.ok and lo <= r.completed_at < hi]
    lat = [r.latency for r in records if lo <= r.completed_at < hi]
    return {
        "staleness_p95_ms": percentile(stale, 95) / 1e6 if stale else 0.0,
        "latency_p95_us": percentile(lat, 95) / 1e3 if lat else 0.0,
        "samples": len(stale),
    }


def run_cell(
    scheme_name: str,
    attack: str,
    defense: bool,
    duration: int = DEFAULT_DURATION,
    poll_interval: int = DEFAULT_POLL,
) -> Dict[str, object]:
    """One matrix cell: poll through ``scheme_name`` while ``attack`` runs.

    The attack starts at ``duration // 4``, so the first quarter is the
    scheme's clean baseline, the middle half is the degradation window,
    and the final quarter shows whether the defense restored service.
    Returns window stats plus the defense loop's own account of itself
    (detection latency, sanctions taken, denied attacker operations).
    """
    cfg = _cell_config(defense)
    sim = build_cluster(cfg)
    scheme = create_scheme(scheme_name, sim, interval=poll_interval)
    monitor = FrontendMonitor(scheme, interval=poll_interval)
    monitor.start()
    attack_start = duration // 4
    _spawn_attack(sim, attack, attack_start)
    sim.run(duration)

    plane = sim.tenancy
    assert plane is not None
    records = scheme.records
    row: Dict[str, object] = {
        "scheme": scheme_name,
        "attack": attack,
        "defense": defense,
        "polls": len(records),
    }
    for window, (lo, hi) in {
        "pre": (0, attack_start),
        "attacked": (attack_start, 3 * duration // 4),
        "final": (3 * duration // 4, duration + 1),
    }.items():
        for key, value in _window_stats(records, lo, hi).items():
            row[f"{window}_{key}"] = value

    throttles = [a for a in plane.actions if a["kind"] == "throttle"]
    quarantines = [a for a in plane.actions if a["kind"] == "quarantine"]
    row["detect_ms"] = ((throttles[0]["t"] - attack_start) / 1e6
                        if throttles else -1.0)
    row["quarantines"] = len(quarantines)
    # ICM refill penalties the *monitoring plane itself* paid — the
    # resource-level damage signal for schemes whose staleness is
    # interval-dominated (push/async) and hides µs-scale penalties.
    row["system_icm_misses"] = plane.registry.system.icm_misses
    attacker = next((t for t in plane.registry if not t.is_system), None)
    row["attacker_denied_ops"] = attacker.denied_ops if attacker else 0
    row["attacker_posted_mb"] = (
        attacker.posted_bytes / 1e6 if attacker else 0.0)
    return row


def run(
    schemes: Optional[Sequence[str]] = None,
    attacks: Sequence[str] = ATTACKS,
    duration: int = DEFAULT_DURATION,
    poll_interval: int = DEFAULT_POLL,
    defense_arms: Sequence[bool] = (False, True),
) -> ExperimentResult:
    """The full matrix: schemes x attacks x defense off/on.

    ``tables`` is keyed ``"{scheme}:{attack}:{off|on}"``; ``series``
    carries per-scheme attacked-window p95 staleness for the defense-off
    arm (the raw damage) and the final-window p95 for defense-on (the
    recovery), aligned with ``xs = attacks``.
    """
    if schemes is None:
        schemes = tuple(ALL_SCHEME_NAMES)
    result = ExperimentResult(
        name="tenant_matrix",
        params={"duration": duration, "poll_interval": poll_interval,
                "defense_arms": list(defense_arms)},
        xs=list(attacks),
    )
    series: Dict[str, List[float]] = {}
    for scheme_name in schemes:
        for arm in defense_arms:
            tag = "on" if arm else "off"
            series[f"{scheme_name}_{tag}_attacked_p95_ms"] = []
            series[f"{scheme_name}_{tag}_final_p95_ms"] = []
    for attack in attacks:
        for scheme_name in schemes:
            for arm in defense_arms:
                row = run_cell(scheme_name, attack, arm,
                               duration=duration, poll_interval=poll_interval)
                tag = "on" if arm else "off"
                result.tables[f"{scheme_name}:{attack}:{tag}"] = row
                series[f"{scheme_name}_{tag}_attacked_p95_ms"].append(
                    row["attacked_staleness_p95_ms"])
                series[f"{scheme_name}_{tag}_final_p95_ms"].append(
                    row["final_staleness_p95_ms"])
    result.series = series
    result.notes = (
        "p95 monitoring staleness (ms) per attack arm. One-sided RDMA "
        "schemes ride the abused NIC resources, so every attack "
        "degrades their attacked-window staleness; socket schemes are "
        "only reliably hurt by the bandwidth hog. With the defense on, "
        "the tenancy plane throttles then quarantines the offender and "
        "the final-window staleness recovers toward the pre-attack "
        "baseline; defense-off stays degraded to the end of the run."
    )
    return result
