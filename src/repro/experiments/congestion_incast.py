"""Incast at the aggregation point: what congestion control buys.

The federation root is a built-in incast: every root period, N leaf
snapshot reads converge on one front-end port. On a quiet fabric that
is harmless (the reads are small and the switch is non-blocking), but
production fabrics are *shared* — here a set of open-loop tenant flows
(:func:`~repro.workloads.background.spawn_incast_tenants`) blasts the
same port with one-sided writes at an offered load proportional to N.

Three arms per cluster size:

* ``uncontrolled`` — congestion modeled, no reaction (no PFC, no
  DCQCN): the victim port's queue grows without bound, every snapshot
  read's response queues behind the backlog, and the root's view age
  grows **super-linearly in N** (backlog rate ∝ offered − capacity).
* ``pfc`` — pause frames alone: the queue is bounded at ``pfc_xoff``,
  but pushback is per-*port*, so innocent leaf responses get paused
  behind tenant traffic (classic PFC head-of-line victims).
* ``dcqcn`` — ECN marking + per-flow rate control: tenant flows are
  cut to the link's capacity, the queue hovers at the marking knee and
  monitoring freshness stays within a small constant of the period.

``run_scheme_matrix`` asks the complementary question: with the fabric
congested (DCQCN arm), how do the paper's six monitoring schemes and
the federated design fare on freshness — and what does the shared
bottleneck do to RUBiS tail latency?
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import mean, percentile
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.federation import deploy_federation
from repro.hw.cluster import build_cluster
from repro.monitoring.registry import SCHEME_NAMES
from repro.sim.units import MICROSECOND, MILLISECOND, SECOND
from repro.workloads.background import spawn_incast_tenants
from repro.workloads.rubis import RubisWorkload

DEFAULT_SIZES: Sequence[int] = (4, 8, 16)
DEFAULT_INTERVAL: int = 1 * MILLISECOND

#: arm -> (pfc, dcqcn); all three model congestion, they differ in the
#: control loop that pushes back on it
ARMS: Dict[str, tuple] = {
    "uncontrolled": (False, False),
    "pfc": (True, False),
    "dcqcn": (True, True),
}

#: one tenant flow per back-end at 8 KiB / 50 µs ≈ 0.16 B/ns each, so
#: offered load crosses the 1 B/ns link at ~6 flows: N = 4 is
#: subcritical, N = 8 and 16 are 1.3x and 2.6x overloaded
TENANT_BYTES: int = 8192
TENANT_INTERVAL: int = 50 * MICROSECOND


def _arm_config(n: int, arm: str, interval: int,
                monitor_priority: bool = False) -> SimConfig:
    pfc, dcqcn = ARMS[arm]
    cfg = SimConfig(num_backends=n)
    cfg.federation.enabled = True
    cfg.federation.leaf_interval = interval
    cfg.federation.root_interval = interval
    cfg.congestion.enabled = True
    cfg.congestion.pfc = pfc
    cfg.congestion.dcqcn = dcqcn
    cfg.congestion.monitor_priority = monitor_priority
    return cfg


def run_incast(
    n: int,
    arm: str,
    interval: int = DEFAULT_INTERVAL,
    duration: int = 50 * MILLISECOND,
    flows_per_source: int = 1,
    monitor_priority: bool = False,
) -> Dict[str, float]:
    """One incast point: N back-ends blasting the federation root's port.

    Returns root-view freshness and victim-port switch statistics. Two
    freshness metrics are reported: per-round *staleness* (delivery age
    when a snapshot lands, sampled only when a round completes) and
    wall-clock *view age* (how old the root's current view is, sampled
    every root period by a zero-cost observer). The distinction matters
    for the uncontrolled arm: once the backlog stalls the reads, rounds
    stop completing, so staleness samples dry up while the view age
    keeps climbing — view age is the honest divergence measure.

    ``monitor_priority`` puts monitoring QPs in a PFC priority class
    (``cfg.congestion.monitor_priority``): pause frames aimed at tenant
    traffic no longer stall probe flows, so the ``pfc`` arm's
    head-of-line victimization of innocent monitoring disappears.
    """
    cfg = _arm_config(n, arm, interval, monitor_priority=monitor_priority)
    sim = build_cluster(cfg)
    fed = deploy_federation(sim)
    spawn_incast_tenants(
        sim, sim.frontend, sim.backends,
        flows_per_source=flows_per_source,
        message_bytes=TENANT_BYTES, interval=TENANT_INTERVAL,
    )
    staleness: List[int] = []
    view_age: List[int] = []

    def observer(epoch: int, latest: dict) -> None:
        for info in latest.values():
            staleness.append(info.staleness)

    def sample_age(_ev=None) -> None:
        # Pure observation on the event wheel — no task, no CPU time,
        # so the measurement cannot perturb any arm.
        latest = fed.root.latest
        if latest:
            now = sim.env.now
            view_age.append(max(now - info.collected_at
                                for info in latest.values()))
        t = sim.env.timeout(interval)
        assert t.callbacks is not None
        t.callbacks.append(sample_age)

    fed.root.round_observer = observer
    sample_age()
    sim.run(duration)
    plane = sim.congestion
    assert plane is not None
    victim = plane.switch.stats().get(sim.frontend.nic.name, {})
    out = {
        "n": n,
        "arm": arm,
        "staleness_mean_ms": mean(staleness) / 1e6 if staleness else 0.0,
        "staleness_p95_ms": percentile(staleness, 95) / 1e6 if staleness else 0.0,
        "view_age_p95_ms": percentile(view_age, 95) / 1e6 if view_age else 0.0,
        "view_age_final_ms": view_age[-1] / 1e6 if view_age else 0.0,
        "samples": len(staleness),
        "root_rounds": len(fed.root.rounds),
        "root_round_mean_us": mean(fed.root.rounds) / 1e3,
        "peak_depth_kb": victim.get("peak_depth", 0) / 1024.0,
        "mark_rate": victim.get("mark_rate", 0.0),
        "pauses": victim.get("pauses", 0),
        "pause_ms": victim.get("pause_ns", 0) / 1e6,
        "cnps": plane.cnps_delivered,
    }
    if plane._flows:
        out["min_flow_rate"] = min(
            f.rate for f in plane._flows.values())
    return out


def run(
    sizes: Sequence[int] = DEFAULT_SIZES,
    interval: int = DEFAULT_INTERVAL,
    duration: int = 50 * MILLISECOND,
    arms: Sequence[str] = tuple(ARMS),
) -> ExperimentResult:
    """Incast sweep: root-view staleness per arm across cluster sizes."""
    result = ExperimentResult(
        name="congestion_incast",
        params={"interval": interval, "duration": duration,
                "tenant_bytes": TENANT_BYTES,
                "tenant_interval": TENANT_INTERVAL},
        xs=list(sizes),
    )
    series: Dict[str, List[float]] = {}
    for arm in arms:
        series[f"{arm}_staleness_p95_ms"] = []
        series[f"{arm}_view_age_final_ms"] = []
        series[f"{arm}_peak_depth_kb"] = []
    for n in sizes:
        for arm in arms:
            row = run_incast(n, arm, interval=interval, duration=duration)
            result.tables[f"{arm}:{n}"] = row
            series[f"{arm}_staleness_p95_ms"].append(row["staleness_p95_ms"])
            series[f"{arm}_view_age_final_ms"].append(row["view_age_final_ms"])
            series[f"{arm}_peak_depth_kb"].append(row["peak_depth_kb"])
    result.series = series
    result.notes = (
        "Root-view p95 staleness (ms) under open-loop incast at the "
        "aggregation port. Uncontrolled: backlog ∝ (offered − capacity) "
        "x time, so staleness grows super-linearly in N once the link "
        "saturates. PFC bounds the queue but pauses innocent senders. "
        "DCQCN cuts tenant rates at the ECN knee and keeps freshness "
        "within a small constant of the poll period."
    )
    return result


# ----------------------------------------------------------------------
# scheme matrix under a congested fabric
# ----------------------------------------------------------------------
def run_one_scheme(
    scheme_name: str,
    duration: int = 2 * SECOND,
    poll_interval: int = 10 * MILLISECOND,
    num_backends: int = 4,
    workers: int = 32,
    num_clients: int = 64,
    tenant_flows_per_source: int = 2,
) -> Dict[str, float]:
    """RUBiS + heavy tenants + congestion (DCQCN arm) for one scheme.

    ``scheme_name`` may be any registry scheme or ``"federated"`` for
    the two-level fabric. Returns monitoring freshness and RUBiS tail
    latency on the shared, congested fabric.
    """
    federated = scheme_name == "federated"
    cfg = SimConfig(num_backends=num_backends)
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    cfg.congestion.enabled = True
    if federated:
        cfg.federation.enabled = True
        cfg.federation.leaf_interval = poll_interval
        cfg.federation.root_interval = poll_interval
    app = deploy_rubis_cluster(
        cfg,
        scheme_name="rdma-sync" if federated else scheme_name,
        poll_interval=poll_interval,
        workers=workers,
    )
    spawn_incast_tenants(
        app.sim, app.sim.frontend, app.sim.backends,
        flows_per_source=tenant_flows_per_source,
        message_bytes=TENANT_BYTES, interval=TENANT_INTERVAL,
    )
    staleness: List[int] = []
    if federated:
        assert app.federation is not None

        def observer(epoch: int, latest: dict) -> None:
            for info in latest.values():
                staleness.append(info.staleness)

        app.federation.root.round_observer = observer
    workload = RubisWorkload(
        app.sim, app.dispatcher,
        num_clients=num_clients, think_time=3 * MILLISECOND,
    )
    workload.start()
    app.run(duration)
    if not federated:
        staleness = [r.info.staleness for r in app.scheme.records if r.ok]
    times_ms = [t / 1e6 for t in app.dispatcher.stats.response_times()]
    plane = app.sim.congestion
    assert plane is not None
    victim = plane.switch.stats().get(app.sim.frontend.nic.name, {})
    return {
        "scheme": scheme_name,
        "staleness_mean_ms": mean(staleness) / 1e6 if staleness else 0.0,
        "staleness_p95_ms": percentile(staleness, 95) / 1e6 if staleness else 0.0,
        "rubis_p99_ms": percentile(times_ms, 99) if times_ms else 0.0,
        "rubis_max_ms": max(times_ms) if times_ms else 0.0,
        "requests": len(times_ms),
        "throughput_rps": app.dispatcher.stats.throughput(duration),
        "mark_rate": victim.get("mark_rate", 0.0),
        "cnps": plane.cnps_delivered,
    }


def run_scheme_matrix(
    schemes: Optional[Sequence[str]] = None,
    duration: int = 2 * SECOND,
    **overrides,
) -> ExperimentResult:
    """All six schemes plus the federated design on a congested fabric."""
    if schemes is None:
        schemes = tuple(SCHEME_NAMES) + ("federated",)
    result = ExperimentResult(
        name="congestion_scheme_matrix",
        params={"duration": duration, **overrides},
        xs=list(schemes),
    )
    series: Dict[str, List[float]] = {
        "staleness_p95_ms": [], "rubis_p99_ms": [], "throughput_rps": [],
    }
    for scheme_name in schemes:
        row = run_one_scheme(scheme_name, duration=duration, **overrides)
        result.tables[scheme_name] = row
        series["staleness_p95_ms"].append(row["staleness_p95_ms"])
        series["rubis_p99_ms"].append(row["rubis_p99_ms"])
        series["throughput_rps"].append(row["throughput_rps"])
    result.series = series
    result.notes = (
        "Monitoring freshness and RUBiS tails with heavy tenant traffic "
        "sharing the front-end port (DCQCN arm). One-sided schemes keep "
        "their load-independence on the *remote* side, but every reply "
        "crosses the congested port — rate control is what keeps both "
        "freshness and application tails bounded."
    )
    return result
