"""Table 1 — RUBiS per-query response times under the five schemes.

Paper: eight back-ends serve RUBiS behind the WebSphere-style balancer;
per-query-class average and maximum response times are reported for
Socket-Async, Socket-Sync, RDMA-Async, RDMA-Sync and e-RDMA-Sync.
Expected shape: RDMA-Sync and e-RDMA-Sync lowest on both columns, with
the biggest wins on maximum response time (the paper quotes ~90 % on
Browse-class queries), and e-RDMA-Sync ≤ RDMA-Sync throughout.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.stats import summarize
from repro.config import SimConfig
from repro.experiments.common import ExperimentResult, deploy_rubis_cluster
from repro.monitoring.registry import SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RUBIS_QUERIES, RubisWorkload

#: calibrated load point (see DESIGN.md §5 / the calibration history):
#: ~85-90 % busy back-ends with bursty sessions, where monitoring
#: freshness and perturbation actually matter
DEFAULTS = dict(
    num_backends=4,
    workers=32,
    num_clients=96,
    think_time=3 * MILLISECOND,
    demand_cv=0.4,
    burst_length=10,
    idle_factor=8,
)


def run_one_scheme(
    scheme_name: str,
    duration: int = 10 * SECOND,
    poll_interval: int = 50 * MILLISECOND,
    **overrides,
) -> Dict[str, Dict[str, float]]:
    """One RUBiS run; returns {query: {avg_ms, max_ms, count}} + totals."""
    params = {**DEFAULTS, **overrides}
    cfg = SimConfig(num_backends=params["num_backends"])
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    app = deploy_rubis_cluster(
        cfg, scheme_name=scheme_name, poll_interval=poll_interval,
        workers=params["workers"],
    )
    workload = RubisWorkload(
        app.sim, app.dispatcher,
        num_clients=params["num_clients"],
        think_time=params["think_time"],
        demand_cv=params["demand_cv"],
        burst_length=params["burst_length"],
        idle_factor=params["idle_factor"],
    )
    workload.start()
    app.run(duration)
    stats = app.dispatcher.stats
    rows: Dict[str, Dict[str, float]] = {}
    for q in RUBIS_QUERIES:
        times_ms = [t / 1e6 for t in stats.response_times(q.name)]
        s = summarize(times_ms)
        rows[q.name] = {"avg_ms": s["mean"], "p99_ms": s["p99"],
                        "max_ms": s["max"], "count": s["count"]}
    all_ms = [t / 1e6 for t in stats.response_times()]
    s = summarize(all_ms)
    rows["__all__"] = {
        "avg_ms": s["mean"],
        "p99_ms": s["p99"],
        "max_ms": s["max"],
        "count": s["count"],
        "throughput_rps": stats.throughput(duration),
    }
    return rows


def run(
    schemes: Sequence[str] = tuple(SCHEME_NAMES),
    duration: int = 10 * SECOND,
    **overrides,
) -> ExperimentResult:
    """Full Table 1 reproduction."""
    result = ExperimentResult(
        name="table1-rubis",
        params={"duration_ns": duration, **DEFAULTS, **overrides},
        xs=[q.name for q in RUBIS_QUERIES],
    )
    for scheme_name in schemes:
        rows = run_one_scheme(scheme_name, duration=duration, **overrides)
        result.tables[scheme_name] = rows
        result.series[f"{scheme_name}:avg_ms"] = [
            rows[q.name]["avg_ms"] for q in RUBIS_QUERIES
        ]
        result.series[f"{scheme_name}:max_ms"] = [
            rows[q.name]["max_ms"] for q in RUBIS_QUERIES
        ]
    result.notes = (
        "Per-query avg/max response time (ms) per scheme. Expected: "
        "rdma-sync / e-rdma-sync lowest, largest relative win on max "
        "(paper Table 1)."
    )
    return result
