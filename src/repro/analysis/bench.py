"""Baseline-artifact plumbing shared by the bench suite and run_all.

``results/BENCH_*.json`` files are the repo's performance baselines:
every one carries a ``schema_version`` + ``run`` provenance block so
downstream tooling can reject shapes it does not understand and trace
a regression back to the interpreter/commit that produced it. The
pytest benchmark suite (``benchmarks/conftest.py``) and the
multiprocess experiment runner (:mod:`repro.experiments.run_all`) both
write through here so the header never forks.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys
from typing import Optional

#: bump when the shape of the BENCH_*.json baselines changes
BENCH_SCHEMA_VERSION = 2


def _git_commit(repo_root: Optional[pathlib.Path] = None) -> str:
    root = repo_root or pathlib.Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


def run_metadata() -> dict:
    """Provenance block stamped into every baseline artifact."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "commit": _git_commit(),
        "argv_module": pathlib.Path(sys.argv[0]).name if sys.argv else "",
    }


def write_bench(results_dir: pathlib.Path, experiment: str,
                payload: dict, *, name: Optional[str] = None) -> pathlib.Path:
    """Write ``results/BENCH_<name>.json`` with the schema header.

    ``name`` defaults to ``experiment`` (BENCH_core.json predates the
    convention and keeps its historical file name).
    """
    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench-baseline",
        "experiment": experiment,
        "run": run_metadata(),
        **payload,
    }
    path = pathlib.Path(results_dir) / f"BENCH_{name or experiment}.json"
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n")
    return path
