"""Generic time-series collection.

Times within one series are appended monotonically (simulation time
never goes backwards), which :meth:`TimeSeries.add` asserts. That
invariant lets :meth:`window_mean` and :meth:`resample` use binary
search / vectorised slicing instead of scanning the whole series per
call — the old O(n)-per-window behaviour made repeated windowed
reductions over long runs quadratic.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

import numpy as np


class TimeSeries:
    """A named bag of (time, value) series with window reductions.

    Internally each series is a pair of parallel lists (times, values)
    so reductions can binary-search the sorted times and slice values
    without materialising tuples.
    """

    def __init__(self) -> None:
        self._times: Dict[str, List[int]] = {}
        self._vals: Dict[str, List[float]] = {}

    def add(self, name: str, time: int, value: float) -> None:
        times = self._times.get(name)
        if times is None:
            times = self._times[name] = []
            self._vals[name] = []
        if times and time < times[-1]:
            raise ValueError(
                f"series {name!r}: non-monotonic append "
                f"(t={time} after t={times[-1]})"
            )
        times.append(time)
        self._vals[name].append(value)

    def get(self, name: str) -> List[Tuple[int, float]]:
        return list(zip(self._times.get(name, []), self._vals.get(name, [])))

    def names(self) -> List[str]:
        return sorted(self._times)

    def values(self, name: str) -> np.ndarray:
        return np.array(self._vals.get(name, []), dtype=np.float64)

    def times(self, name: str) -> np.ndarray:
        return np.array(self._times.get(name, []), dtype=np.int64)

    def window_mean(self, name: str, start: int, end: int) -> float:
        """Mean of samples with start <= t < end (0.0 when empty).

        O(log n) bisection on the sorted times plus an O(window) slice —
        independent of samples outside the window.
        """
        times = self._times.get(name)
        if not times:
            return 0.0
        lo = bisect_left(times, start)
        hi = bisect_left(times, end, lo=lo)
        if hi <= lo:
            return 0.0
        window = self._vals[name][lo:hi]
        return float(sum(window) / len(window))

    def resample(self, name: str, step: int, start: int = 0, end: int | None = None):
        """Step-hold resampling onto a uniform grid; returns (times, values)."""
        times_list = self._times.get(name)
        if not times_list:
            return np.array([], dtype=np.int64), np.array([])
        times = np.array(times_list, dtype=np.int64)
        vals = np.array(self._vals[name], dtype=np.float64)
        if end is None:
            end = int(times[-1])
        grid = np.arange(start, end + 1, step, dtype=np.int64)
        idx = np.clip(np.searchsorted(times, grid, side="right") - 1, 0, len(vals) - 1)
        return grid, vals[idx]

    def __len__(self) -> int:
        return len(self._times)
