"""Generic time-series collection."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class TimeSeries:
    """A named bag of (time, value) series with window reductions."""

    def __init__(self) -> None:
        self._data: Dict[str, List[Tuple[int, float]]] = {}

    def add(self, name: str, time: int, value: float) -> None:
        self._data.setdefault(name, []).append((time, value))

    def get(self, name: str) -> List[Tuple[int, float]]:
        return list(self._data.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._data)

    def values(self, name: str) -> np.ndarray:
        return np.array([v for _, v in self._data.get(name, [])], dtype=np.float64)

    def times(self, name: str) -> np.ndarray:
        return np.array([t for t, _ in self._data.get(name, [])], dtype=np.int64)

    def window_mean(self, name: str, start: int, end: int) -> float:
        """Mean of samples with start <= t < end (0.0 when empty)."""
        vals = [v for t, v in self._data.get(name, []) if start <= t < end]
        return float(np.mean(vals)) if vals else 0.0

    def resample(self, name: str, step: int, start: int = 0, end: int | None = None):
        """Step-hold resampling onto a uniform grid; returns (times, values)."""
        series = self._data.get(name, [])
        if not series:
            return np.array([], dtype=np.int64), np.array([])
        times = np.array([t for t, _ in series], dtype=np.int64)
        vals = np.array([v for _, v in series], dtype=np.float64)
        if end is None:
            end = int(times[-1])
        grid = np.arange(start, end + 1, step, dtype=np.int64)
        idx = np.clip(np.searchsorted(times, grid, side="right") - 1, 0, len(vals) - 1)
        return grid, vals[idx]

    def __len__(self) -> int:
        return len(self._data)
