"""ASCII rendering of tables and series, in the paper's shapes."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in cols]

    def fmt_row(cells) -> str:
        return " | ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render one or more series against a shared x axis."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            value = series[name][i]
            row.append(fmt.format(value) if isinstance(value, float) else value)
        rows.append(row)
    return format_table(headers, rows, title=title)
