"""Small statistics helpers used by experiments and benches."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return float(np.mean(values)) if len(values) else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100); 0.0 for an empty sequence."""
    if not len(values):
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(values, q))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / p99 / max / min / count."""
    if not len(values):
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0, "min": 0.0}
    arr = np.asarray(values, dtype=np.float64)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
        "min": float(arr.min()),
    }


def deviation_series(
    reported: Sequence[Tuple[int, float]],
    truth: Sequence[Tuple[int, float]],
) -> List[Tuple[int, float]]:
    """Absolute deviation of each report against the truth at that time.

    ``truth`` must be time-sorted; each report at time t is compared
    against the latest truth sample at or before t (step interpolation).
    """
    if not truth:
        return []
    t_times = np.array([t for t, _ in truth], dtype=np.int64)
    t_vals = np.array([v for _, v in truth], dtype=np.float64)
    out: List[Tuple[int, float]] = []
    for rt, rv in reported:
        idx = int(np.searchsorted(t_times, rt, side="right")) - 1
        if idx < 0:
            idx = 0
        out.append((rt, abs(rv - float(t_vals[idx]))))
    return out
