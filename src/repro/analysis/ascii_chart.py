"""Terminal line charts for experiment series.

The repository is terminal-first (no plotting dependencies), so the
benchmark outputs render figures as ASCII charts alongside the numeric
tables — close enough to the paper's figures to eyeball the shapes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: glyphs assigned to series in order
MARKERS = "*o+x#@%&"


def ascii_bars(
    rows: Sequence[Tuple[str, float]],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart: one labelled bar per (label, value) row.

    The flamegraph-style breakdown renderer used by
    :func:`repro.tracing.analysis.flame` — bars are scaled to the
    largest value, labels are right-padded to align the bars.
    """
    if not rows:
        return title or "(no data)"
    top = max(v for _, v in rows)
    label_w = min(32, max(len(label) for label, _ in rows))
    lines: List[str] = [title] if title else []
    for label, value in rows:
        filled = 0 if top <= 0 else round(value / top * width)
        bar = "#" * filled + "." * (width - filled)
        suffix = f" {value:,.1f}{(' ' + unit) if unit else ''}"
        lines.append(f"{label[:label_w]:<{label_w}} |{bar}|{suffix}")
    return "\n".join(lines)


def ascii_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render one or more series as an ASCII line chart.

    ``xs`` are treated as ordinal positions (evenly spaced), which suits
    the paper's swept parameters (thread counts, granularities, α).
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two x points")
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} length {len(ys)} != {n} x points")
    if width < n or height < 3:
        raise ValueError("chart too small")

    import math

    def transform(v: float) -> float:
        if log_y:
            return math.log10(max(v, 1e-12))
        return v

    all_vals = [transform(v) for ys in series.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    xpos = [round(i * (width - 1) / (n - 1)) for i in range(n)]

    for si, (name, ys) in enumerate(series.items()):
        marker = MARKERS[si % len(MARKERS)]
        pts = []
        for i, v in enumerate(ys):
            row = height - 1 - round((transform(v) - lo) / (hi - lo) * (height - 1))
            pts.append((xpos[i], row))
        # connect consecutive points with interpolated marks
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(abs(x1 - x0), abs(y1 - y0), 1)
            for s in range(steps + 1):
                x = round(x0 + (x1 - x0) * s / steps)
                y = round(y0 + (y1 - y0) * s / steps)
                if grid[y][x] == " ":
                    grid[y][x] = "."
        for x, y in pts:
            grid[y][x] = marker

    def fmt_val(v: float) -> str:
        if log_y:
            v = 10 ** v
        if abs(v) >= 1000:
            return f"{v:.0f}"
        return f"{v:.4g}"

    lines = []
    if title:
        lines.append(title)
    top_label = fmt_val(hi).rjust(10)
    bottom_label = fmt_val(lo).rjust(10)
    for r, row in enumerate(grid):
        label = top_label if r == 0 else (bottom_label if r == height - 1 else " " * 10)
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * 10 + "/" + "-" * width
    lines.append(axis)
    x_line = [" "] * (width + 11)
    for i, x in enumerate(xs):
        pos = 11 + xpos[i]
        text = str(x)
        start = min(max(0, pos - len(text) // 2), width + 11 - len(text))
        for j, ch in enumerate(text):
            x_line[start + j] = ch
    lines.append("".join(x_line).rstrip())
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{y_label + '  ' if y_label else ''}legend: {legend}")
    return "\n".join(lines)
