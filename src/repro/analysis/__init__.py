"""Measurement helpers: statistics, ground truth, time series, reports."""

from repro.analysis.stats import (
    deviation_series,
    mean,
    percentile,
    summarize,
)
from repro.analysis.truth import GroundTruthSampler
from repro.analysis.collector import TimeSeries
from repro.analysis.report import format_table, format_series

__all__ = [
    "GroundTruthSampler",
    "TimeSeries",
    "deviation_series",
    "format_series",
    "format_table",
    "mean",
    "percentile",
    "summarize",
]
