"""Ground-truth sampling (the paper's fine-granularity kernel module).

The accuracy experiment (§5.1.3, Fig 5) compares what each scheme
*reports* against the *actual* load at that moment. In the paper a
kernel module samples truth at fine granularity; the simulator can do
strictly better — :class:`GroundTruthSampler` reads the exact scheduler
state at sampling instants with zero perturbation, and
:meth:`GroundTruthSampler.probe` evaluates truth at any precise time
(used to judge a report at its arrival instant).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node


class GroundTruthSampler:
    """Zero-cost periodic sampler of a node's true load."""

    def __init__(self, node: "Node", interval: int) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.node = node
        self.interval = interval
        #: metric name -> [(time, value)]
        self.series: Dict[str, List[Tuple[int, float]]] = {
            "nr_threads": [],
            "nr_running": [],
            "runq_load": [],
            "busy_cpus": [],
        }
        self._stopped = False
        node.env.process(self._loop(), name=f"truth:{node.name}")

    def stop(self) -> None:
        self._stopped = True

    def _loop(self):
        env = self.node.env
        while not self._stopped:
            yield env.timeout(self.interval)
            probe = self.probe()
            for key, value in probe.items():
                self.series[key].append((env.now, value))

    # ------------------------------------------------------------------
    def probe(self) -> Dict[str, float]:
        """Exact instantaneous truth (usable at arbitrary times)."""
        sched = self.node.sched
        return {
            "nr_threads": float(sched.nr_threads()),
            "nr_running": float(sched.nr_running()),
            "runq_load": float(self.node.loadacct.fast_load()),
            "busy_cpus": float(sched.busy_cpus()),
        }
