"""The deterministic fault-injection plane.

:class:`FaultPlane` interprets a :class:`~repro.faults.schedule.FaultSchedule`
against a built cluster. It owns one named RNG stream (``"faults"``,
from the cluster's :class:`~repro.sim.rng.RngRegistry`) for every
stochastic decision — packet loss, probabilistic verb NAKs — so that
same-seed runs are bit-identical and adding the plane never perturbs the
draws any other component sees.

Injection points (all duck-typed attribute hooks, zero cost when idle):

* :meth:`on_transmit` — consulted by :meth:`repro.hw.fabric.Fabric.transmit`
  per packet: partitions and per-link latency/bandwidth/loss degradation;
* :meth:`on_verb` — consulted at the *target NIC* of every RDMA
  read/write/atomic: probabilistic NAK injection (RNR retry et al.);
* node faults call straight into ``Node.fail`` / ``Node.recover``;
* MR invalidation deregisters matching registrations from the target's
  protection domain (stale rkeys then NAK with INVALID_RKEY);
* NIC degradation sets ``Nic.fault_dma_factor``.

**Determinism contract**: with an empty schedule ``install()`` registers
the hooks but spawns no driver process, schedules no events and draws
nothing from the RNG stream — runs are bit-identical to a cluster
without the plane (proved by ``tests/properties/test_fault_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.faults.schedule import (
    CrashNode,
    DegradeLink,
    DegradeNic,
    FaultEvent,
    FaultSchedule,
    HangNode,
    InvalidateMr,
    Partition,
    RecoverNode,
    VerbFault,
)
if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import ClusterSim
    from repro.hw.nic import Nic
    from repro.hw.node import Node
    from repro.transport.verbs import WcStatus


#: injectable completion statuses; resolved to WcStatus lazily because
#: transport.verbs transitively imports this package
_VERB_STATUS_NAMES = (
    "rnr-retry", "remote-access-error", "invalid-rkey", "length-error",
)
_VERB_STATUS: Dict[str, "WcStatus"] = {}


def _verb_status(name: str) -> "WcStatus":
    if not _VERB_STATUS:
        from repro.transport.verbs import WcStatus

        _VERB_STATUS.update({
            "rnr-retry": WcStatus.RNR_RETRY,
            "remote-access-error": WcStatus.REMOTE_ACCESS_ERROR,
            "invalid-rkey": WcStatus.INVALID_RKEY,
            "length-error": WcStatus.LENGTH_ERROR,
        })
    return _VERB_STATUS[name]


@dataclass(frozen=True)
class LinkVerdict:
    """Outcome of consulting the plane for one packet."""

    drop: bool = False
    latency_factor: float = 1.0
    bw_factor: float = 1.0


@dataclass
class FaultRecord:
    """One applied or revoked fault action (telemetry/tracing feed)."""

    time: int
    kind: str
    target: str
    #: back-end index of the target node (-1: front-end / link / group)
    backend: int = -1
    #: True when the fault was applied, False when revoked
    active: bool = True
    detail: str = ""


@dataclass
class _Action:
    """One timed step of the driver: apply or revoke one event."""

    time: int
    seq: int
    apply: bool
    event: FaultEvent = field(compare=False)

    def sort_key(self) -> Tuple[int, int]:
        return (self.time, self.seq)


class FaultPlane:
    """Deterministic fault injector for one cluster simulation."""

    def __init__(self, sim: "ClusterSim", schedule: Optional[FaultSchedule] = None) -> None:
        self.sim = sim
        self.env = sim.env
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.schedule.validate()
        self.rng = sim.rng.stream("faults")
        #: per-directed-link active degradations, keyed (src, dst) node names
        self._links: Dict[Tuple[str, str], List[DegradeLink]] = {}
        #: active partitions as (group_a, group_b) node-name sets
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self._partition_of: Dict[int, Tuple[Set[str], Set[str]]] = {}
        #: active verb faults per target node name
        self._verbs: Dict[str, List[VerbFault]] = {}
        #: fast-path guards: False means the hook is a single attr check
        self._net_active = False
        self._verb_active = False
        self._installed = False
        #: applied/revoked action log, in time order
        self.records: List[FaultRecord] = []
        #: observer called with each FaultRecord (telemetry hooks in here)
        self.on_event: Optional[Callable[[FaultRecord], None]] = None
        # counters
        self.applied = 0
        self.revoked = 0
        self.dropped_packets = 0
        self.naks_injected = 0
        self.mrs_invalidated = 0
        self._backend_index = {be.name: i for i, be in enumerate(sim.backends)}

    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[FaultRecord], None]) -> "FaultPlane":
        """Add an ``on_event`` listener, preserving any existing one.

        The multi-consumer form of the hook: telemetry, the federation
        topology's quarantine driver and experiment probes can all
        listen without clobbering each other (same chaining discipline
        as the telemetry pipeline's ``attach`` helpers).
        """
        previous = self.on_event
        if previous is None:
            self.on_event = fn
        else:
            def chained(record: FaultRecord) -> None:
                previous(record)
                fn(record)

            self.on_event = chained
        return self

    # ------------------------------------------------------------------
    def install(self) -> "FaultPlane":
        """Hook into the fabric; start the driver iff faults are scheduled."""
        if self._installed:
            raise RuntimeError("fault plane already installed")
        self._installed = True
        self.sim.fabric.faults = self
        self.sim.faults = self
        if not self.schedule.empty:
            actions = []
            for seq, event in enumerate(self.schedule):
                actions.append(_Action(event.at, seq, True, event))
                if event.until is not None:
                    actions.append(_Action(event.until, seq, False, event))
            actions.sort(key=_Action.sort_key)
            self.env.process(self._driver(actions), name="fault-driver")
        return self

    def _driver(self, actions: List[_Action]):
        for action in actions:
            if action.time > self.env.now:
                yield self.env.timeout(action.time - self.env.now)
            self._execute(action)

    # ------------------------------------------------------------------
    # schedule execution
    # ------------------------------------------------------------------
    def _execute(self, action: _Action) -> None:
        event = action.event
        if action.apply:
            self.applied += 1
            handler = self._APPLY[type(event)]
        else:
            self.revoked += 1
            handler = self._REVOKE[type(event)]
        handler(self, event)
        self._net_active = bool(self._links or self._partitions)
        self._verb_active = bool(self._verbs)
        self._note(event, active=action.apply)

    def _note(self, event: FaultEvent, active: bool) -> None:
        target = getattr(event, "node", "") or getattr(event, "src", "")
        if isinstance(event, Partition):
            target = " ".join(event.group_a) + " | " + " ".join(event.group_b)
        record = FaultRecord(
            time=self.env.now,
            kind=event.kind,
            target=target,
            backend=self._backend_index.get(getattr(event, "node", ""), -1),
            active=active,
            detail=event.describe(),
        )
        self.records.append(record)
        self.sim.tracer.emit(self.env.now, "fault",
                             f"{'apply' if active else 'revoke'} {event.describe()}")
        spans = self.sim.spans
        if spans is not None and spans.enabled:
            span = spans.start_trace(
                f"fault:{event.kind}", node=target or "fabric", component="faults",
                attrs={"active": active, "detail": event.describe()})
            spans.end(span)
        if self.on_event is not None:
            self.on_event(record)

    # -- node faults ----------------------------------------------------
    def _apply_crash(self, event: CrashNode) -> None:
        self._node(event.node).fail("crashed")

    def _apply_hang(self, event: HangNode) -> None:
        self._node(event.node).fail("hung")

    def _apply_recover(self, event: RecoverNode) -> None:
        self._node(event.node).recover()

    # -- link faults -----------------------------------------------------
    def _link_keys(self, event: DegradeLink):
        yield (event.src, event.dst)
        if event.symmetric:
            yield (event.dst, event.src)

    def _apply_link(self, event: DegradeLink) -> None:
        for key in self._link_keys(event):
            self._links.setdefault(key, []).append(event)

    def _revoke_link(self, event: DegradeLink) -> None:
        for key in self._link_keys(event):
            mods = self._links.get(key, [])
            if event in mods:
                mods.remove(event)
            if not mods:
                self._links.pop(key, None)

    def _apply_partition(self, event: Partition) -> None:
        entry = (set(event.group_a), set(event.group_b))
        self._partitions.append(entry)
        self._partition_of[id(event)] = entry

    def _revoke_partition(self, event: Partition) -> None:
        entry = self._partition_of.pop(id(event), None)
        if entry is not None and entry in self._partitions:
            self._partitions.remove(entry)

    # -- verb faults -----------------------------------------------------
    def _apply_verb(self, event: VerbFault) -> None:
        if event.status not in _VERB_STATUS_NAMES:
            raise ValueError(f"verb-nak: unknown status {event.status!r}")
        self._verbs.setdefault(event.node, []).append(event)

    def _revoke_verb(self, event: VerbFault) -> None:
        faults = self._verbs.get(event.node, [])
        if event in faults:
            faults.remove(event)
        if not faults:
            self._verbs.pop(event.node, None)

    def _apply_invalidate_mr(self, event: InvalidateMr) -> None:
        from repro.transport.verbs import ProtectionDomain

        pd = ProtectionDomain.for_node(self._node(event.node))
        victims = [h for h in pd.mrs.values() if h.region.name == event.region]
        for handle in victims:
            handle.deregister()
            self.mrs_invalidated += 1

    def _apply_degrade_nic(self, event: DegradeNic) -> None:
        self._node(event.node).nic.fault_dma_factor = event.dma_factor

    def _revoke_degrade_nic(self, event: DegradeNic) -> None:
        self._node(event.node).nic.fault_dma_factor = 1.0

    @staticmethod
    def _noop(event: FaultEvent) -> None:  # pragma: no cover - table filler
        pass

    _APPLY = {
        CrashNode: _apply_crash,
        HangNode: _apply_hang,
        RecoverNode: _apply_recover,
        DegradeLink: _apply_link,
        Partition: _apply_partition,
        VerbFault: _apply_verb,
        InvalidateMr: _apply_invalidate_mr,
        DegradeNic: _apply_degrade_nic,
    }
    _REVOKE = {
        DegradeLink: _revoke_link,
        Partition: _revoke_partition,
        VerbFault: _revoke_verb,
        DegradeNic: _revoke_degrade_nic,
    }

    def _node(self, name: str) -> "Node":
        return self.sim.node_by_name(name)

    # ------------------------------------------------------------------
    # fabric / verbs hooks
    # ------------------------------------------------------------------
    def on_transmit(self, src: "Nic", dst: "Nic", nbytes: int) -> Optional[LinkVerdict]:
        """Per-packet consult; None = packet unaffected (the fast path)."""
        if not self._net_active:
            return None
        src_name = src.node.name if src.node is not None else src.name
        dst_name = dst.node.name if dst.node is not None else dst.name
        for group_a, group_b in self._partitions:
            if ((src_name in group_a and dst_name in group_b)
                    or (src_name in group_b and dst_name in group_a)):
                self.dropped_packets += 1
                return LinkVerdict(drop=True)
        mods = self._links.get((src_name, dst_name))
        if not mods:
            return None
        latency_factor, bw_factor = 1.0, 1.0
        for mod in mods:
            if mod.loss > 0.0 and self.rng.random() < mod.loss:
                self.dropped_packets += 1
                return LinkVerdict(drop=True)
            latency_factor *= mod.latency_factor
            bw_factor *= mod.bw_factor
        return LinkVerdict(latency_factor=latency_factor, bw_factor=bw_factor)

    def on_verb(self, initiator: "Node", target: "Node",
                opcode: str) -> "Optional[WcStatus]":
        """Per-verb consult at the target NIC; None = proceed normally."""
        if not self._verb_active:
            return None
        faults = self._verbs.get(target.name)
        if not faults:
            return None
        for fault in faults:
            if opcode not in fault.opcodes:
                continue
            if fault.p >= 1.0 or self.rng.random() < fault.p:
                self.naks_injected += 1
                return _verb_status(fault.status)
        return None

    # ------------------------------------------------------------------
    def active_faults(self) -> List[str]:
        """Human-readable list of currently-active windowed faults."""
        out = []
        for (src, dst), mods in sorted(self._links.items()):
            for mod in mods:
                out.append(f"degrade-link {src}->{dst} "
                           f"x{mod.latency_factor:g}/bw{mod.bw_factor:g}")
        for group_a, group_b in self._partitions:
            out.append("partition " + " ".join(sorted(group_a)) + " | "
                       + " ".join(sorted(group_b)))
        for node, faults in sorted(self._verbs.items()):
            for fault in faults:
                out.append(f"verb-nak {node} p={fault.p:g}")
        return out

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for experiment reports."""
        return {
            "applied": self.applied,
            "revoked": self.revoked,
            "dropped_packets": self.dropped_packets,
            "naks_injected": self.naks_injected,
            "mrs_invalidated": self.mrs_invalidated,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultPlane events={len(self.schedule)} "
                f"active={len(self.active_faults())}>")
