"""Deterministic fault injection and recovery policies.

The plane the ROADMAP's robustness story runs on: declarative fault
schedules (:mod:`repro.faults.schedule`), a seeded injector driving
fabric / verb / node / NIC hooks (:mod:`repro.faults.plane`), and the
timeout/retry/backoff policies the monitoring schemes use to survive
them (:mod:`repro.faults.retry`). See ``docs/FAULTS.md``.
"""

from repro.faults.plane import FaultPlane, FaultRecord, LinkVerdict
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    CrashNode,
    DegradeLink,
    DegradeNic,
    FaultEvent,
    FaultSchedule,
    HangNode,
    InvalidateMr,
    Partition,
    RecoverNode,
    VerbFault,
    parse_schedule,
    parse_time,
)

__all__ = [
    "CrashNode",
    "DegradeLink",
    "DegradeNic",
    "FaultEvent",
    "FaultPlane",
    "FaultRecord",
    "FaultSchedule",
    "HangNode",
    "InvalidateMr",
    "LinkVerdict",
    "Partition",
    "RecoverNode",
    "RetryPolicy",
    "VerbFault",
    "parse_schedule",
    "parse_time",
]
