"""Timeout / retry / exponential-backoff policies for monitoring probes.

The recovery half of the fault plane: a :class:`RetryPolicy` tells a
monitoring scheme how long to wait for a probe before declaring it lost,
how many times to re-issue it, and how to space the re-issues
(exponential backoff with a cap, the RDMAbox-style verb-path retry
discipline). The default policy is **disabled** (``timeout == 0``):
schemes then take exactly their historical code path — no extra events,
no behavioural drift — so installing the fault machinery leaves healthy
runs bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MILLISECOND as MS


@dataclass(frozen=True)
class RetryPolicy:
    """How a probe reacts to a lost or NAK'd transport operation.

    ``timeout == 0`` disables the policy entirely: probes block forever,
    as the paper's original schemes do. With a positive timeout a probe
    that receives no completion (or an RNR NAK) within ``timeout`` ns is
    retried up to ``retries`` times, sleeping ``backoff_for(attempt)``
    between attempts; exhausting the budget records a failed query.
    """

    #: ns to wait for one probe completion; 0 = wait forever (disabled)
    timeout: int = 0
    #: re-issues after the first attempt before giving up
    retries: int = 2
    #: sleep before the first retry, ns
    backoff: int = 1 * MS
    #: multiplier applied per further retry (>= 1)
    backoff_factor: float = 2.0
    #: backoff ceiling, ns
    backoff_max: int = 50 * MS

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise ValueError("timeout must be >= 0 (0 = disabled)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff <= 0:
            raise ValueError("backoff must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff:
            raise ValueError("backoff_max must be >= backoff")

    @property
    def enabled(self) -> bool:
        return self.timeout > 0

    def backoff_for(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-based), ns."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.backoff * (self.backoff_factor ** (attempt - 1))
        return min(int(delay), self.backoff_max)

    @classmethod
    def from_config(cls, mon) -> "RetryPolicy":
        """Build from a :class:`~repro.config.MonitorConfig`."""
        return cls(
            timeout=mon.probe_timeout,
            retries=mon.probe_retries,
            backoff=mon.probe_backoff,
            backoff_factor=mon.probe_backoff_factor,
            backoff_max=mon.probe_backoff_max,
        )
