"""Declarative fault schedules: what breaks, when, and for how long.

A :class:`FaultSchedule` is an ordered list of fault events, each either
*point* (applied once at ``at``) or *windowed* (applied at ``at``,
revoked at ``until``). Schedules can be built programmatically from the
dataclasses below or parsed from a small text grammar, one fault per
line::

    at 500ms crash backend0
    at 500ms hang backend0
    at 1100ms recover backend0
    from 500ms to 1100ms degrade-link frontend backend0 latency=20 bw=0.1 loss=0.05
    from 500ms to 1100ms partition frontend | backend0 backend1
    from 500ms to 1100ms verb-nak backend0 p=0.5
    from 500ms to 1100ms degrade-nic backend0 dma=8
    at 1s invalidate-mr backend0 kern.load

Times accept ``ns``/``us``/``ms``/``s`` suffixes (bare integers are
nanoseconds). Blank lines and ``#`` comments are ignored. The schedule
is pure data — the :class:`~repro.faults.plane.FaultPlane` interprets it
against a built cluster.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.sim.units import MICROSECOND, MILLISECOND, SECOND

_TIME_UNITS = {
    "ns": 1,
    "us": MICROSECOND,
    "ms": MILLISECOND,
    "s": SECOND,
}

_TIME_RE = re.compile(r"^(\d+(?:\.\d+)?)(ns|us|ms|s)?$")


def parse_time(text: str) -> int:
    """``"500ms"`` → 500_000_000. Bare integers are nanoseconds."""
    match = _TIME_RE.match(text.strip())
    if match is None:
        raise ValueError(f"unparseable time {text!r} (want e.g. 500ms, 2s, 1200)")
    value, unit = match.groups()
    scale = _TIME_UNITS[unit] if unit else 1
    return int(float(value) * scale)


@dataclass
class FaultEvent:
    """Base fault: applied at ``at``; windowed faults revoke at ``until``."""

    at: int = 0
    until: Optional[int] = None

    #: grammar keyword, overridden per subclass
    kind: str = "fault"
    #: whether the grammar/validator requires an ``until``
    windowed: bool = False

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.kind}: fault time must be >= 0")
        if self.windowed:
            if self.until is None:
                raise ValueError(f"{self.kind}: windowed fault needs an end time")
            if self.until <= self.at:
                raise ValueError(f"{self.kind}: window must end after it starts")
        elif self.until is not None:
            raise ValueError(f"{self.kind}: point fault cannot take a window")

    def describe(self) -> str:
        window = f"..{self.until}" if self.until is not None else ""
        return f"{self.kind}@{self.at}{window}"


@dataclass
class CrashNode(FaultEvent):
    """Node drops off the fabric (``Node.fail("crashed")``)."""

    node: str = ""
    kind: str = "crash"

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError("crash: node name required")


@dataclass
class HangNode(FaultEvent):
    """Kernel livelock (``Node.fail("hung")``): NIC alive, CPUs frozen."""

    node: str = ""
    kind: str = "hang"

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError("hang: node name required")


@dataclass
class RecoverNode(FaultEvent):
    """Bring a failed node back (``Node.recover()``)."""

    node: str = ""
    kind: str = "recover"

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError("recover: node name required")


@dataclass
class DegradeLink(FaultEvent):
    """Inflate latency / deflate bandwidth / drop packets on one link.

    ``latency_factor`` scales the hop and switch latencies,
    ``bw_factor`` scales effective bandwidth (serialisation time grows),
    ``loss`` drops that fraction of packets (drawn from the fault RNG
    stream). Symmetric by default (both directions of the pair).
    """

    src: str = ""
    dst: str = ""
    latency_factor: float = 1.0
    bw_factor: float = 1.0
    loss: float = 0.0
    symmetric: bool = True
    kind: str = "degrade-link"
    windowed: bool = True

    def validate(self) -> None:
        super().validate()
        if not self.src or not self.dst or self.src == self.dst:
            raise ValueError("degrade-link: two distinct node names required")
        if self.latency_factor < 1.0:
            raise ValueError("degrade-link: latency_factor must be >= 1")
        if not 0.0 < self.bw_factor <= 1.0:
            raise ValueError("degrade-link: bw_factor must be in (0, 1]")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("degrade-link: loss must be in [0, 1)")


@dataclass
class Partition(FaultEvent):
    """Drop every packet between two node groups, both directions."""

    group_a: Tuple[str, ...] = ()
    group_b: Tuple[str, ...] = ()
    kind: str = "partition"
    windowed: bool = True

    def validate(self) -> None:
        super().validate()
        if not self.group_a or not self.group_b:
            raise ValueError("partition: both groups need at least one node")
        if set(self.group_a) & set(self.group_b):
            raise ValueError("partition: groups must be disjoint")


@dataclass
class VerbFault(FaultEvent):
    """NAK fraction ``p`` of RDMA verbs targeting ``node``.

    Each matching verb request reaching the target NIC is rejected with
    ``status`` (default RNR retry — "receiver not ready, try again")
    with probability ``p``, drawn from the fault RNG stream.
    """

    node: str = ""
    p: float = 1.0
    opcodes: Tuple[str, ...] = ("read", "write", "atomic")
    status: str = "rnr-retry"
    kind: str = "verb-nak"
    windowed: bool = True

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError("verb-nak: node name required")
        if not 0.0 < self.p <= 1.0:
            raise ValueError("verb-nak: p must be in (0, 1]")
        if not self.opcodes:
            raise ValueError("verb-nak: at least one opcode required")


@dataclass
class InvalidateMr(FaultEvent):
    """Deregister the memory registrations covering ``region`` on ``node``.

    Subsequent RDMA operations against the stale rkey NAK with
    INVALID_RKEY — the MR-revocation fault class RDMA deployments must
    survive (lost registrations after an HCA reset).
    """

    node: str = ""
    region: str = ""
    kind: str = "invalidate-mr"

    def validate(self) -> None:
        super().validate()
        if not self.node or not self.region:
            raise ValueError("invalidate-mr: node and region names required")


@dataclass
class DegradeNic(FaultEvent):
    """Slow a NIC's DMA engine by ``dma_factor`` (firmware brown-out)."""

    node: str = ""
    dma_factor: float = 1.0
    kind: str = "degrade-nic"
    windowed: bool = True

    def validate(self) -> None:
        super().validate()
        if not self.node:
            raise ValueError("degrade-nic: node name required")
        if self.dma_factor < 1.0:
            raise ValueError("degrade-nic: dma_factor must be >= 1")


@dataclass
class FaultSchedule:
    """An ordered, validated collection of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        event.validate()
        self.events.append(event)
        return self

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def empty(self) -> bool:
        return not self.events

    def horizon(self) -> int:
        """Time of the last scheduled action (0 when empty)."""
        times = [e.at for e in self.events]
        times.extend(e.until for e in self.events if e.until is not None)
        return max(times, default=0)

    def describe(self) -> str:
        return "; ".join(e.describe() for e in self.events) or "<empty>"


def _parse_kv(tokens: Sequence[str], allowed: dict) -> dict:
    """Parse trailing ``key=value`` tokens using ``allowed``'s converters."""
    out = {}
    for token in tokens:
        key, sep, raw = token.partition("=")
        if not sep or key not in allowed:
            raise ValueError(
                f"unknown option {token!r} (allowed: {sorted(allowed)})")
        out[allowed[key][0]] = allowed[key][1](raw)
    return out


def parse_schedule(text: str) -> FaultSchedule:
    """Parse the line-oriented schedule grammar into a :class:`FaultSchedule`."""
    schedule = FaultSchedule()
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            schedule.add(_parse_line(line))
        except ValueError as exc:
            raise ValueError(f"schedule line {lineno}: {exc}") from None
    return schedule


def _parse_line(line: str) -> FaultEvent:
    tokens = line.split()
    if tokens[0] == "at" and len(tokens) >= 3:
        at, until = parse_time(tokens[1]), None
        rest = tokens[2:]
    elif tokens[0] == "from" and len(tokens) >= 5 and tokens[2] == "to":
        at, until = parse_time(tokens[1]), parse_time(tokens[3])
        rest = tokens[4:]
    else:
        raise ValueError(
            f"want 'at <time> <fault> ...' or 'from <time> to <time> <fault> ...', got {line!r}")
    kind, args = rest[0], rest[1:]

    if kind in ("crash", "hang", "recover"):
        if len(args) != 1:
            raise ValueError(f"{kind}: exactly one node name expected")
        cls = {"crash": CrashNode, "hang": HangNode, "recover": RecoverNode}[kind]
        return cls(at=at, until=until, node=args[0])

    if kind == "degrade-link":
        if len(args) < 2:
            raise ValueError("degrade-link: two node names expected")
        kv = _parse_kv(args[2:], {
            "latency": ("latency_factor", float),
            "bw": ("bw_factor", float),
            "loss": ("loss", float),
        })
        return DegradeLink(at=at, until=until, src=args[0], dst=args[1], **kv)

    if kind == "partition":
        joined = " ".join(args)
        left, sep, right = joined.partition("|")
        if not sep:
            raise ValueError("partition: groups must be separated by '|'")
        return Partition(at=at, until=until,
                         group_a=tuple(left.split()), group_b=tuple(right.split()))

    if kind == "verb-nak":
        if not args:
            raise ValueError("verb-nak: node name expected")
        kv = _parse_kv(args[1:], {
            "p": ("p", float),
            "opcodes": ("opcodes", lambda raw: tuple(raw.split(","))),
            "status": ("status", str),
        })
        return VerbFault(at=at, until=until, node=args[0], **kv)

    if kind == "invalidate-mr":
        if len(args) != 2:
            raise ValueError("invalidate-mr: node and region names expected")
        return InvalidateMr(at=at, until=until, node=args[0], region=args[1])

    if kind == "degrade-nic":
        if not args:
            raise ValueError("degrade-nic: node name expected")
        kv = _parse_kv(args[1:], {"dma": ("dma_factor", float)})
        return DegradeNic(at=at, until=until, node=args[0], **kv)

    raise ValueError(f"unknown fault kind {kind!r}")
