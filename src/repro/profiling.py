"""Opt-in per-phase cProfile instrumentation (``cfg.profile.*``).

Finding hot spots in a discrete-event simulator from outside is
miserable: a whole experiment is one ``env.run()`` call, so an external
profiler lumps deploy-time wiring, workload generation and the event
loop into one flat table. This module attributes wall-clock to *phases*
instead — any code region a caller cares to name::

    cfg.profile.enabled = True
    sim = build_cluster(cfg)
    ...
    sim.run(until=10 * S)          # prints a "phase run" hotspot table

or explicitly::

    with profile_phase(cfg.profile, "deploy"):
        scheme = create_scheme("rdma-sync", sim)

Profiling wraps the region in its own ``cProfile.Profile`` session and
prints the top-N functions by ``cfg.profile.sort`` when the region
exits. With ``dump_dir`` set, the raw stats are also written to
``<dump_dir>/<phase>.pstats`` for ``pstats``/``snakeviz`` digging.

Simulated time is never perturbed: the profiler only observes the
Python interpreter, so event ordering, RNG streams and fingerprints are
identical with profiling on or off (the determinism suite asserts
this). Only wall-clock changes — expect a 1.5–3x slowdown while
enabled, which is why the default is off and the disabled path is a
single attribute check.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import ProfileConfig

__all__ = ["hotspot_table", "profile_phase"]


def hotspot_table(profiler: cProfile.Profile, phase: str, *,
                  top: int = 15, sort: str = "tottime") -> str:
    """Format a profiler's stats as a per-phase hotspot table."""
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort)
    stats.print_stats(top)
    header = f"=== profile: phase {phase!r} (top {top} by {sort}) ==="
    return f"{header}\n{buf.getvalue().rstrip()}\n"


@contextmanager
def profile_phase(pcfg: Optional["ProfileConfig"], phase: str,
                  *, stream=None) -> Iterator[None]:
    """Profile the enclosed region as one named phase.

    No-op (one attribute check) when ``pcfg`` is None or disabled, so
    call sites can wrap their hot region unconditionally.
    """
    if pcfg is None or not pcfg.enabled:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        out = stream if stream is not None else sys.stderr
        out.write(hotspot_table(profiler, phase, top=pcfg.top, sort=pcfg.sort))
        if pcfg.dump_dir:
            dump_dir = Path(pcfg.dump_dir)
            dump_dir.mkdir(parents=True, exist_ok=True)
            safe = phase.replace("/", "_").replace(" ", "_")
            profiler.dump_stats(dump_dir / f"{safe}.pstats")
