"""Per-flow DCQCN rate control (sender side).

One :class:`FlowState` exists per ⟨source port, destination port⟩ pair
that has ever transmitted with the congestion plane installed. The
controller is the standard DCQCN shape, slimmed to what a fluid fabric
model can honour (docs/FABRIC.md lists the simplifications):

* **rate cut** on every delivered CNP: the current rate becomes the
  target, the rate drops multiplicatively by ``1 - alpha/2``, and the
  congestion estimate ``alpha`` moves toward 1 with gain ``g``;
* **recovery** between CNPs, applied lazily whenever the flow next
  transmits: for each elapsed ``ai_timer`` period, ``alpha`` decays by
  ``(1-g)``, the target rate gains ``ai_factor`` of line rate
  (additive increase), and the rate averages half-way toward the
  target (DCQCN's fast recovery).

Rates are dimensionless factors of line rate in ``(min_rate, 1]``; the
congestion plane turns them into packet pacing by stretching the
sender's TX serialisation time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import CongestionConfig


class FlowState:
    """DCQCN sender state for one ⟨src, dst⟩ port pair."""

    __slots__ = ("src", "dst", "rate", "target", "alpha", "last_cnp_at",
                 "last_update", "next_send", "cnps", "cuts")

    def __init__(self, src: str, dst: str, created_at: int) -> None:
        self.src = src
        self.dst = dst
        #: current sending rate, fraction of line rate
        self.rate = 1.0
        #: recovery target (the rate before the last cut)
        self.target = 1.0
        #: congestion estimate in [0, 1]
        self.alpha = 1.0
        #: receiver-side CNP coalescing clock (last CNP generation time)
        self.last_cnp_at = -(1 << 62)
        #: sender-side recovery clock
        self.last_update = created_at
        #: pacing gate: earliest time the next packet may leave
        self.next_send = 0
        self.cnps = 0
        self.cuts = 0

    # ------------------------------------------------------------------
    def current_rate(self, now: int, cc: "CongestionConfig") -> float:
        """The flow's rate at ``now``, applying lazy recovery first."""
        steps = (now - self.last_update) // cc.ai_timer
        if steps > 0:
            self.last_update += steps * cc.ai_timer
            decay = (1.0 - cc.alpha_g) ** steps
            self.alpha *= decay
            target = self.target + steps * cc.ai_factor
            self.target = target if target < 1.0 else 1.0
            # Fast recovery: average toward the target once per period.
            rate = self.rate
            for _ in range(min(steps, 64)):
                rate = (rate + self.target) / 2.0
            self.rate = rate if rate < 1.0 else 1.0
        return self.rate

    def on_cnp(self, now: int, cc: "CongestionConfig") -> float:
        """Apply one delivered CNP: multiplicative cut; returns new rate."""
        self.cuts += 1
        self.alpha = (1.0 - cc.alpha_g) * self.alpha + cc.alpha_g
        self.target = self.rate
        rate = self.rate * (1.0 - self.alpha / 2.0)
        self.rate = rate if rate > cc.min_rate else cc.min_rate
        # A cut restarts the recovery clock.
        self.last_update = now
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FlowState {self.src}->{self.dst} rate={self.rate:.3f} "
                f"alpha={self.alpha:.3f} cuts={self.cuts}>")
