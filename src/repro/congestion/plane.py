"""The congestion plane: switch queues + DCQCN wired into the fabric.

Installed on a :class:`~repro.hw.fabric.Fabric` (``fabric.congestion``),
the plane takes over unicast delivery whenever ``cfg.congestion.enabled``
is set. Its :meth:`transmit` reproduces the base fabric's serialisation
math exactly, then layers the RoCEv2 congestion machinery on top:

1. the sender queues the packet per *flow*; a round-robin arbiter
   drains the port, spacing each flow's packets by its DCQCN rate
   (pacing) and deferring everything past any PFC pause in force;
2. the packet lands in the destination's explicit egress queue
   (:class:`~repro.hw.switch.CongestionSwitch`), which may ECN-mark it
   and/or emit a PFC pause frame back to the sender;
3. a marked packet makes the *receiver* NIC generate a CNP (coalesced
   per flow), which travels back across the wire and cuts the sender's
   rate (:class:`~repro.congestion.dcqcn.FlowState`).

The plane adds one switch-arrival timeout per packet (so egress-queue
state updates in true arrival order) and one timeout per delivered CNP.
With the plane absent the fabric pays a single attribute check, and
runs are byte-identical to the historical model (property-tested).
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.congestion.dcqcn import FlowState
from repro.hw.switch import CongestionSwitch
from repro.sim.events import EventPriority

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.config import SimConfig
    from repro.hw.fabric import Fabric
    from repro.hw.nic import Nic
    from repro.sim.engine import Environment
    from repro.tracing.span import SpanTracer


class _TxQueue:
    """A NIC's send side: per-flow packet queues + a port arbiter.

    The base fabric assigns every packet's wire schedule analytically at
    post time, which is exact while nothing can change between post and
    transmit. Pauses and rate cuts *do* change things, so the congested
    plane queues posted packets here and a callback chain drains them
    one at a time — sampling PFC state and each flow's DCQCN pacing gap
    at the moment a packet actually hits the wire. Queues are per
    *flow* (destination), drained round-robin, so one throttled or
    backlogged flow cannot head-of-line block the others on the same
    port — the NIC-scheduler behaviour DCQCN assumes.
    """

    __slots__ = ("flows", "order", "cursor", "active", "sleeping", "gen",
                 "prio_flows")

    def __init__(self) -> None:
        #: dst name -> deque of posted packets
        self.flows: Dict[str, deque] = {}
        #: round-robin arbitration order (flow creation order)
        self.order: list = []
        self.cursor = 0
        #: a drain chain is running (possibly asleep)
        self.active = False
        #: the chain is waiting on a timer rather than the wire
        self.sleeping = False
        #: bumped to invalidate a sleeping chain's wakeup
        self.gen = 0
        #: flow keys riding a nonzero PFC service level — they keep
        #: draining while the port's priority-0 traffic is paused
        self.prio_flows: set = set()

    def append(self, dst_name: str, pkt: tuple) -> None:
        q = self.flows.get(dst_name)
        if q is None:
            q = self.flows[dst_name] = deque()
            self.order.append(dst_name)
        q.append(pkt)


class CongestionPlane:
    """ECN/DCQCN/PFC state shared by every port of one fabric."""

    def __init__(
        self,
        env: "Environment",
        cfg: "SimConfig",
        rng: "np.random.Generator",
        spans: "Optional[SpanTracer]" = None,
    ) -> None:
        self.env = env
        self.cfg = cfg
        self.spans = spans
        self.switch = CongestionSwitch(cfg.congestion, rng)
        self.fabric: Optional["Fabric"] = None
        self._flows: Dict[Tuple[str, str], FlowState] = {}
        #: per-sender store-and-forward TX queues
        self._txq: Dict[str, _TxQueue] = {}
        #: absolute time each TX port's PFC pause lifts
        self._pause_until: Dict[str, int] = {}
        #: telemetry hook: called with one event dict per enqueue /
        #: pause / CNP (chain, don't replace — see attach_congestion)
        self.on_event: Optional[Callable[[dict], None]] = None
        self.cnps_generated = 0
        self.cnps_delivered = 0
        self.cnps_coalesced = 0

    def install(self, fabric: "Fabric") -> "CongestionPlane":
        """Attach to ``fabric``; all unicast traffic now flows through."""
        if fabric.congestion is not None:
            raise RuntimeError("fabric already has a congestion plane")
        fabric.congestion = self
        self.fabric = fabric
        return self

    # ------------------------------------------------------------------
    def _flow(self, src: str, dst: str, now: int) -> FlowState:
        key = (src, dst)
        flow = self._flows.get(key)
        if flow is None:
            flow = self._flows[key] = FlowState(src, dst, now)
        return flow

    def flow_rate(self, src: str, dst: str) -> float:
        """The ⟨src, dst⟩ flow's current DCQCN rate factor (1.0 if none)."""
        flow = self._flows.get((src, dst))
        if flow is None:
            return 1.0
        return flow.current_rate(self.env.now, self.cfg.congestion)

    def port_depth(self, nic_name: str, at: Optional[int] = None) -> int:
        """Egress-queue backlog (bytes) at ``nic_name``'s port."""
        assert self.fabric is not None
        rx = self.fabric._rx[nic_name]
        t = self.env.now if at is None else at
        if rx.free_at <= t:
            return 0
        return int((rx.free_at - t) * self.cfg.net.link_bytes_per_ns)

    # ------------------------------------------------------------------
    def transmit(
        self,
        src: "Nic",
        dst: "Nic",
        nbytes: int,
        on_arrival: Callable[[], None],
        bw_factor: float,
        lat_factor: float,
        prio: int = 0,
    ) -> int:
        """Congestion-aware unicast delivery (the fabric's hot hand-off).

        The packet joins the sender's store-and-forward TX queue; the
        drain chain samples PFC pause state and the flow's DCQCN rate at
        actual transmit time (:meth:`_service`), and the egress queue is
        observed when the packet reaches the switch (:meth:`_at_switch`)
        — both *after* post time, which is what lets a pause issued
        mid-backlog actually hold the backlog. ``prio`` is the PFC
        service level: nonzero packets form their own flow (own DCQCN
        state) that keeps draining while the port's priority-0 traffic
        is paused. Returns the post time; delivery is resolved through
        ``on_arrival``.
        """
        net = self.cfg.net
        bw = net.link_bytes_per_ns * bw_factor

        hop, switch_lat = net.hop_latency, net.switch_latency
        if lat_factor != 1.0:
            hop = int(hop * lat_factor)
            switch_lat = int(switch_lat * lat_factor)
        ser_rx = max(1, math.ceil(nbytes / bw))

        txq = self._txq.get(src.name)
        if txq is None:
            txq = self._txq[src.name] = _TxQueue()
        # Priority-0 flow keys stay the bare destination name so runs
        # without monitor_priority are byte-identical to the historical
        # model.
        flow_key = dst.name if prio == 0 else f"{dst.name}\x00sl{prio}"
        if prio != 0:
            txq.prio_flows.add(flow_key)
        txq.append(flow_key, (src, dst, nbytes, bw, ser_rx, hop, switch_lat,
                              on_arrival))
        if not txq.active:
            txq.active = True
            self._service(src.name, txq)
        elif txq.sleeping:
            # The chain is waiting on a pacing/pause timer; this packet
            # may belong to a flow that is clear to send *now*, so
            # re-arbitrate immediately (the stale wakeup is invalidated).
            txq.gen += 1
            txq.sleeping = False
            self._service(src.name, txq)
        return self.env.now

    def _sleep(self, src_name: str, txq: _TxQueue, delay: int) -> None:
        """Park the drain chain; :meth:`transmit` may preempt the nap."""
        txq.sleeping = True
        gen = txq.gen
        t = self.env.timeout(max(1, delay), priority=EventPriority.HIGH)
        assert t.callbacks is not None
        t.callbacks.append(lambda _ev: self._wake(src_name, txq, gen))

    def _wake(self, src_name: str, txq: _TxQueue, gen: int) -> None:
        if txq.gen != gen or not txq.sleeping:
            return  # superseded by a preempting transmit
        txq.sleeping = False
        self._service(src_name, txq)

    def _service(self, src_name: str, txq: _TxQueue) -> None:
        """Arbitrate the port: pick a flow, put one packet on the wire.

        Round-robin over the per-flow queues, skipping flows whose DCQCN
        pacing gate (``next_send``) is still in the future. If the port
        is PFC-paused, or every backlogged flow is pacing, the chain
        naps until the earliest release time (a new post can preempt the
        nap — see :meth:`transmit`).
        """
        env = self.env
        now = env.now
        paused_until = self._pause_until.get(src_name, 0)
        paused = paused_until > now
        if paused and not txq.prio_flows:
            # Port is PFC-paused: re-check when the pause lifts (it may
            # have been extended by then — the loop re-evaluates).
            self._sleep(src_name, txq, paused_until - now)
            return
        cc = self.cfg.congestion
        chosen_q = None
        chosen_flow = None
        wake_at = None
        n = len(txq.order)
        for i in range(n):
            idx = (txq.cursor + i) % n
            dst_name = txq.order[idx]
            q = txq.flows[dst_name]
            if not q:
                continue
            if paused and dst_name not in txq.prio_flows:
                # PFC holds priority-0 flows only; the monitoring class
                # (service level 1) keeps arbitrating.
                if wake_at is None or paused_until < wake_at:
                    wake_at = paused_until
                continue
            if cc.dcqcn:
                flow = self._flow(src_name, dst_name, now)
                if flow.next_send > now:
                    if wake_at is None or flow.next_send < wake_at:
                        wake_at = flow.next_send
                    continue
                chosen_flow = flow
            chosen_q = q
            txq.cursor = (idx + 1) % n
            break
        if chosen_q is None:
            if wake_at is None:
                txq.active = False  # every flow queue is empty
            else:
                self._sleep(src_name, txq, wake_at - now)
            return
        src, dst, nbytes, bw, ser_rx, hop, switch_lat, on_arrival = \
            chosen_q.popleft()
        if chosen_flow is not None:
            rate = chosen_flow.current_rate(now, cc)
            if rate < 1.0:
                # Pacing as inter-packet gap: the packet serialises at
                # line rate but the flow's *next* packet waits until the
                # paced spacing elapses. Other flows use the gap.
                chosen_flow.next_send = now + max(
                    1, math.ceil(nbytes / (bw * rate)))
        fabric = self.fabric
        assert fabric is not None
        tx = fabric._tx[src.name]
        tx.free_at = now + ser_rx
        tx.bytes_moved += nbytes
        tx.messages += 1
        t = env.timeout(ser_rx + hop + switch_lat, priority=EventPriority.HIGH)
        assert t.callbacks is not None
        t.callbacks.append(
            lambda _ev: self._at_switch(src, dst, nbytes, ser_rx, hop,
                                        chosen_flow, on_arrival))
        # The port frees after ser_rx (the propagation tail overlaps the
        # next packet's serialisation, as on the uncongested fabric).
        t2 = env.timeout(ser_rx, priority=EventPriority.HIGH)
        assert t2.callbacks is not None
        t2.callbacks.append(lambda _ev: self._service(src_name, txq))

    def _at_switch(self, src: "Nic", dst: "Nic", nbytes: int, ser_rx: int,
                   hop: int, flow: Optional[FlowState],
                   on_arrival: Callable[[], None]) -> None:
        """The packet reaches the egress queue: mark, pause, serialise."""
        fabric = self.fabric
        assert fabric is not None
        env = self.env
        now = env.now
        rx = fabric._rx[dst.name]
        # The egress link drains at nominal line rate regardless of the
        # sender's pacing.
        drain = self.cfg.net.link_bytes_per_ns
        depth_before = 0
        if rx.free_at > now:
            depth_before = int((rx.free_at - now) * drain)
        port = self.switch.port(dst.name)
        marked, pause_bytes = self.switch.enqueue(port, depth_before, nbytes)
        if marked:
            dst.cc_ecn_marked_rx += 1
        if pause_bytes is not None:
            self._pause(src, port, now, pause_bytes, drain)

        rx_start = max(now, rx.free_at)
        rx.free_at = rx_start + ser_rx
        rx.bytes_moved += nbytes
        rx.messages += 1
        arrival = rx_start + ser_rx + hop

        if self.on_event is not None:
            self.on_event({
                "kind": "enqueue", "t": now, "port": port.index,
                "nic": dst.name, "depth": depth_before + nbytes,
                "marked": marked, "mark_rate": port.mark_rate,
            })
        t = env.timeout(arrival - now, priority=EventPriority.HIGH)
        assert t.callbacks is not None
        if marked and flow is not None:
            # Congestion bookkeeping runs at the arrival instant, before
            # the payload callback can observe anything.
            t.callbacks.append(lambda _ev: self._on_marked_arrival(flow, src, dst))
        t.callbacks.append(lambda _ev: on_arrival())

    # ------------------------------------------------------------------
    def _pause(self, src: "Nic", port, at_switch: int, pause_bytes: int,
               drain: float) -> None:
        """A PFC pause frame: hold ``src``'s TX until the queue drains.

        Pause is *port*-granular: the sender's whole TX queue (backlog
        included) stops until ``resume_at`` — :meth:`_service` re-checks
        ``_pause_until`` before every packet, so a pause issued
        mid-backlog holds the backlog, exactly like a real PFC-paused
        egress. Only the head packet already on the wire completes.
        """
        resume_at = at_switch + max(1, int(pause_bytes / drain))
        prev = self._pause_until.get(src.name, 0)
        if resume_at <= prev:
            return
        base = prev if prev > at_switch else at_switch
        gained = resume_at - base
        src.cc_pause_ns += gained
        port.pause_ns += gained
        self._pause_until[src.name] = resume_at
        spans = self.spans
        if spans is not None and spans.enabled:
            span = spans.start_trace(
                "cc:pause", node=src.name, component="congestion",
                attrs={"port": port.name, "pause_ns": gained,
                       "resume_at": resume_at})
            if span is not None:
                spans.end(span)
        if self.on_event is not None:
            self.on_event({
                "kind": "pause", "t": self.env.now, "port": port.index,
                "nic": port.name, "src": src.name, "pause_ns": gained,
            })

    def _on_marked_arrival(self, flow: FlowState, src: "Nic", dst: "Nic") -> None:
        """Receiver saw a CE-marked packet: maybe generate a CNP."""
        now = self.env.now
        cc = self.cfg.congestion
        if now - flow.last_cnp_at < cc.cnp_interval:
            self.cnps_coalesced += 1
            return
        flow.last_cnp_at = now
        flow.cnps += 1
        self.cnps_generated += 1
        dst.cc_cnps_sent += 1
        # The CNP rides back on the reverse path; it is tiny, so only
        # propagation + forwarding delay is charged (no serialisation).
        net = self.cfg.net
        delay = 2 * net.hop_latency + net.switch_latency
        t = self.env.timeout(delay, priority=EventPriority.HIGH)
        assert t.callbacks is not None
        t.callbacks.append(lambda _ev: self._deliver_cnp(flow, src, dst))

    def _deliver_cnp(self, flow: FlowState, src: "Nic", dst: "Nic") -> None:
        """The CNP lands at the sender: cut the flow's rate."""
        now = self.env.now
        before = flow.rate
        after = flow.on_cnp(now, self.cfg.congestion)
        src.cc_cnps_received += 1
        self.cnps_delivered += 1
        spans = self.spans
        if spans is not None and spans.enabled:
            span = spans.start_trace(
                "cc:cnp", node=src.name, component="congestion",
                attrs={"dst": dst.name, "rate_before": before,
                       "rate_after": after})
            if span is not None:
                spans.end(span)
        if self.on_event is not None:
            self.on_event({
                "kind": "cnp", "t": now, "src": src.name, "dst": dst.name,
                "rate": after,
            })

    # ------------------------------------------------------------------
    def flows(self) -> Dict[Tuple[str, str], FlowState]:
        return dict(self._flows)

    def stats(self) -> dict:
        """Plane-wide counters plus per-port switch statistics."""
        return {
            "cnps_generated": self.cnps_generated,
            "cnps_delivered": self.cnps_delivered,
            "cnps_coalesced": self.cnps_coalesced,
            "flows": len(self._flows),
            "ports": self.switch.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CongestionPlane flows={len(self._flows)} cnps={self.cnps_delivered}>"
