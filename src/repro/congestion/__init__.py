"""Congestion-realistic fabric extensions (ECN / DCQCN / PFC).

Default-off: with ``cfg.congestion.enabled`` false nothing in this
package is imported on the hot path and same-seed runs are byte-
identical to the historical fabric model. See docs/FABRIC.md.
"""

from repro.congestion.dcqcn import FlowState
from repro.congestion.plane import CongestionPlane
from repro.hw.switch import CongestionSwitch, EgressPort

__all__ = ["CongestionPlane", "CongestionSwitch", "EgressPort", "FlowState"]
