"""Metric records shared by the Ganglia components."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class MetricRecord:
    """One metric announcement."""

    host: str
    name: str
    value: Any
    time: int
    #: who injected it: "gmond" (built-in) or "gmetric" (user metric)
    source: str = "gmond"


class MetricStore:
    """Per-host latest values plus full history, as gmond keeps them."""

    def __init__(self) -> None:
        #: (host, name) -> latest record
        self.latest: Dict[Tuple[str, str], MetricRecord] = {}
        self.history: List[MetricRecord] = []

    def update(self, record: MetricRecord) -> None:
        self.latest[(record.host, record.name)] = record
        self.history.append(record)

    def value(self, host: str, name: str) -> Any:
        record = self.latest.get((host, name))
        return record.value if record else None

    def hosts(self) -> List[str]:
        return sorted({host for host, _ in self.latest})

    def metrics_for(self, host: str) -> Dict[str, Any]:
        return {
            name: rec.value for (h, name), rec in self.latest.items() if h == host
        }

    def __len__(self) -> int:
        return len(self.history)
