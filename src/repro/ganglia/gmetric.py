"""gmetric — Ganglia's arbitrary-metric injector (the paper's §5.2.2).

"Ganglia uses a metric tool known as gmetric, which allows users to
specify any arbitrary metric to be monitored … our resource monitoring
schemes capture detailed system information and report to gmetric which
in turn informs all ganglia servers."

gmetric is a command-line tool: every publication is a **fork + exec**.
Where it runs depends on where the scheme's data lives:

* **two-sided schemes** (socket-async/sync, and any scheme with a
  back-end agent): the information is captured *on the back-end*, so a
  gmetric process is spawned there for every collection cycle — at 1 to
  4 ms granularity that is hundreds of process creations per second on
  the loaded servers, which is exactly what wrecks the RUBiS maximum
  response time in the paper's Fig 8;
* **one-sided schemes** (rdma-async, rdma-sync, e-rdma-sync): the front
  end already holds the data after its RDMA read, so gmetric forks on
  the (lightly-loaded) front end and the back-ends never notice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.ganglia.metrics import MetricRecord
from repro.monitoring.base import MonitoringScheme
from repro.monitoring.loadinfo import LoadCalculator

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.multicast import MulticastGroup


class Gmetric:
    """Fine-grained custom-metric publisher."""

    ANNOUNCE_BYTES = 128
    #: CPU cost of fork + exec per publication (process creation, page
    #: table setup, ELF load — kernel side)
    FORK_EXEC_COST = 3_000_000  # 3 ms
    #: user-time the gmetric process burns before exiting (libganglia
    #: init, config parsing, metric marshalling — a real gmetric
    #: invocation takes ~10 ms of CPU on 2003-era hardware)
    PROCESS_BODY_COST = 2_000_000  # 2 ms

    def __init__(
        self,
        scheme: MonitoringScheme,
        channel: "MulticastGroup",
        granularity: int,
        metric_name: str = "fine_load",
        mode: str = "frontend",
    ) -> None:
        """``mode``:

        * ``"frontend"`` (default, the paper's setup): gmetric runs next
          to gmetad on the front end and *collects through the scheme*
          every period — for socket schemes each period costs every
          back-end a packet, a boosted wakeup and a /proc scan; for RDMA
          schemes the back-ends never notice.
        * ``"backend-agent"``: a timer loop on every back-end forks a
          gmetric process per period that does the collection locally
          (the shell-loop deployment); used by the deployment ablation.
        """
        if granularity <= 0:
            raise ValueError("gmetric granularity must be positive")
        if mode not in ("frontend", "backend-agent"):
            raise ValueError(f"unknown gmetric mode {mode!r}")
        self.scheme = scheme
        self.channel = channel
        self.granularity = granularity
        self.metric_name = metric_name
        self.mode = mode
        self.published = 0
        #: gmetric processes forked on back-end nodes (perturbation!)
        self.backend_forks = 0
        self._stopped = False
        channel.subscribe(scheme.frontend)
        if mode == "frontend":
            scheme.frontend.spawn("gmetric-fe", self._frontend_body)
        else:
            for backend in scheme.backends:
                channel.subscribe(backend)
                backend.spawn(f"gmetric-agent:{backend.name}",
                              self._backend_agent_body(backend))

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    # one-sided: collect remotely, fork gmetric locally on the front end
    # ------------------------------------------------------------------
    def _frontend_body(self, k):
        while not self._stopped:
            infos = yield from self.scheme.query_all(k)
            # fork/exec of the gmetric CLI on the front end
            yield k.compute(self.FORK_EXEC_COST, mode="sys")
            yield k.compute(self.PROCESS_BODY_COST, mode="user")
            records: List[MetricRecord] = [
                MetricRecord(info.backend, self.metric_name, info.runq_load, k.now,
                             source="gmetric")
                for info in infos.values()
            ]
            self.published += 1
            yield from self.channel.publish(k, records, self.ANNOUNCE_BYTES)
            yield k.sleep(self.granularity)

    # ------------------------------------------------------------------
    # two-sided: the back-end agent captures and forks gmetric *there*
    # ------------------------------------------------------------------
    #: process-table guard: at most this many gmetric children in flight
    #: per back-end (ulimit-style); beyond it the agent drops samples
    MAX_LIVE_PROCESSES = 192

    def _backend_agent_body(self, backend):
        """A timer loop forking one gmetric invocation per period.

        The *collection itself* (the /proc scan, metric composition and
        the multicast announce) happens inside the forked gmetric
        process, as a shell timer loop would do. Fire-and-forget: at
        fine granularity on a busy node children are spawned faster
        than they finish, the process table fills, every /proc scan
        gets O(live-processes) slower — a positive feedback loop that
        blows up application response times (the paper's Fig 8 cliff at
        1–4 ms). A ulimit-style cap bounds the explosion.
        """
        calculator = LoadCalculator(backend.name)
        live = {"count": 0}

        def gmetric_process_body(kk):
            try:
                stats = yield from backend.procfs.read_stat(kk)
                info = calculator.compute(stats)
                yield kk.compute(self.PROCESS_BODY_COST, mode="user")
                record = MetricRecord(info.backend, self.metric_name,
                                      info.runq_load, kk.now, source="gmetric")
                yield from self.channel.publish(kk, [record], self.ANNOUNCE_BYTES)
            finally:
                live["count"] -= 1

        def body(k):
            while not self._stopped:
                if live["count"] < self.MAX_LIVE_PROCESSES:
                    yield k.compute(self.FORK_EXEC_COST, mode="sys")
                    live["count"] += 1
                    self.backend_forks += 1
                    backend.spawn(f"gmetric:{backend.name}:{self.backend_forks}",
                                  gmetric_process_body, rss_bytes=1 * 1024 * 1024)
                    self.published += 1
                yield k.sleep(self.granularity)

        return body
