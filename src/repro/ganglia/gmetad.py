"""gmetad — the Ganglia aggregator.

Polls one gmond (any member knows the whole cluster via the multicast
protocol) over a socket connection at a configurable interval and keeps
the federated view. Runs on the front-end, as in the paper's setup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.ganglia.gmond import Gmond
from repro.ganglia.metrics import MetricStore
from repro.sim.units import SECOND
from repro.transport.sockets import socket_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node


class Gmetad:
    """The federation poller."""

    REQUEST_BYTES = 32
    #: serialized cluster-state response size per host
    RESPONSE_BYTES_PER_HOST = 192

    def __init__(self, frontend: "Node", gmonds: List[Gmond], interval: int = 5 * SECOND) -> None:
        if not gmonds:
            raise ValueError("gmetad needs at least one gmond to poll")
        if interval <= 0:
            raise ValueError("gmetad interval must be positive")
        self.frontend = frontend
        self.gmonds = gmonds
        self.interval = interval
        self.store = MetricStore()
        self.polls = 0
        #: per-poll wall time (request → parsed response), ns — the
        #: hierarchical-baseline series the scalability sweep plots
        self.round_times: List[int] = []
        self._stopped = False
        # One persistent connection to the first gmond's node (the
        # "data source" in gmetad.conf).
        source = gmonds[0]
        self._fe_end, self._be_end = socket_pair(
            frontend, source.node, label=f"gmetad:{source.node.name}"
        )
        source.node.spawn(f"gmond-xml:{source.node.name}", self._xml_server_body(source))
        frontend.spawn("gmetad", self._poller_body)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _xml_server_body(self, gmond: Gmond):
        """gmond's XML-dump TCP service (answers gmetad polls)."""

        def body(k):
            while not self._stopped:
                yield from self._be_end.recv(k)
                # Serialising the cluster state costs CPU per host known.
                hosts = max(1, len(gmond.store.hosts()))
                yield k.compute(3_000 * hosts, mode="user")
                snapshot = list(gmond.store.latest.values())
                yield from self._be_end.send(
                    k, snapshot, self.RESPONSE_BYTES_PER_HOST * hosts
                )

        return body

    def _poller_body(self, k):
        while not self._stopped:
            t0 = k.now
            yield from self._fe_end.send(k, "dump", self.REQUEST_BYTES)
            snapshot = yield from self._fe_end.recv(k)
            for record in snapshot:
                self.store.update(record)
            self.polls += 1
            self.round_times.append(k.now - t0)
            yield k.sleep(self.interval)
