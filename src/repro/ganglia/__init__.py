"""Ganglia distributed monitoring (the paper's §5.2.2).

A faithful-in-shape model of the pieces the evaluation touches:

* :class:`~repro.ganglia.gmond.Gmond` — per-node metric daemon:
  collects local statistics periodically and multicasts them to the
  cluster (listen/announce channel).
* :class:`~repro.ganglia.gmetad.Gmetad` — front-end aggregator polling
  the gmond federation.
* :class:`~repro.ganglia.gmetric.Gmetric` — the user-metric injector the
  paper uses to feed its fine-grained scheme measurements into Ganglia.
"""

from repro.ganglia.gmond import Gmond
from repro.ganglia.gmetad import Gmetad
from repro.ganglia.gmetric import Gmetric
from repro.ganglia.metrics import MetricRecord, MetricStore
from repro.ganglia.view import CoarseLoadInfo, GangliaLoadView

__all__ = ["CoarseLoadInfo", "Gmetad", "Gmetric", "Gmond", "GangliaLoadView",
           "MetricRecord", "MetricStore"]
