"""A load view over Ganglia metrics, duck-typed like a monitor cache.

The elastic scaler (and anything else consuming a monitoring view)
wants a ``latest`` mapping of back-end index → an object carrying
``runq_load``/``cpu_util``. :class:`GangliaLoadView` derives that from
a gmond/gmetad :class:`~repro.ganglia.metrics.MetricStore`, so the
coarse Ganglia arm can drive the *same* reconfiguration machinery the
fine-grained RDMA schemes drive — the comparison the elastic-replay
experiment measures is then purely about monitoring freshness.

The derivation mirrors what the metrics actually are: ``load_one``
(the 1-minute loadavg) stands in for the run-queue signal, and
``cpu_busy`` (CPUs observed busy) over the node's CPU count for
utilisation. Both are far coarser than the fine-grained schemes' tick
EMA and jiffy deltas — which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

from repro.ganglia.metrics import MetricStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node


@dataclass(frozen=True)
class CoarseLoadInfo:
    """A Ganglia-derived stand-in for a monitoring LoadInfo."""

    backend: str
    collected_at: int
    runq_load: float
    cpu_util: float
    nr_running: int


class GangliaLoadView:
    """``latest``-style view of a Ganglia metric store."""

    def __init__(self, store: MetricStore, backends: Sequence["Node"]) -> None:
        self.store = store
        self._index_of = {node.name: i for i, node in enumerate(backends)}
        self._num_cpus = {node.name: node.num_cpus for node in backends}

    @property
    def latest(self) -> Dict[int, CoarseLoadInfo]:
        """Back-end index → coarse load info, for hosts the store knows."""
        out: Dict[int, CoarseLoadInfo] = {}
        for host in self.store.hosts():
            index = self._index_of.get(host)
            if index is None:
                continue  # not a back-end (frontend/client announcements)
            load_one = self.store.value(host, "load_one")
            cpu_busy = self.store.value(host, "cpu_busy")
            if load_one is None or cpu_busy is None:
                continue
            record = self.store.latest[(host, "load_one")]
            out[index] = CoarseLoadInfo(
                backend=host,
                collected_at=record.time,
                runq_load=float(load_one),
                cpu_util=min(1.0, float(cpu_busy) / max(1, self._num_cpus[host])),
                nr_running=int(self.store.value(host, "proc_run") or 0),
            )
        return out
