"""gmond — the Ganglia monitoring daemon.

One per node. Periodically collects the default metric set from /proc
(paying the real collection cost on its node, like the actual daemon)
and multicasts the values to the cluster channel; simultaneously listens
on the channel and folds every announcement into its local metric store
(Ganglia's listen/announce protocol — every gmond knows the whole
cluster).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ganglia.metrics import MetricRecord, MetricStore
from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.node import Node
    from repro.transport.multicast import MulticastGroup


class Gmond:
    """The per-node Ganglia daemon."""

    #: announcement payload size on the wire
    ANNOUNCE_BYTES = 256

    def __init__(
        self,
        node: "Node",
        channel: "MulticastGroup",
        interval: int = 1 * SECOND,
        nice: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("gmond interval must be positive")
        self.node = node
        self.channel = channel
        self.interval = interval
        self.store = MetricStore()
        self.announcements = 0
        self._stopped = False
        channel.subscribe(node)
        node.spawn(f"gmond:{node.name}", self._collector_body, nice=nice)
        node.spawn(f"gmond-rx:{node.name}", self._listener_body, nice=nice)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def _collector_body(self, k):
        node = self.node
        while not self._stopped:
            stats = yield from node.procfs.read_stat(k)
            records = [
                MetricRecord(node.name, "load_one", stats["loadavg"][0], k.now),
                MetricRecord(node.name, "proc_run", stats["nr_running"], k.now),
                MetricRecord(node.name, "proc_total", stats["nr_threads"], k.now),
                MetricRecord(node.name, "cpu_busy", stats["busy_cpus"], k.now),
            ]
            for record in records:
                self.store.update(record)
            self.announcements += 1
            yield from self.channel.publish(k, records, self.ANNOUNCE_BYTES)
            yield k.sleep(self.interval)

    def _listener_body(self, k):
        while not self._stopped:
            records = yield from self.channel.recv(k)
            for record in records:
                self.store.update(record)
