#!/usr/bin/env python
"""Autopsy of one slow request and one monitoring probe.

Runs a traced RUBiS burst, then drills into the causal span trees the
tracing plane recorded: the slowest sampled request (client → dispatcher
→ balancer pick → back-end queue/service → database → response) and one
RDMA-Sync monitoring probe (post → fabric flight → target DMA →
completion), printing each trace's timeline, critical path, and the
per-component exclusive-time flamegraph. The probe's verb-level segment
sum is checked against the closed-form fabric+DMA latency model, and
the whole span store is exported as Chrome-trace JSON loadable in
Perfetto (https://ui.perfetto.dev).

Tracing, like the telemetry plane, is observer bookkeeping only — the
simulated cluster behaves bit-identically with it on or off (see
benchmarks/test_tracing.py).

Run:  python examples/request_autopsy.py [scheme] [seconds] [--out FILE]
"""

import sys

from repro.config import SimConfig
from repro.experiments.common import deploy_rubis_cluster
from repro.hw.node import KERN_LOAD_BYTES
from repro.sim.units import MILLISECOND, SECOND
from repro.tracing import (
    analytic_rdma_read_ns,
    critical_path,
    flame,
    format_trace,
    save_chrome_trace,
    trace_summary,
)
from repro.tracing.analysis import verb_segment_sum
from repro.workloads.rubis import RubisWorkload


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    scheme = args[0] if args else "rdma-sync"
    duration_s = int(args[1]) if len(args) > 1 else 2
    out_path = None
    for i, a in enumerate(sys.argv[1:], 1):
        if a == "--out" and i < len(sys.argv) - 1:
            out_path = sys.argv[i + 1]

    cfg = SimConfig(num_backends=4)
    app = deploy_rubis_cluster(cfg, scheme_name=scheme, workers=8,
                               with_admission=True, with_tracing=True)
    workload = RubisWorkload(app.sim, app.dispatcher, num_clients=24,
                             think_time=10 * MILLISECOND, burst_length=8)
    workload.start()

    print(f"Running a traced 4-node RUBiS burst for {duration_s}s "
          f"({scheme} monitoring) ...")
    app.run(duration_s * SECOND)

    spans = app.sim.spans
    print(f"\nSpan store: {len(spans)} spans from {spans.traces_started} traces "
          f"({spans.dropped} dropped by the bound, {spans.open_spans} open)")

    # -- the slowest completed request ---------------------------------
    requests = [r for r in spans.roots() if r.name == "request" and r.finished]
    if requests:
        worst = max(requests, key=lambda s: s.duration)
        tree = spans.trace(worst.trace_id)
        print(f"\n=== slowest request: {worst.attrs.get('query')} "
              f"rid={worst.attrs.get('rid')} "
              f"({worst.duration / 1e6:.2f} ms) ===")
        print(format_trace(tree))
        path = critical_path(tree, worst)
        print("\ncritical path: " + " -> ".join(
            f"{s.name}({s.duration / 1e3:.0f}us)" for s in path))
        print()
        print(flame(tree, by="component", width=40,
                    title="exclusive time by node/component"))

    # -- one monitoring probe vs the analytic model --------------------
    probes = [p for p in spans.roots() if p.name.startswith("probe:") and p.finished]
    if probes:
        probe = probes[0]
        tree = spans.trace(probe.trace_id)
        print(f"\n=== monitoring probe: {probe.name} "
              f"backend={probe.attrs.get('backend')} ===")
        print(format_trace(tree))
        summary = trace_summary(tree)
        print(f"critical path total: {summary['critical_path_ns'] / 1e3:.1f}us")
        if scheme == "rdma-sync":
            seg = verb_segment_sum(critical_path(tree, probe), "read")
            ana = analytic_rdma_read_ns(cfg, KERN_LOAD_BYTES)
            print(f"verb segments: {seg}ns, analytic model: {ana}ns "
                  f"(contention accounts for any excess)")

    # -- export --------------------------------------------------------
    if out_path:
        n = save_chrome_trace(spans, out_path)
        print(f"\nPerfetto export: {n} events -> {out_path}")


if __name__ == "__main__":
    main()
