#!/usr/bin/env python
"""Watching kernel interrupt state from across the wire (Fig 6 live).

Floods one back-end with bursty network traffic, then samples its
``irq_stat`` kernel structure two ways at the same cadence:

* **e-RDMA-Sync** — the NIC DMA engine reads kernel memory at arbitrary
  instants, catching the real interrupt backlog;
* **socket-sync + kernel module** — the user-space daemon must be
  scheduled first, by which time the queues have drained.

Prints a timeline of what each observer saw, plus the per-CPU asymmetry
created by NIC interrupt affinity.

Run:  python examples/interrupt_observatory.py
"""

from repro.config import SimConfig
from repro.hw.cluster import build_cluster
from repro.monitoring import create_scheme
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.background import spawn_background_load


def main() -> None:
    cfg = SimConfig(num_backends=2)
    sim = build_cluster(cfg)
    target = sim.backends[0]
    spawn_background_load(sim, target, threads=24, comm_fraction=0.6,
                          message_interval=3 * MILLISECOND, burst=16)

    rdma = create_scheme("e-rdma-sync", sim, interval=5 * MILLISECOND)
    sock = create_scheme("socket-sync", sim, interval=5 * MILLISECOND,
                         with_irq_detail=True)
    timeline = {"e-rdma-sync": [], "socket-sync": []}

    def poller(name, scheme):
        def body(k):
            while True:
                info = yield from scheme.query(k, 0)
                timeline[name].append((k.now, tuple(info.irq_pending or (0, 0))))
                yield k.sleep(5 * MILLISECOND)

        return body

    sim.frontend.spawn("rdma-observer", poller("e-rdma-sync", rdma))
    sim.frontend.spawn("sock-observer", poller("socket-sync", sock))

    print("Sampling irq_stat for 3 simulated seconds ...\n")
    sim.run(3 * SECOND)

    print(f"{'time(ms)':>9s} {'e-rdma-sync cpu0/cpu1':>22s} {'socket-sync cpu0/cpu1':>22s}")
    sock_iter = iter(timeline["socket-sync"])
    sock_cur = next(sock_iter, None)
    last_sock = (0, (0, 0))
    shown = 0
    for t, pending in timeline["e-rdma-sync"]:
        if sum(pending) == 0:
            continue  # show only the interesting instants
        while sock_cur is not None and sock_cur[0] < t:
            last_sock = sock_cur
            sock_cur = next(sock_iter, None)
        sock_pending = last_sock[1]
        print(f"{t / 1e6:9.1f} {pending[0]:10d}/{pending[1]:<10d} "
              f"{sock_pending[0]:10d}/{sock_pending[1]:<10d}")
        shown += 1
        if shown >= 15:
            break

    for name, series in timeline.items():
        n = len(series)
        mean0 = sum(p[0] for _, p in series) / n
        mean1 = sum(p[1] for _, p in series) / n
        nonzero = sum(1 for _, p in series if sum(p) > 0)
        print(f"\n{name}: {n} samples, mean pending cpu0={mean0:.2f} "
              f"cpu1={mean1:.2f}, non-zero samples={nonzero}")
    print("\nCPU1 carries the backlog (NIC IRQ affinity), and only the "
          "DMA-based sampler sees it — the paper's Fig 6.")


if __name__ == "__main__":
    main()
