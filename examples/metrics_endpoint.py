#!/usr/bin/env python
"""Serve a live cluster on a real ``/metrics`` scrape endpoint.

Builds the RUBiS stack with the observability surface and an HTTP
exporter, advances the simulation, then scrapes its own endpoint with
``urllib`` exactly like Prometheus would: GET ``/metrics``, check the
OpenMetrics content type, validate the body with the in-tree
promtool-style checker, and print a digest of what a monitoring system
would ingest. Also fetches ``/report`` — the per-session job report
joining trace critical paths with telemetry quantiles.

With ``--serve`` the process stays up after the run so you can point a
browser (or an actual Prometheus scrape config) at the printed URL.

Run:  python examples/metrics_endpoint.py [scheme] [seconds]
          [--serve] [--port N]

``--port N`` binds a fixed port (default: ephemeral, never collides) —
useful with ``--serve`` so a static Prometheus scrape config can find
the endpoint across restarts.
"""

import sys
import urllib.request

from repro.config import SimConfig
from repro.obs import validate_exposition
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RubisWorkload


def main() -> None:
    argv = sys.argv[1:]
    port = 0
    if "--port" in argv:
        at = argv.index("--port")
        port = int(argv[at + 1])
        del argv[at:at + 2]
    args = [a for a in argv if not a.startswith("--")]
    scheme = args[0] if args else "e-rdma-sync"
    duration_s = float(args[1]) if len(args) > 1 else 2.0

    from repro.api import ClusterBuilder

    cfg = SimConfig(num_backends=4)
    cluster = (
        ClusterBuilder(cfg)
        .scheme(scheme)
        .with_tracing()
        .observability(http=True, http_port=port)
        .build()
    )
    RubisWorkload(cluster.sim, cluster.dispatcher, num_clients=24,
                  think_time=8 * MILLISECOND).start()

    url = cluster.obs.server.url
    print(f"exporter listening on {url}/metrics")
    print(f"running {duration_s}s of simulated RUBiS ({scheme}) ...")
    cluster.run(until=int(duration_s * SECOND))

    with urllib.request.urlopen(url + "/metrics") as resp:
        content_type = resp.headers["Content-Type"]
        body = resp.read().decode("utf-8")
    errors = validate_exposition(body)
    families = body.count("# TYPE ")
    samples = sum(1 for line in body.splitlines()
                  if line and not line.startswith("#"))
    print(f"\nscraped {len(body.encode())} bytes: {families} metric "
          f"families, {samples} samples")
    print(f"content-type: {content_type}")
    print(f"format errors: {len(errors)}" +
          (f" -> {errors[:3]}" if errors else " (valid OpenMetrics)"))

    interesting = ("_requests_total", "_monitor_epoch", "_sim_time_ns",
                   "_alerts_total", "_backend_cpu_util_count")
    print("\nsample lines:")
    for line in body.splitlines():
        if any(key in line for key in interesting) and not line.startswith("#"):
            print(f"  {line}")

    with urllib.request.urlopen(url + "/report") as resp:
        report = resp.read().decode("utf-8")
    print(f"\n/report: {len(report)} bytes of job-report JSON")
    print(cluster.obs.job_report().render())

    if "--serve" in sys.argv:
        print(f"\nserving on {url} — Ctrl-C to exit")
        try:
            import time

            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
    cluster.obs.stop()


if __name__ == "__main__":
    main()
