#!/usr/bin/env python
"""A cluster-based auction site balanced by fine-grained monitoring.

Deploys the full Table-1 stack — back-end web servers, the WebSphere-
style least-loaded balancer fed by a monitoring scheme of your choice,
and the closed-loop RUBiS client emulator — then prints the per-query
response-time table and the per-back-end request distribution.

Run:  python examples/rubis_cluster.py [scheme] [seconds]
      scheme ∈ socket-async | socket-sync | rdma-async | rdma-sync | e-rdma-sync
"""

import sys

from repro.analysis.report import format_table
from repro.config import SimConfig
from repro.experiments.common import deploy_rubis_cluster
from repro.sim.units import MILLISECOND, SECOND
from repro.workloads.rubis import RUBIS_QUERIES, RubisWorkload


def main() -> None:
    scheme = sys.argv[1] if len(sys.argv) > 1 else "e-rdma-sync"
    duration_s = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    cfg = SimConfig(num_backends=4)
    cfg.cpu.wake_preempt_margin = 8
    cfg.cpu.timeslice_ticks = 8
    app = deploy_rubis_cluster(cfg, scheme_name=scheme,
                               poll_interval=50 * MILLISECOND, workers=32)
    workload = RubisWorkload(app.sim, app.dispatcher, num_clients=96,
                             think_time=3 * MILLISECOND, demand_cv=0.4,
                             burst_length=10, idle_factor=8)
    workload.start()

    print(f"Running RUBiS for {duration_s}s of simulated time "
          f"with {scheme} monitoring ...")
    app.run(duration_s * SECOND)

    stats = app.dispatcher.stats
    rows = []
    for q in RUBIS_QUERIES:
        times = stats.response_times(q.name)
        if not times:
            continue
        rows.append([
            q.name,
            len(times),
            f"{sum(times) / len(times) / 1e6:.1f}",
            f"{max(times) / 1e6:.0f}",
        ])
    print()
    print(format_table(["Query", "count", "avg ms", "max ms"], rows,
                       title=f"RUBiS response times ({scheme})"))
    print(f"\nThroughput: {stats.throughput(duration_s * SECOND):.0f} req/s")
    print(f"Per-backend distribution: {dict(sorted(stats.per_backend_counts().items()))}")
    lats = app.scheme.latencies()
    print(f"Monitoring latency: avg {sum(lats) / len(lats) / 1e3:.0f} µs, "
          f"max {max(lats) / 1e3:.0f} µs over {len(lats)} queries")


if __name__ == "__main__":
    main()
