#!/usr/bin/env python
"""Cluster-wide monitoring with Ganglia, fed by fine-grained gmetric.

Stands up the paper's §5.2.2 stack: a gmond daemon on every back-end
multicasting the default metric set, a gmetad aggregator on the front
end, and gmetric injecting fine-grained load measurements collected
through a monitoring scheme of your choice. Prints the federated view
and the cost of the collection path.

Run:  python examples/ganglia_monitoring.py [scheme] [granularity_ms]
"""

import sys

from repro.analysis.report import format_table
from repro.config import SimConfig
from repro.ganglia.gmetad import Gmetad
from repro.ganglia.gmetric import Gmetric
from repro.ganglia.gmond import Gmond
from repro.hw.cluster import build_cluster
from repro.monitoring import create_scheme
from repro.sim.units import MILLISECOND, SECOND
from repro.transport.multicast import MulticastGroup
from repro.workloads.background import spawn_background_load


def main() -> None:
    scheme_name = sys.argv[1] if len(sys.argv) > 1 else "rdma-sync"
    granularity_ms = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    cfg = SimConfig(num_backends=4)
    sim = build_cluster(cfg)
    for node in sim.backends[:2]:
        spawn_background_load(sim, node, 12)

    channel = MulticastGroup("ganglia")
    gmonds = [Gmond(node, channel, interval=1 * SECOND) for node in sim.backends]
    gmetad = Gmetad(sim.frontend, gmonds, interval=2 * SECOND)
    collector = create_scheme(scheme_name, sim, interval=granularity_ms * MILLISECOND)
    gmetric = Gmetric(collector, channel, granularity=granularity_ms * MILLISECOND)

    print(f"Running Ganglia with gmetric({scheme_name}) every "
          f"{granularity_ms} ms for 5 simulated seconds ...")
    sim.run(5 * SECOND)

    rows = []
    for host in gmetad.store.hosts():
        metrics = gmetad.store.metrics_for(host)
        rows.append([
            host,
            f"{metrics.get('load_one', 0):.2f}",
            int(metrics.get("proc_total", 0)),
            int(metrics.get("proc_run", 0)),
        ])
    print()
    print(format_table(["host", "load_one", "proc_total", "proc_run"], rows,
                       title="gmetad federated view"))

    fine = gmonds[0].store
    rows = []
    for node in sim.backends:
        rows.append([node.name, f"{fine.value(node.name, 'fine_load') or 0:.2f}"])
    print()
    print(format_table(["host", "fine_load (gmetric)"], rows,
                       title=f"fine-grained metric via {scheme_name}"))

    lats = collector.latencies()
    print(f"\ngmetric published {gmetric.published} rounds; collection "
          f"latency avg {sum(lats) / len(lats) / 1e3:.0f} µs "
          f"(max {max(lats) / 1e3:.0f} µs)")
    print("Try: python examples/ganglia_monitoring.py socket-sync 1 — and "
          "watch the collection latency blow up on the loaded nodes.")


if __name__ == "__main__":
    main()
