#!/usr/bin/env python
"""Dynamic server reconfiguration driven by fine-grained monitoring (§7).

Two services share a four-node cluster: a "web" pool and a "batch"
pool, two servers each. Mid-run, the web service gets hit by a load
surge. The reconfiguration manager — fed by RDMA-Sync monitoring —
notices the pool imbalance and migrates a batch server into the web
pool. The script prints the pool history and shows how the reaction lag
depends on the monitoring interval.

Run:  python examples/reconfiguration.py [interval_ms]
"""

import sys

from repro.config import SimConfig
from repro.hw.cluster import build_cluster
from repro.monitoring import create_scheme
from repro.server.reconfig import ReconfigurationManager
from repro.sim.units import MILLISECOND, SECOND, fmt_time, us


def run_once(interval_ms: int, verbose: bool = True) -> float:
    sim = build_cluster(SimConfig(num_backends=4))
    scheme = create_scheme("rdma-sync", sim, interval=interval_ms * MILLISECOND)
    manager = ReconfigurationManager(
        scheme, pools={"web": [0, 1], "batch": [2, 3]},
        high_water=0.6, low_water=0.4,
    )
    sim.run(600 * MILLISECOND)
    surge_at = sim.env.now

    def hog(k):
        while True:
            yield k.compute(us(1000))

    for node in (sim.backends[0], sim.backends[1]):
        for i in range(6):
            node.spawn(f"surge:{node.name}:{i}", hog)
    sim.run(surge_at + 5 * SECOND)

    if verbose:
        print(f"  surge at {fmt_time(surge_at)}")
        for event in manager.events:
            print(f"  {fmt_time(event.time)}: backend{event.backend} "
                  f"{event.from_pool} -> {event.to_pool} "
                  f"(hot-pool load {event.trigger_load:.2f})")
        print(f"  final pools: {manager.pools}")
    if not manager.events:
        return float("nan")
    return (manager.events[0].time - surge_at) / 1e6


def main() -> None:
    interval_ms = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    print(f"Reconfiguration with rdma-sync monitoring every {interval_ms} ms:")
    lag = run_once(interval_ms)
    print(f"  reaction lag: {lag:.1f} ms\n")

    print("Reaction lag vs monitoring interval:")
    for g in (10, 50, 250, 1000):
        lag = run_once(g, verbose=False)
        bar = "#" * max(1, int(lag / 25))
        print(f"  {g:5d} ms poll -> {lag:7.1f} ms lag  {bar}")
    print("\nFiner monitoring, faster reconfiguration — the paper's §7 point.")


if __name__ == "__main__":
    main()
