#!/usr/bin/env python
"""The design space in one table: all six schemes, four axes.

Characterises every registered monitoring scheme — the paper's five and
the RDMA-write-push extension — on the axes that matter:

* front-end query latency, idle and under back-end load;
* staleness of the delivered data;
* monitoring threads on the back-end;
* application perturbation at 4 ms granularity.

Run:  python examples/scheme_shootout.py
"""

from repro.analysis.report import format_series
from repro.experiments import design_space
from repro.sim.units import SECOND


def main() -> None:
    print("Characterising all schemes (a few simulated seconds each) ...\n")
    result = design_space.run(duration=2 * SECOND)
    print(format_series("scheme", result.xs, result.series,
                        title="Monitoring design space"))
    print()
    print(result.notes)
    print("""
Reading the table:
  * loaded latency is where two-sided transports fall over (Fig 3);
  * staleness is where asynchronous designs fall over (Fig 5);
  * backend threads + perturbation are where any server-resident
    agent falls over (Fig 4) — including the one-sided push design;
  * rdma-sync / e-rdma-sync are the only rows clean on every axis,
    which is the paper's whole argument in one line.""")


if __name__ == "__main__":
    main()
