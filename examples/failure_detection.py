#!/usr/bin/env python
"""Liveness detection with RDMA heartbeats (robustness extension).

Because an RDMA read of kernel memory needs neither the remote CPU nor
any remote software, it can positively distinguish three conditions a
socket health-check cannot tell apart:

* ALIVE — the probe returns and the kernel's tick counter advances;
* HUNG  — the probe returns but the tick counter is frozen (kernel
  livelock: the NIC answers, the OS does not);
* DEAD  — the probe times out (node off the fabric).

This script crashes one back-end, hangs another, and shows the
heartbeat monitor classifying all three states within a few probe
intervals.

Run:  python examples/failure_detection.py
"""

from repro.config import SimConfig
from repro.hw.cluster import build_cluster
from repro.monitoring.heartbeat import HeartbeatMonitor
from repro.sim.units import MILLISECOND, SECOND, fmt_time
from repro.workloads.background import spawn_background_load


def main() -> None:
    sim = build_cluster(SimConfig(num_backends=3))
    for be in sim.backends:
        spawn_background_load(sim, be, 8)
    hb = HeartbeatMonitor(sim, interval=20 * MILLISECOND, hung_after=2)

    print("All nodes healthy; probing every 20 ms ...")
    sim.run(1 * SECOND)
    print({i: s.value for i, s in hb.state.items()})

    crash_at = sim.env.now
    print(f"\nt={fmt_time(crash_at)}: backend0 crashes, backend1 hangs ...")
    sim.backends[0].fail("crashed")
    sim.backends[1].fail("hung")
    sim.run(crash_at + 1 * SECOND)

    print({i: s.value for i, s in hb.state.items()})
    print("\nState transitions:")
    for t in hb.transitions:
        print(f"  t={fmt_time(t.time)}  backend{t.backend} -> {t.state.value} "
              f"(+{fmt_time(t.time - crash_at)} after the fault)")
    print(f"\nHealthy pool for the load balancer: {hb.healthy_backends()}")
    print(f"Total probes: {hb.probes} — zero CPU consumed on any back-end.")


if __name__ == "__main__":
    main()
