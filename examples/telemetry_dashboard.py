#!/usr/bin/env python
"""The bounded metric plane watching an overloaded RUBiS cluster.

Runs an 8-node RUBiS burst with the full telemetry pipeline attached to
the front-end monitor: ring-buffer retention, streaming percentile
digests, EWMA anomaly detection and the alert engine. Halfway through,
one back-end is driven into overload by a background-load storm and a
second one hangs (kernel livelock: its HCA still answers one-sided
reads, but the tick counter freezes) — the overload threshold rule and
the RDMA-heartbeat rule both fire, and the run ends with the ASCII
dashboard plus the alert log.

Everything the dashboard shows was collected without consuming any
simulated time: the pipeline is observer-driven on the front end, so
the monitored cluster behaves bit-identically with or without it
(see benchmarks/test_telemetry.py).

Run:  python examples/telemetry_dashboard.py [scheme] [seconds]
"""

import sys

from repro.config import SimConfig
from repro.experiments.common import deploy_rubis_cluster
from repro.monitoring.heartbeat import HeartbeatMonitor
from repro.sim.units import MILLISECOND, SECOND, fmt_time
from repro.telemetry.pipeline import default_rules
from repro.workloads.background import spawn_background_load
from repro.workloads.rubis import RubisWorkload


def main() -> None:
    scheme = sys.argv[1] if len(sys.argv) > 1 else "rdma-sync"
    duration_s = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    cfg = SimConfig(num_backends=8)
    cfg.monitor.history_limit = 2048  # bounded front-end history
    app = deploy_rubis_cluster(
        cfg, scheme_name=scheme, poll_interval=50 * MILLISECOND, workers=16,
        with_telemetry=True,
        telemetry_rules=default_rules(overload_above=0.95, overload_clear=0.60),
    )
    heartbeat = HeartbeatMonitor(app.sim, interval=50 * MILLISECOND)
    app.telemetry.attach_heartbeat(heartbeat)

    workload = RubisWorkload(app.sim, app.dispatcher, num_clients=16,
                             think_time=10 * MILLISECOND, demand_cv=0.4,
                             burst_length=10, idle_factor=8)
    workload.start()

    print(f"Running an 8-node RUBiS burst for {duration_s}s "
          f"({scheme} monitoring, telemetry attached) ...")
    half = duration_s * SECOND // 2
    app.run(half)

    # Fault injection: a CPU storm overloads backend0; backend7's kernel
    # livelocks (the HCA keeps answering, so polling continues, but the
    # heartbeat sees its tick counter freeze).
    print(f"t={fmt_time(app.sim.env.now)}: "
          "backend0 hit by a background-load storm, backend7 hangs ...")
    spawn_background_load(app.sim, app.sim.backends[0], 24)
    app.sim.backends[7].fail("hung")
    app.run(duration_s * SECOND)

    print()
    print(app.telemetry.dashboard())
    print()
    raised = [a for a in app.telemetry.engine.log if not a.cleared]
    print(f"Alerts raised: {len(raised)} "
          f"({app.telemetry.engine.counts_by_rule()})")
    print(f"Monitor polls: {app.monitor.polls}, history retained "
          f"{len(app.monitor.history)} of "
          f"{len(app.monitor.history) + app.monitor.history_dropped} entries, "
          f"telemetry retained <= {app.telemetry.memory_bound()} samples")


if __name__ == "__main__":
    main()
