#!/usr/bin/env python
"""Quickstart: monitor a loaded back-end with all five schemes.

Builds a two-back-end cluster, loads one node with background work,
deploys every monitoring scheme side by side and prints what each one
reports — latency, staleness and the load values themselves. Finishes by
demonstrating the §6 security property: kernel regions are registered
read-only, so a remote RDMA write is NAKed.

Run:  python examples/quickstart.py
"""

from repro.config import SimConfig
from repro.hw.cluster import build_cluster
from repro.monitoring import FrontendMonitor, create_scheme
from repro.monitoring.registry import SCHEME_NAMES
from repro.sim.units import MILLISECOND, SECOND, fmt_time, us
from repro.transport.verbs import ProtectionDomain, connect_qp
from repro.workloads.background import spawn_background_load


def main() -> None:
    cfg = SimConfig(num_backends=2)
    sim = build_cluster(cfg)
    target = sim.backends[0]

    # Load the first back-end: 24 background threads, half of them
    # hammering the NIC (the paper's §5.1.1 setup).
    spawn_background_load(sim, target, threads=24)

    # Deploy all five schemes concurrently, each polling every 50 ms.
    monitors = {}
    for name in SCHEME_NAMES:
        scheme = create_scheme(name, sim, interval=50 * MILLISECOND)
        monitors[name] = FrontendMonitor(scheme, name=f"mon:{name}")
        monitors[name].start()

    print("Simulating 3 seconds of cluster time ...")
    sim.run(3 * SECOND)

    print(f"\n{'scheme':14s} {'avg lat':>10s} {'max lat':>10s} "
          f"{'staleness':>10s} {'threads':>8s} {'cpu':>5s} {'runq':>6s}")
    for name, monitor in monitors.items():
        scheme = monitor.scheme
        lats = scheme.latencies()
        info = monitor.load_of(0)
        assert info is not None
        print(f"{name:14s} {fmt_time(int(sum(lats) / len(lats))):>10s} "
              f"{fmt_time(max(lats)):>10s} {fmt_time(info.staleness):>10s} "
              f"{info.nr_threads:8d} {info.cpu_util:5.2f} {info.runq_load:6.2f}")

    # --- §6: kernel memory is registered read-only --------------------------
    pd = ProtectionDomain.for_node(target)
    kern_mr = next(mr for mr in pd.mrs.values() if mr.region.name == "kern.load")
    qp, _ = connect_qp(sim.frontend, target)
    outcome = []

    def attacker(k):
        wc = yield from qp.rdma_write(k, kern_mr.rkey, {"evil": True}, 64)
        outcome.append(wc.status)

    sim.frontend.spawn("attacker", attacker)
    sim.run(sim.env.now + 10 * MILLISECOND)
    print(f"\nRDMA write to the kernel load region -> {outcome[0].value} "
          "(read-only registration, as §6 requires)")


if __name__ == "__main__":
    main()
