#!/usr/bin/env python
"""Streaming ASCII dashboard tailing the metrics registry during a run.

Advances the simulated cluster in small slices and, after each slice,
redraws a terminal frame from the *live* observability surface: the
front-end's epoch and poll counters, per-back-end digest quantiles with
CPU sparklines, request throughput, active alerts, and — when the
congested fabric is on — switch-port depth/ECN/pause counters. It is
the consumption loop a Grafana panel would run against ``/metrics``,
inlined: every number on screen is also served by the scrape endpoint
(``examples/metrics_endpoint.py``).

The dashboard reads the same side-effect-free collectors the exporter
uses, so watching it does not perturb the run: same seed, same
outcomes, frames or not.

Run:  python examples/live_dashboard.py [scheme] [seconds]
          [--frames N] [--no-clear]

``--frames N`` caps the redraw count (headless/CI use); ``--no-clear``
appends frames instead of rewriting the screen.
"""

import sys

from repro.config import SimConfig
from repro.sim.units import MILLISECOND, SECOND
from repro.telemetry.export import NO_DATA, sparkline
from repro.workloads.rubis import RubisWorkload

CLEAR = "\x1b[2J\x1b[H"


def frame(cluster, now_ns: int, width: int = 40) -> str:
    """One dashboard frame from live plane state."""
    pipe = cluster.telemetry
    stats = cluster.dispatcher.stats
    lines = [
        f"== LIVE CLUSTER DASHBOARD t={now_ns / 1e9:7.3f}s "
        f"epoch={cluster.monitor.epoch} polls={cluster.monitor.polls} ==",
        f"requests: completed={stats.count()} "
        f"rejected={stats.rejected_count} timed_out={stats.timeout_count} "
        f"rerouted={cluster.dispatcher.rerouted_by_alert}",
        "",
    ]
    for backend in pipe.backends():
        cpu = pipe.digest(backend, "cpu_util")
        ring = pipe.store.get(f"b{backend}.cpu_util")
        values = ring.values() if ring is not None else []
        busy = (f"p50={cpu.p50:4.2f} p95={cpu.p95:4.2f}"
                if cpu and cpu.count else NO_DATA)
        lines.append(
            f"  backend{backend} cpu {busy} [{sparkline(values, width)}]")
    active = pipe.engine.active_alerts()
    lines.append("")
    if active:
        lines.append("active alerts: " + ", ".join(
            f"{a.rule}@backend{a.backend}" for a in active))
    else:
        lines.append("active alerts: none")
    if cluster.sim.congestion is not None:
        for sw in cluster.sim.congestion.switches:
            for port in sw.ports():
                if port.enqueued:
                    lines.append(
                        f"  sw port{port.index}: enq={port.enqueued} "
                        f"ecn={port.ecn_marks} pause_ns={port.pause_ns}")
    return "\n".join(lines)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    scheme = args[0] if args else "e-rdma-sync"
    duration_s = float(args[1]) if len(args) > 1 else 3.0
    max_frames = None
    if "--frames" in sys.argv:
        max_frames = int(sys.argv[sys.argv.index("--frames") + 1])
    clear = "--no-clear" not in sys.argv

    from repro.api import ClusterBuilder

    cfg = SimConfig(num_backends=4)
    cluster = (
        ClusterBuilder(cfg)
        .scheme(scheme)
        .with_tracing()
        .observability()
        .build()
    )
    RubisWorkload(cluster.sim, cluster.dispatcher, num_clients=32,
                  think_time=8 * MILLISECOND, burst_length=8).start()

    slice_ns = 100 * MILLISECOND
    until = int(duration_s * SECOND)
    frames = 0
    now = 0
    while now < until and (max_frames is None or frames < max_frames):
        now = min(now + slice_ns, until)
        cluster.run(until=now)
        out = frame(cluster, now)
        if clear:
            sys.stdout.write(CLEAR + out + "\n")
        else:
            print(out)
            print()
        sys.stdout.flush()
        frames += 1
    # park the cursor below the last frame and print the epilogue
    print(f"\n{frames} frames over {now / 1e9:.1f}s simulated; final scrape "
          f"is {len(cluster.obs.exposition().encode())} bytes of OpenMetrics "
          f"across {cluster.obs.exposition().count('# TYPE ')} families")


if __name__ == "__main__":
    main()
