"""Tests for the CPU scheduler: dispatch, preemption, accounting."""

import pytest

from repro.config import SimConfig
from repro.hw.cluster import build_cluster
from repro.sim.units import ms, us


def spawn_hog(node, name="hog", nice=0):
    def hog(k):
        while True:
            yield k.compute(us(1000))

    return node.spawn(name, hog, nice=nice)


def test_single_task_runs_to_completion(cluster1):
    be = cluster1.backends[0]
    done = []

    def body(k):
        yield k.compute(us(100))
        done.append(k.now)
        return "finished"

    task = be.spawn("worker", body)
    cluster1.run(ms(1))
    assert done and done[0] >= us(100)
    assert task.done.processed
    assert task.done.value == "finished"


def test_compute_accounts_user_time(cluster1):
    be = cluster1.backends[0]

    def body(k):
        yield k.compute(us(500))

    task = be.spawn("worker", body)
    cluster1.run(ms(2))
    assert task.user_ns == us(500)


def test_sys_mode_accounts_separately(cluster1):
    be = cluster1.backends[0]

    def body(k):
        yield k.compute(us(200), mode="sys")
        yield k.compute(us(300), mode="user")

    task = be.spawn("worker", body)
    cluster1.run(ms(2))
    assert task.sys_ns == us(200)
    assert task.user_ns == us(300)


def test_two_cpus_run_two_tasks_in_parallel(cluster1):
    be = cluster1.backends[0]
    ends = []

    def body(k):
        yield k.compute(ms(5))
        ends.append(k.now)

    be.spawn("a", body)
    be.spawn("b", body)
    cluster1.run(ms(20))
    # Both finish around 5 ms: they did not serialise.
    assert len(ends) == 2
    assert all(t < ms(6) for t in ends)


def test_three_tasks_on_two_cpus_contend(cluster1):
    be = cluster1.backends[0]
    ends = {}

    def body(name):
        def inner(k):
            yield k.compute(ms(30))
            ends[name] = k.now

        return inner

    for name in ("a", "b", "c"):
        be.spawn(name, body(name))
    cluster1.run(ms(120))
    assert len(ends) == 3
    # 90 ms of work over 2 CPUs: no one can finish before 30 ms and the
    # total span must be at least 45 ms.
    assert min(ends.values()) >= ms(30)
    assert max(ends.values()) >= ms(45)


def test_sleep_blocks_without_consuming_cpu(cluster1):
    be = cluster1.backends[0]
    wake_times = []

    def sleeper(k):
        yield k.sleep(ms(10))
        wake_times.append(k.now)

    task = be.spawn("sleeper", sleeper)
    cluster1.run(ms(50))
    assert wake_times and wake_times[0] >= ms(10)
    assert task.user_ns == 0


def test_sleeper_wakes_promptly_on_idle_node(cluster1):
    be = cluster1.backends[0]
    wake_times = []

    def sleeper(k):
        yield k.sleep(ms(10))
        wake_times.append(k.now)

    be.spawn("sleeper", sleeper)
    cluster1.run(ms(50))
    # Wakeup-to-run latency on an idle node is only scheduling overhead.
    assert wake_times[0] - ms(10) < us(50)


def test_woken_interactive_task_preempts_hogs(cluster1):
    be = cluster1.backends[0]
    latencies = []

    def sleeper(k):
        for _ in range(5):
            yield k.sleep(ms(20))
            t0 = k.now
            yield k.compute(us(10))
            latencies.append(k.now - t0)

    for i in range(4):
        spawn_hog(be, f"hog{i}")
    be.spawn("interactive", sleeper)
    cluster1.run(ms(400))
    assert len(latencies) == 5
    # A freshly-woken sleeper has accumulated counter: it should usually
    # preempt a compute hog rather than wait a full timeslice.
    assert sorted(latencies)[len(latencies) // 2] < ms(5)


def test_nice_affects_timeslice(cluster1):
    be = cluster1.backends[0]
    progress = {"fav": 0, "unfav": 0}

    def worker(name):
        def inner(k):
            while True:
                yield k.compute(us(500))
                progress[name] += 1

        return inner

    # Saturate both CPUs so priorities matter.
    for i in range(2):
        spawn_hog(be, f"hog{i}")
    be.spawn("fav", worker("fav"), nice=-10)
    be.spawn("unfav", worker("unfav"), nice=10)
    cluster1.run(ms(600))
    assert progress["fav"] > progress["unfav"] * 1.3


def test_nr_running_and_threads(cluster1):
    be = cluster1.backends[0]

    def sleeper(k):
        yield k.sleep(ms(100))

    # Spawn the sleeper first so it reaches its sleep before the hogs
    # saturate the CPUs (a fresh spawn has to win the run queue).
    be.spawn("sleeper", sleeper)
    cluster1.run(ms(5))
    for i in range(3):
        spawn_hog(be, f"hog{i}")
    cluster1.run(ms(15))
    # 3 hogs runnable; sleeper blocked; 2 ksoftirqd blocked.
    assert be.sched.nr_running() == 3
    assert be.sched.nr_threads() == 6


def test_task_exit_removes_from_accounting(cluster1):
    be = cluster1.backends[0]

    def quick(k):
        yield k.compute(us(10))

    before = be.sched.nr_threads()
    be.spawn("quick", quick)
    cluster1.run(ms(5))
    assert be.sched.nr_threads() == before


def test_task_exception_fails_done_event(cluster1):
    be = cluster1.backends[0]

    def bad(k):
        yield k.compute(us(10))
        raise ValueError("task crashed")

    task = be.spawn("bad", bad)
    caught = []

    def watcher(k):
        try:
            yield k.wait(task.done)
        except ValueError as exc:
            caught.append(str(exc))

    be.spawn("watcher", watcher)
    cluster1.run(ms(5))
    assert caught == ["task crashed"]


def test_yield_cpu_round_robins(cluster1):
    be = cluster1.backends[0]
    order = []

    def polite(name):
        def inner(k):
            for _ in range(3):
                yield k.compute(us(10))
                order.append(name)
                yield k.yield_cpu()

        return inner

    # Fill both CPUs with hogs so the polite tasks share one slot.
    be.spawn("p1", polite("p1"))
    be.spawn("p2", polite("p2"))
    cluster1.run(ms(10))
    assert order.count("p1") == 3 and order.count("p2") == 3


def test_jiffies_idle_accumulates(cluster1):
    be = cluster1.backends[0]
    cluster1.run(ms(100))
    j = be.sched.jiffies(0)
    # An idle node: idle dominates; only tick interrupts charge anything.
    assert j["idle"] > ms(95)
    assert j["user"] == 0


def test_jiffies_busy_node(cluster1):
    be = cluster1.backends[0]
    spawn_hog(be)
    spawn_hog(be, "hog2")
    cluster1.run(ms(100))
    be.sched.sync()
    total_user = sum(be.sched.jiffies(i)["user"] for i in range(2))
    assert total_user > ms(180)  # two CPUs nearly saturated


def test_sync_mid_burst_is_exact(cluster1):
    be = cluster1.backends[0]

    def worker(k):
        yield k.compute(ms(20))

    task = be.spawn("worker", worker)
    cluster1.run(ms(10))
    be.sched.sync()
    # Half the burst should be charged (modulo overheads).
    assert ms(9) < task.user_ns < ms(11)


def test_timeslice_expiry_rotates_hogs(cluster1):
    be = cluster1.backends[0]
    # 4 hogs on 2 CPUs: each must make progress via timeslice rotation.
    tasks = [spawn_hog(be, f"hog{i}") for i in range(4)]
    cluster1.run(ms(500))
    be.sched.sync()
    times = [t.user_ns for t in tasks]
    assert all(t > ms(50) for t in times), times
    assert max(times) < 3 * min(times), times


def test_epoch_recalc_happens(cluster1):
    be = cluster1.backends[0]
    for i in range(3):
        spawn_hog(be, f"hog{i}")
    cluster1.run(ms(500))
    assert be.sched.total_epochs > 0


def test_spawn_nice_validation(cluster1):
    be = cluster1.backends[0]

    def body(k):
        yield k.compute(1)

    with pytest.raises(ValueError):
        be.spawn("bad", body, nice=42)


def test_wait_event_delivers_value(cluster1):
    be = cluster1.backends[0]
    got = []
    ev = cluster1.env.event()

    def waiter(k):
        value = yield k.wait(ev)
        got.append((k.now, value))

    def firer():
        yield cluster1.env.timeout(ms(5))
        ev.succeed("hello")

    be.spawn("waiter", waiter)
    cluster1.env.process(firer())
    cluster1.run(ms(20))
    assert got and got[0][1] == "hello"
    assert got[0][0] >= ms(5)


def test_wait_on_already_fired_event(cluster1):
    be = cluster1.backends[0]
    ev = cluster1.env.event()
    ev.succeed("early")
    got = []

    def waiter(k):
        yield k.sleep(ms(2))
        value = yield k.wait(ev)
        got.append(value)

    be.spawn("waiter", waiter)
    cluster1.run(ms(20))
    assert got == ["early"]
