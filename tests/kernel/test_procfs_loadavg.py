"""Tests for /proc emulation, load accounting and the kernel module."""

from repro.sim.units import ms, us


def spawn_hogs(node, n):
    def hog(k):
        while True:
            yield k.compute(us(1000))

    for i in range(n):
        node.spawn(f"hog{i}", hog)


def test_proc_read_returns_snapshot(cluster1):
    be = cluster1.backends[0]
    got = []

    def reader(k):
        stats = yield from be.procfs.read_stat(k)
        got.append(stats)

    be.spawn("reader", reader)
    cluster1.run(ms(5))
    stats = got[0]
    assert stats["nr_threads"] == 3  # reader + 2 ksoftirqd
    assert "jiffies" in stats and len(stats["jiffies"]) == 2
    assert stats["time"] > 0


def test_proc_scan_cost_grows_with_tasks(cluster1):
    be = cluster1.backends[0]
    empty_cost = be.procfs.scan_cost()
    spawn_hogs(be, 10)
    assert be.procfs.scan_cost() == empty_cost + 10 * be.cfg.syscall.proc_read_per_task


def test_proc_read_charges_caller(cluster1):
    be = cluster1.backends[0]

    def reader(k):
        yield from be.procfs.read_stat(k)

    task = be.spawn("reader", reader)
    cluster1.run(ms(5))
    assert task.sys_ns >= be.cfg.syscall.proc_read_base


def test_fast_load_tracks_runqueue(cluster1):
    be = cluster1.backends[0]
    spawn_hogs(be, 6)
    cluster1.run(ms(500))
    # 6 runnable hogs: the tick EMA should settle near 6.
    assert 4.5 < be.loadacct.fast_load() < 7.5


def test_fast_load_decays_when_idle(cluster1):
    be = cluster1.backends[0]

    def burst(k):
        yield k.compute(ms(50))

    be.spawn("burst", burst)
    cluster1.run(ms(60))
    peak = be.loadacct.fast_load()
    cluster1.run(ms(600))
    assert be.loadacct.fast_load() < peak / 2


def test_avenrun_rises_under_sustained_load(cluster1):
    be = cluster1.backends[0]
    spawn_hogs(be, 4)
    cluster1.run(ms(30_000))
    one_min, _, _ = be.loadacct.loadavg()
    assert one_min > 0.5


def test_snapshot_busy_cpus(cluster1):
    be = cluster1.backends[0]
    spawn_hogs(be, 2)
    cluster1.run(ms(10))
    snap = be.loadacct.snapshot()
    assert snap["busy_cpus"] == 2
    assert snap["nr_running"] == 2


def test_kmod_irq_stat_read_costs_and_returns(cluster1):
    be = cluster1.backends[0]
    got = []

    def reader(k):
        stat = yield from be.kmod.read_irq_stat(k)
        got.append(stat)

    task = be.spawn("reader", reader)
    cluster1.run(ms(5))
    assert got and "cpus" in got[0]
    assert task.sys_ns >= be.kmod.IOCTL_COST
    assert be.kmod.reads == 1


def test_utilisation_from_jiffy_deltas(cluster1):
    """CPU utilisation derived by differencing jiffies ≈ truth."""
    be = cluster1.backends[0]
    spawn_hogs(be, 1)  # one hog: ~50% utilisation of 2 CPUs
    cluster1.run(ms(100))
    be.sched.sync()
    j0 = [dict(be.sched.jiffies(i)) for i in range(2)]
    t0 = cluster1.env.now
    cluster1.run(ms(600))
    be.sched.sync()
    j1 = [dict(be.sched.jiffies(i)) for i in range(2)]
    elapsed = cluster1.env.now - t0
    busy = sum(
        (a["user"] + a["sys"] + a["irq"]) - (b["user"] + b["sys"] + b["irq"])
        for a, b in zip(j1, j0)
    )
    util = busy / (2 * elapsed)
    assert 0.45 < util < 0.56, util
