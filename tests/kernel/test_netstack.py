"""Tests for the kernel network stack cost structure."""

from repro.kernel.interrupts import IrqVector
from repro.sim.resources import Store
from repro.sim.units import ms, us


def test_send_charges_sender_task(cluster2):
    a, b = cluster2.backends
    store = Store(cluster2.env, name="rx")

    def sender(k):
        yield from a.netstack.send(k, b, store, "hello", 1024)

    task = a.spawn("tx", sender)
    cluster2.run(ms(10))
    # syscall + copy(1KB) + tcp path
    expected_min = (a.cfg.syscall.trap + a.cfg.syscall.copy_per_kb
                    + a.cfg.net.tcp_tx_cost)
    assert task.sys_ns >= expected_min


def test_delivery_raises_nic_irq_on_affinity_cpu(cluster2):
    a, b = cluster2.backends
    store = Store(cluster2.env, name="rx")

    def sender(k):
        yield from a.netstack.send(k, b, store, "hello", 256)

    before = b.irq.percpu[1].handled[IrqVector.NIC]
    a.spawn("tx", sender)
    cluster2.run(ms(10))
    assert b.irq.percpu[1].handled[IrqVector.NIC] == before + 1
    assert b.irq.percpu[0].handled[IrqVector.NIC] == 0


def test_message_lands_in_store_without_reader(cluster2):
    a, b = cluster2.backends
    store = Store(cluster2.env, name="rx")

    def sender(k):
        yield from a.netstack.send(k, b, store, "payload", 128)

    a.spawn("tx", sender)
    cluster2.run(ms(10))
    assert len(store) == 1
    ok, item = store.try_get()
    assert ok and item[0] == "payload"


def test_recv_wakeup_is_boosted(cluster2):
    """A blocked reader preempts a compute hog when its packet lands."""
    a, b = cluster2.backends
    store = Store(cluster2.env, name="rx")
    wake_delay = []

    def reader(k):
        t0 = k.now
        yield from b.netstack.recv(k, store)
        wake_delay.append(k.now - t0)

    def hog(k):
        while True:
            yield k.compute(us(1000))

    b.spawn("reader", reader)
    cluster2.run(ms(5))
    for i in range(4):
        b.spawn(f"hog{i}", hog)
    cluster2.run(ms(100))

    def sender(k):
        yield from a.netstack.send(k, b, store, "go", 64)

    send_time = cluster2.env.now
    a.spawn("tx", sender)
    cluster2.run(send_time + ms(50))
    assert wake_delay, "reader never woke"
    # Boosted wake: the reader ran within ~a softirq + wire time, not a
    # full timeslice behind the hogs.
    total = wake_delay[0] - (send_time - ms(105))
    assert wake_delay[0] < ms(105) + ms(2)


def test_netstack_counts_deliveries(cluster2):
    a, b = cluster2.backends
    store = Store(cluster2.env, name="rx")

    def sender(k):
        for _ in range(5):
            yield from a.netstack.send(k, b, store, "x", 64)

    a.spawn("tx", sender)
    cluster2.run(ms(20))
    assert b.netstack.delivered == 5
    assert b.nic.kernel_rx_packets == 5
    assert b.nic.kernel_rx_bytes == 5 * (64 + b.cfg.net.tcp_overhead_bytes)
    assert a.nic.kernel_tx_bytes == 5 * (64 + a.cfg.net.tcp_overhead_bytes)
